//! Out-of-core paged columnar storage.
//!
//! The in-memory [`crate::Table`] bounds audit scale by RAM. This module
//! persists a population (columns, scores, live set, epoch) into a
//! fixed-page on-disk format and serves reads through a budgeted
//! [`BufferManager`], so audits can stream datasets several times larger
//! than the memory budget:
//!
//! * **Pages.** Every column is cut into fixed 64 KiB pages
//!   ([`PAGE_SIZE`]): 8 192 `f64` rows per score/numeric page, 65 536
//!   rows per byte-code page, 16 384 per wide-code page. All capacities
//!   are multiples of [`PAGE_ALIGN_ROWS`], so a row boundary at a
//!   multiple of 8 192 is a page boundary in *every* column — shard
//!   plans aligned to it never split a page across shards.
//! * **Zone maps.** Each page's directory entry carries min/max for
//!   value pages and a 256-bit code-presence bitset for categorical
//!   pages. Scans consult the zone map first and skip pages that cannot
//!   match — the skip/scan decision is counted truthfully in
//!   [`PageCacheStats`] (`pages_skipped + pages_scanned` over one scan
//!   equals the column's page count).
//! * **Buffer manager.** Decoded pages live in a clock-evicted cache
//!   bounded by a byte budget. Pages handed out are `Arc`s; a page
//!   still referenced outside the cache is pinned and the clock hand
//!   passes it over. Hits, misses and evictions are counted.
//!
//! The format is self-describing: a text header (schema via
//! [`crate::schema_text`], row count, epoch, bin count, live bitmap)
//! followed by raw pages, the page directory, and a fixed footer
//! pointing back at the directory.
//!
//! Nothing here changes audit semantics: the paged scan kernels are
//! elementwise over the same values the in-memory kernels read, so
//! results are bit-identical (asserted by the parity tests and the
//! `paged_scan` bench).

use crate::column::Column;
use crate::rowset::RowSet;
use crate::schema::{DataType, Schema};
use crate::schema_text;
use crate::table::Table;
use crate::StoreError;
use std::fmt;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Fixed page size in bytes.
pub const PAGE_SIZE: usize = 64 * 1024;

/// Row granule every column's page capacity is a multiple of: shard or
/// chunk boundaries at multiples of this never split any column's page.
pub const PAGE_ALIGN_ROWS: usize = PAGE_SIZE / 8;

/// File magic, written after the header and inside the footer.
const MAGIC: &[u8; 8] = b"FJPAGED1";

/// Column id the directory uses for the score column (scores are not a
/// schema attribute).
const SCORES_COLUMN: u32 = u32::MAX;

/// Errors raised by the paged store.
#[derive(Debug)]
pub enum PagedError {
    /// Underlying file I/O failure.
    Io(std::io::Error),
    /// The file is not a valid `fairjob-paged v1` file.
    Corrupt(String),
    /// Schema or column-level failure.
    Store(StoreError),
}

impl fmt::Display for PagedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PagedError::Io(e) => write!(f, "paged io: {e}"),
            PagedError::Corrupt(reason) => write!(f, "paged file corrupt: {reason}"),
            PagedError::Store(e) => write!(f, "paged store: {e}"),
        }
    }
}

impl std::error::Error for PagedError {}

impl From<std::io::Error> for PagedError {
    fn from(e: std::io::Error) -> Self {
        PagedError::Io(e)
    }
}

impl From<StoreError> for PagedError {
    fn from(e: StoreError) -> Self {
        PagedError::Store(e)
    }
}

/// Physical encoding of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// Little-endian `f64` values (scores, numeric columns).
    F64,
    /// One byte per row: dictionary codes of a column with ≤ 256 values.
    Code8,
    /// Four bytes per row: dictionary codes of a wide column.
    Code32,
    /// Little-endian `i64` values (integer columns).
    I64,
}

impl PageKind {
    /// Bytes per row under this encoding.
    pub fn row_bytes(self) -> usize {
        match self {
            PageKind::F64 | PageKind::I64 => 8,
            PageKind::Code8 => 1,
            PageKind::Code32 => 4,
        }
    }

    /// Rows a full page of this kind holds.
    pub fn rows_per_page(self) -> usize {
        PAGE_SIZE / self.row_bytes()
    }

    fn tag(self) -> u8 {
        match self {
            PageKind::F64 => 0,
            PageKind::Code8 => 1,
            PageKind::Code32 => 2,
            PageKind::I64 => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, PagedError> {
        Ok(match tag {
            0 => PageKind::F64,
            1 => PageKind::Code8,
            2 => PageKind::Code32,
            3 => PageKind::I64,
            other => return Err(PagedError::Corrupt(format!("unknown page kind {other}"))),
        })
    }
}

/// Per-page zone map: enough to decide "can this page match?" without
/// reading the page.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneMap {
    /// Minimum value on value pages (`NaN`-free inputs only; unused on
    /// code pages).
    pub min: f64,
    /// Maximum value on value pages.
    pub max: f64,
    /// 256-bit presence bitset of dictionary codes, when every code on
    /// the page fits (`None` for wide-code pages with codes ≥ 256 and
    /// for value pages).
    pub codes: Option<[u64; 4]>,
}

impl ZoneMap {
    /// Can a row with dictionary code `code` exist on this page?
    /// Conservative: `true` whenever the page carries no bitset.
    pub fn may_contain_code(&self, code: u32) -> bool {
        match &self.codes {
            None => true,
            Some(bits) => code >= 256 || bits[(code / 64) as usize] & (1u64 << (code % 64)) != 0,
        }
    }
}

/// One directory entry: where a page lives and what it covers.
#[derive(Debug, Clone)]
pub struct PageMeta {
    /// Schema attribute index, or [`SCORES_COLUMN`] for the score
    /// column.
    column: u32,
    /// Physical encoding.
    pub kind: PageKind,
    /// First row id the page covers.
    pub first_row: u64,
    /// Rows on the page (last page of a column may be short).
    pub rows: u32,
    /// Byte offset of the raw page data in the file.
    offset: u64,
    /// The page's zone map.
    pub zone: ZoneMap,
}

impl PageMeta {
    /// The row-id range the page covers.
    pub fn row_range(&self) -> std::ops::Range<usize> {
        self.first_row as usize..self.first_row as usize + self.rows as usize
    }
}

/// Which column a scan reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagedColumn {
    /// A schema attribute by index.
    Attribute(usize),
    /// The row-aligned score column.
    Scores,
}

/// Decoded page payload, as handed out by the buffer manager.
#[derive(Debug, Clone, PartialEq)]
pub enum PageData {
    /// Values of an `f64` page.
    F64(Vec<f64>),
    /// Codes of a byte-code page.
    Code8(Vec<u8>),
    /// Codes of a wide-code page.
    Code32(Vec<u32>),
    /// Values of an `i64` page.
    I64(Vec<i64>),
}

impl PageData {
    /// Rows on the page.
    pub fn rows(&self) -> usize {
        match self {
            PageData::F64(v) => v.len(),
            PageData::Code8(v) => v.len(),
            PageData::Code32(v) => v.len(),
            PageData::I64(v) => v.len(),
        }
    }

    /// The dictionary code at `i`, for code pages.
    ///
    /// # Panics
    ///
    /// On value pages (scan kernels only call this on code pages).
    pub fn code_at(&self, i: usize) -> u32 {
        match self {
            PageData::Code8(v) => u32::from(v[i]),
            PageData::Code32(v) => v[i],
            _ => panic!("code_at on a value page"),
        }
    }

    /// Heap bytes the decoded page occupies (what the buffer budget
    /// meters).
    pub fn heap_bytes(&self) -> usize {
        match self {
            PageData::F64(v) => v.len() * 8,
            PageData::Code8(v) => v.len(),
            PageData::Code32(v) => v.len() * 4,
            PageData::I64(v) => v.len() * 8,
        }
    }
}

/// Point-in-time values of the paged counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageCounters {
    /// Page requests served from the cache.
    pub hits: u64,
    /// Page requests that went to disk.
    pub misses: u64,
    /// Cached pages dropped to respect the budget.
    pub evictions: u64,
    /// Pages a scan skipped via its zone map (or because no candidate
    /// row fell in the page's range) without reading them.
    pub pages_skipped: u64,
    /// Pages a scan actually consumed (cache hit or miss alike).
    pub pages_scanned: u64,
}

impl PageCounters {
    /// Counter-wise `self - earlier` (saturating): the activity between
    /// two snapshots of the same [`PageCacheStats`].
    pub fn since(&self, earlier: &PageCounters) -> PageCounters {
        PageCounters {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            pages_skipped: self.pages_skipped.saturating_sub(earlier.pages_skipped),
            pages_scanned: self.pages_scanned.saturating_sub(earlier.pages_scanned),
        }
    }
}

/// Shared, monotonically-growing counters of one store's page traffic.
/// Relaxed atomics: every increment is a fixed amount per event, so
/// totals are exact.
#[derive(Debug, Default)]
pub struct PageCacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    pages_skipped: AtomicU64,
    pages_scanned: AtomicU64,
}

impl PageCacheStats {
    /// Snapshot the current counter values.
    pub fn snapshot(&self) -> PageCounters {
        PageCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            pages_skipped: self.pages_skipped.load(Ordering::Relaxed),
            pages_scanned: self.pages_scanned.load(Ordering::Relaxed),
        }
    }

    fn note_skip(&self) {
        self.pages_skipped.fetch_add(1, Ordering::Relaxed);
    }

    fn note_scan(&self) {
        self.pages_scanned.fetch_add(1, Ordering::Relaxed);
    }
}

/// What one zone-mapped scan did, beyond its row result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanSummary {
    /// Pages consumed.
    pub pages_scanned: usize,
    /// Pages skipped without reading.
    pub pages_skipped: usize,
    /// Rows tested on the consumed pages.
    pub rows_examined: usize,
}

/// A clock-evicted, byte-budgeted cache of decoded pages.
///
/// Pages are shared out as `Arc<PageData>`; a page whose `Arc` is still
/// held outside the cache counts as **pinned** and the clock hand
/// passes it over (its memory is charged to the holder, not the
/// budget). With every resident page pinned the cache temporarily
/// overflows instead of failing — eviction resumes as pins drop.
#[derive(Debug)]
pub struct BufferManager {
    budget_bytes: usize,
    inner: Mutex<Frames>,
    stats: Arc<PageCacheStats>,
}

#[derive(Debug, Default)]
struct Frames {
    /// Resident pages by page id (directory index).
    resident: std::collections::HashMap<u32, Frame>,
    /// Clock ring of resident page ids (lazily compacted).
    ring: Vec<u32>,
    hand: usize,
    cached_bytes: usize,
}

#[derive(Debug)]
struct Frame {
    data: Arc<PageData>,
    /// Second-chance bit: set on every hit, cleared (once) by the hand.
    referenced: bool,
}

impl BufferManager {
    /// A manager with `budget_bytes` of decoded-page budget (clamped to
    /// at least one page).
    pub fn new(budget_bytes: usize) -> Self {
        BufferManager {
            budget_bytes: budget_bytes.max(PAGE_SIZE),
            inner: Mutex::new(Frames::default()),
            stats: Arc::new(PageCacheStats::default()),
        }
    }

    /// The configured budget in bytes.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// The shared traffic counters.
    pub fn stats(&self) -> &Arc<PageCacheStats> {
        &self.stats
    }

    /// The page, from cache or via `load` on a miss. Eviction runs
    /// after insertion until the budget is met or only pinned pages
    /// remain.
    fn get(
        &self,
        page: u32,
        load: impl FnOnce() -> Result<PageData, PagedError>,
    ) -> Result<Arc<PageData>, PagedError> {
        let mut frames = self.inner.lock().expect("buffer mutex poisoned");
        if let Some(frame) = frames.resident.get_mut(&page) {
            frame.referenced = true;
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&frame.data));
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let data = Arc::new(load()?);
        frames.cached_bytes += data.heap_bytes();
        frames.resident.insert(
            page,
            Frame {
                data: Arc::clone(&data),
                referenced: true,
            },
        );
        frames.ring.push(page);
        self.evict_over_budget(&mut frames);
        Ok(data)
    }

    /// Clock sweep: drop unpinned, unreferenced pages until the budget
    /// is met. Bounded at two full revolutions per call (first clears
    /// reference bits, second evicts) so an all-pinned cache cannot
    /// spin.
    fn evict_over_budget(&self, frames: &mut Frames) {
        let mut steps = frames.ring.len().saturating_mul(2);
        while frames.cached_bytes > self.budget_bytes && steps > 0 {
            steps -= 1;
            if frames.ring.is_empty() {
                break;
            }
            if frames.hand >= frames.ring.len() {
                frames.hand = 0;
            }
            let page = frames.ring[frames.hand];
            let Some(frame) = frames.resident.get_mut(&page) else {
                // Stale ring slot from an earlier eviction: compact.
                frames.ring.swap_remove(frames.hand);
                continue;
            };
            // Pinned: an Arc besides the cache's own is live.
            if Arc::strong_count(&frame.data) > 1 {
                frames.hand += 1;
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                frames.hand += 1;
                continue;
            }
            let bytes = frame.data.heap_bytes();
            frames.resident.remove(&page);
            frames.ring.swap_remove(frames.hand);
            frames.cached_bytes -= bytes;
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Pages currently resident (tests and introspection).
    pub fn resident_pages(&self) -> usize {
        self.inner
            .lock()
            .expect("buffer mutex poisoned")
            .resident
            .len()
    }
}

/// Summary returned by [`write_paged`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedWriteSummary {
    /// Rows written.
    pub rows: usize,
    /// Data pages written (directory length).
    pub pages: usize,
    /// Total file bytes.
    pub bytes: u64,
}

fn zone_of_f64(values: &[f64]) -> ZoneMap {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        if v < min {
            min = v;
        }
        if v > max {
            max = v;
        }
    }
    ZoneMap {
        min,
        max,
        codes: None,
    }
}

fn zone_of_codes(codes: impl Iterator<Item = u32>) -> ZoneMap {
    let mut bits = [0u64; 4];
    let mut narrow = true;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for code in codes {
        min = min.min(f64::from(code));
        max = max.max(f64::from(code));
        if code < 256 {
            bits[(code / 64) as usize] |= 1u64 << (code % 64);
        } else {
            narrow = false;
        }
    }
    ZoneMap {
        min,
        max,
        codes: narrow.then_some(bits),
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a>(&'a [u8], usize);

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], PagedError> {
        if self.1 + n > self.0.len() {
            return Err(PagedError::Corrupt("truncated directory".into()));
        }
        let s = &self.0[self.1..self.1 + n];
        self.1 += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, PagedError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PagedError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, PagedError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u8(&mut self) -> Result<u8, PagedError> {
        Ok(self.take(1)?[0])
    }
}

/// Write a population to the paged format.
///
/// `scores` must be row-aligned when present; `live` (when not every
/// row) is stored as a bitmap in the header; `epoch` and `bins` are
/// carried verbatim for snapshot restarts. Categorical columns with a
/// dictionary of ≤ 256 values are byte-narrowed on disk.
///
/// # Errors
///
/// [`PagedError::Io`] on write failures, [`PagedError::Store`] when the
/// schema cannot be serialised, [`PagedError::Corrupt`] on misaligned
/// inputs.
pub fn write_paged(
    path: &Path,
    table: &Table,
    scores: Option<&[f64]>,
    live: Option<&RowSet>,
    epoch: u64,
    bins: usize,
) -> Result<PagedWriteSummary, PagedError> {
    let rows = table.len();
    if let Some(scores) = scores {
        if scores.len() != rows {
            return Err(PagedError::Corrupt(format!(
                "{} scores for {rows} rows",
                scores.len()
            )));
        }
    }
    let mut header = String::from("# fairjob paged v1\n");
    header.push_str(&format!("rows {rows}\n"));
    header.push_str(&format!("epoch {epoch}\n"));
    header.push_str(&format!("bins {bins}\n"));
    header.push_str(&format!("scores {}\n", u8::from(scores.is_some())));
    header.push_str("schema\n");
    header.push_str(&schema_text::to_text(&map_domains(
        table.schema(),
        escape_label,
    )?)?);

    let mut live_bytes = Vec::new();
    if let Some(live) = live {
        if live.len() != rows {
            live_bytes = vec![0u8; rows.div_ceil(8)];
            for row in live.iter() {
                if row >= rows {
                    return Err(PagedError::Corrupt(format!(
                        "live row {row} beyond {rows} rows"
                    )));
                }
                live_bytes[row / 8] |= 1 << (row % 8);
            }
        }
    }

    let file = File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    out.write_all(MAGIC)?;
    out.write_all(&(header.len() as u64).to_le_bytes())?;
    out.write_all(header.as_bytes())?;
    out.write_all(&(live_bytes.len() as u64).to_le_bytes())?;
    out.write_all(&live_bytes)?;
    let mut offset = (MAGIC.len() + 8 + header.len() + 8 + live_bytes.len()) as u64;

    let mut directory: Vec<PageMeta> = Vec::new();
    let mut page_buf: Vec<u8> = Vec::with_capacity(PAGE_SIZE);
    let emit = |out: &mut std::io::BufWriter<File>,
                offset: &mut u64,
                directory: &mut Vec<PageMeta>,
                column: u32,
                kind: PageKind,
                first_row: usize,
                page_rows: usize,
                zone: ZoneMap,
                bytes: &[u8]|
     -> Result<(), PagedError> {
        out.write_all(bytes)?;
        directory.push(PageMeta {
            column,
            kind,
            first_row: first_row as u64,
            rows: page_rows as u32,
            offset: *offset,
            zone,
        });
        *offset += bytes.len() as u64;
        Ok(())
    };

    // Scores first (the audit's hottest scan), then schema columns.
    if let Some(scores) = scores {
        for (i, chunk) in scores.chunks(PageKind::F64.rows_per_page()).enumerate() {
            page_buf.clear();
            for &v in chunk {
                put_f64(&mut page_buf, v);
            }
            emit(
                &mut out,
                &mut offset,
                &mut directory,
                SCORES_COLUMN,
                PageKind::F64,
                i * PageKind::F64.rows_per_page(),
                chunk.len(),
                zone_of_f64(chunk),
                &page_buf,
            )?;
        }
    }
    for (attr, def) in table.schema().attributes().iter().enumerate() {
        match (&def.dtype, table.column(attr)) {
            (DataType::Categorical { .. }, Column::Categorical(codes)) => {
                let narrow = def.cardinality().is_some_and(|c| c <= 256);
                let kind = if narrow {
                    PageKind::Code8
                } else {
                    PageKind::Code32
                };
                for (i, chunk) in codes.chunks(kind.rows_per_page()).enumerate() {
                    page_buf.clear();
                    if narrow {
                        page_buf.extend(chunk.iter().map(|&c| c as u8));
                    } else {
                        for &c in chunk {
                            put_u32(&mut page_buf, c);
                        }
                    }
                    emit(
                        &mut out,
                        &mut offset,
                        &mut directory,
                        attr as u32,
                        kind,
                        i * kind.rows_per_page(),
                        chunk.len(),
                        zone_of_codes(chunk.iter().copied()),
                        &page_buf,
                    )?;
                }
            }
            (_, Column::Numeric(values)) => {
                for (i, chunk) in values.chunks(PageKind::F64.rows_per_page()).enumerate() {
                    page_buf.clear();
                    for &v in chunk {
                        put_f64(&mut page_buf, v);
                    }
                    emit(
                        &mut out,
                        &mut offset,
                        &mut directory,
                        attr as u32,
                        PageKind::F64,
                        i * PageKind::F64.rows_per_page(),
                        chunk.len(),
                        zone_of_f64(chunk),
                        &page_buf,
                    )?;
                }
            }
            (_, Column::Integer(values)) => {
                for (i, chunk) in values.chunks(PageKind::I64.rows_per_page()).enumerate() {
                    page_buf.clear();
                    for &v in chunk {
                        page_buf.extend_from_slice(&v.to_le_bytes());
                    }
                    let zone = {
                        let mut min = f64::INFINITY;
                        let mut max = f64::NEG_INFINITY;
                        for &v in chunk {
                            min = min.min(v as f64);
                            max = max.max(v as f64);
                        }
                        ZoneMap {
                            min,
                            max,
                            codes: None,
                        }
                    };
                    emit(
                        &mut out,
                        &mut offset,
                        &mut directory,
                        attr as u32,
                        PageKind::I64,
                        i * PageKind::I64.rows_per_page(),
                        chunk.len(),
                        zone,
                        &page_buf,
                    )?;
                }
            }
            _ => {
                return Err(PagedError::Corrupt(format!(
                    "column `{}` disagrees with its schema type",
                    def.name
                )))
            }
        }
    }

    // Directory, then the footer pointing at it.
    let dir_offset = offset;
    let mut dir = Vec::with_capacity(directory.len() * 64);
    put_u64(&mut dir, directory.len() as u64);
    for meta in &directory {
        put_u32(&mut dir, meta.column);
        dir.push(meta.kind.tag());
        put_u64(&mut dir, meta.first_row);
        put_u32(&mut dir, meta.rows);
        put_u64(&mut dir, meta.offset);
        put_f64(&mut dir, meta.zone.min);
        put_f64(&mut dir, meta.zone.max);
        dir.push(u8::from(meta.zone.codes.is_some()));
        for word in meta.zone.codes.unwrap_or_default() {
            put_u64(&mut dir, word);
        }
    }
    out.write_all(&dir)?;
    out.write_all(&dir_offset.to_le_bytes())?;
    out.write_all(MAGIC)?;
    out.flush()?;
    let bytes = dir_offset + dir.len() as u64 + 16;
    Ok(PagedWriteSummary {
        rows,
        pages: directory.len(),
        bytes,
    })
}

/// An opened paged population: directory and header in memory, page
/// data served on demand through the [`BufferManager`].
#[derive(Debug)]
pub struct PagedStore {
    file: Mutex<File>,
    schema: Schema,
    rows: usize,
    epoch: u64,
    bins: usize,
    live: Option<RowSet>,
    directory: Vec<PageMeta>,
    /// Page ids (directory indexes) per column, in row order; the score
    /// column's pages sit at index `schema.width()`.
    by_column: Vec<Vec<u32>>,
    buffer: BufferManager,
}

impl PagedStore {
    /// Open a paged file with a decoded-page budget of `mem_budget`
    /// bytes (the `--mem-budget` knob; clamped to at least one page).
    ///
    /// # Errors
    ///
    /// [`PagedError::Io`] on read failures, [`PagedError::Corrupt`] on
    /// format violations.
    pub fn open(path: &Path, mem_budget: usize) -> Result<Self, PagedError> {
        let mut file = File::open(path)?;
        let len = file.seek(SeekFrom::End(0))?;
        if len < 16 + MAGIC.len() as u64 {
            return Err(PagedError::Corrupt("file too short".into()));
        }
        let mut head = [0u8; 16];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut head)?;
        if &head[..8] != MAGIC {
            return Err(PagedError::Corrupt("bad magic".into()));
        }
        let header_len = u64::from_le_bytes(head[8..].try_into().unwrap()) as usize;
        let mut header = vec![0u8; header_len];
        file.read_exact(&mut header)?;
        let header = String::from_utf8(header)
            .map_err(|_| PagedError::Corrupt("header is not UTF-8".into()))?;
        let (rows, epoch, bins, has_scores, schema) = parse_header(&header)?;
        let mut live_len = [0u8; 8];
        file.read_exact(&mut live_len)?;
        let live_len = u64::from_le_bytes(live_len) as usize;
        let live = if live_len == 0 {
            None
        } else {
            let mut bytes = vec![0u8; live_len];
            file.read_exact(&mut bytes)?;
            let mut live_rows = Vec::new();
            for row in 0..rows {
                if bytes
                    .get(row / 8)
                    .is_some_and(|b| b & (1 << (row % 8)) != 0)
                {
                    live_rows.push(row as u32);
                }
            }
            Some(RowSet::from_sorted(live_rows))
        };

        // Footer → directory.
        let mut footer = [0u8; 16];
        file.seek(SeekFrom::Start(len - 16))?;
        file.read_exact(&mut footer)?;
        if &footer[8..] != MAGIC {
            return Err(PagedError::Corrupt("bad footer magic".into()));
        }
        let dir_offset = u64::from_le_bytes(footer[..8].try_into().unwrap());
        if dir_offset >= len - 16 {
            return Err(PagedError::Corrupt("directory offset out of range".into()));
        }
        let mut dir_bytes = vec![0u8; (len - 16 - dir_offset) as usize];
        file.seek(SeekFrom::Start(dir_offset))?;
        file.read_exact(&mut dir_bytes)?;
        let mut r = Reader(&dir_bytes, 0);
        let count = r.u64()? as usize;
        let mut directory = Vec::with_capacity(count);
        let mut by_column: Vec<Vec<u32>> = vec![Vec::new(); schema.width() + 1];
        for id in 0..count {
            let column = r.u32()?;
            let kind = PageKind::from_tag(r.u8()?)?;
            let first_row = r.u64()?;
            let page_rows = r.u32()?;
            let offset = r.u64()?;
            let min = r.f64()?;
            let max = r.f64()?;
            let has_bits = r.u8()? != 0;
            let mut bits = [0u64; 4];
            for word in &mut bits {
                *word = r.u64()?;
            }
            let slot = if column == SCORES_COLUMN {
                if !has_scores {
                    return Err(PagedError::Corrupt("score page without scores".into()));
                }
                schema.width()
            } else {
                let c = column as usize;
                if c >= schema.width() {
                    return Err(PagedError::Corrupt(format!("page for column {c}")));
                }
                c
            };
            by_column[slot].push(id as u32);
            directory.push(PageMeta {
                column,
                kind,
                first_row,
                rows: page_rows,
                offset,
                zone: ZoneMap {
                    min,
                    max,
                    codes: has_bits.then_some(bits),
                },
            });
        }
        // Row coverage sanity: each non-empty column's pages must tile
        // 0..rows in order.
        for pages in by_column.iter().filter(|p| !p.is_empty()) {
            let mut at = 0u64;
            for &id in pages.iter() {
                let meta = &directory[id as usize];
                if meta.first_row != at {
                    return Err(PagedError::Corrupt(format!(
                        "page gap at row {at} (page starts at {})",
                        meta.first_row
                    )));
                }
                at += u64::from(meta.rows);
            }
            if at != rows as u64 {
                return Err(PagedError::Corrupt(format!(
                    "column covers {at} of {rows} rows"
                )));
            }
        }
        Ok(PagedStore {
            file: Mutex::new(file),
            schema,
            rows,
            epoch,
            bins,
            live,
            directory,
            by_column,
            buffer: BufferManager::new(mem_budget),
        })
    }

    /// The population schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total rows (tombstoned rows included).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The stored epoch stamp.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The stored histogram bin count (0 when unspecified).
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// The stored live row set (`None` = every row live).
    pub fn live(&self) -> Option<&RowSet> {
        self.live.as_ref()
    }

    /// Whether the file carries a score column.
    pub fn has_scores(&self) -> bool {
        !self.by_column[self.schema.width()].is_empty()
    }

    /// Total data pages (the page-directory length).
    pub fn directory_len(&self) -> usize {
        self.directory.len()
    }

    /// Metadata of page `id`.
    pub fn page_meta(&self, id: u32) -> &PageMeta {
        &self.directory[id as usize]
    }

    /// Page ids of a column, in row order.
    pub fn pages_of(&self, column: PagedColumn) -> &[u32] {
        match column {
            PagedColumn::Attribute(attr) => &self.by_column[attr],
            PagedColumn::Scores => &self.by_column[self.schema.width()],
        }
    }

    /// The buffer manager serving this store's pages.
    pub fn buffer(&self) -> &BufferManager {
        &self.buffer
    }

    /// The shared page-traffic counters.
    pub fn stats(&self) -> &Arc<PageCacheStats> {
        self.buffer.stats()
    }

    /// Fetch one page (cache hit or disk read).
    ///
    /// # Errors
    ///
    /// [`PagedError::Io`] / [`PagedError::Corrupt`].
    pub fn page(&self, id: u32) -> Result<Arc<PageData>, PagedError> {
        let meta = self.directory[id as usize].clone();
        self.buffer.get(id, || self.load(&meta))
    }

    fn load(&self, meta: &PageMeta) -> Result<PageData, PagedError> {
        let bytes = meta.rows as usize * meta.kind.row_bytes();
        let mut buf = vec![0u8; bytes];
        {
            let mut file = self.file.lock().expect("paged file mutex poisoned");
            file.seek(SeekFrom::Start(meta.offset))?;
            file.read_exact(&mut buf)?;
        }
        Ok(match meta.kind {
            PageKind::F64 => PageData::F64(
                buf.chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ),
            PageKind::I64 => PageData::I64(
                buf.chunks_exact(8)
                    .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ),
            PageKind::Code8 => PageData::Code8(buf),
            PageKind::Code32 => PageData::Code32(
                buf.chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ),
        })
    }

    /// Stream a column page-by-page in row order, skipping (and
    /// counting) pages that cannot contribute: pages with no row of
    /// `candidates` in range, and — when `must_contain` is given —
    /// pages whose zone map rules the code out. `visit` receives the
    /// page's first row and its decoded data.
    ///
    /// # Errors
    ///
    /// [`PagedError`] from page reads.
    pub fn scan_column(
        &self,
        column: PagedColumn,
        candidates: Option<&RowSet>,
        must_contain: Option<u32>,
        mut visit: impl FnMut(usize, &PageData),
    ) -> Result<ScanSummary, PagedError> {
        let mut summary = ScanSummary::default();
        for &id in self.pages_of(column) {
            let meta = &self.directory[id as usize];
            let range = meta.row_range();
            let relevant = candidates.is_none_or(|c| {
                let rows = c.rows();
                let from = rows.partition_point(|&r| (r as usize) < range.start);
                rows.get(from).is_some_and(|&r| (r as usize) < range.end)
            });
            let zone_ok = must_contain.is_none_or(|code| meta.zone.may_contain_code(code));
            if !relevant || !zone_ok {
                summary.pages_skipped += 1;
                self.stats().note_skip();
                continue;
            }
            let data = self.page(id)?;
            summary.pages_scanned += 1;
            summary.rows_examined += data.rows();
            self.stats().note_scan();
            visit(range.start, &data);
        }
        Ok(summary)
    }

    /// Zone-mapped conjunction filter: rows matching every
    /// `(attribute, code)` constraint (within the stored live set, when
    /// present). Constraints are applied in the given order, each
    /// narrowing the candidate set the next one scans — pages with no
    /// surviving candidate, or whose zone map excludes the wanted code,
    /// are skipped without reading.
    ///
    /// # Errors
    ///
    /// [`PagedError`] from page reads, or [`PagedError::Store`] when a
    /// constraint names a non-categorical attribute.
    pub fn scan_matching(
        &self,
        constraints: &[(usize, u32)],
    ) -> Result<(RowSet, ScanSummary), PagedError> {
        let mut acc: Option<RowSet> = self.live.clone();
        let mut total = ScanSummary::default();
        for &(attr, code) in constraints {
            if !matches!(
                self.schema.attribute(attr).dtype,
                DataType::Categorical { .. }
            ) {
                return Err(PagedError::Store(StoreError::NotCategorical {
                    attribute: self.schema.attribute(attr).name.clone(),
                }));
            }
            let mut matched: Vec<u32> = Vec::new();
            let summary = self.scan_column(
                PagedColumn::Attribute(attr),
                acc.as_ref(),
                Some(code),
                |first_row, data| match &acc {
                    None => {
                        for i in 0..data.rows() {
                            if data.code_at(i) == code {
                                matched.push((first_row + i) as u32);
                            }
                        }
                    }
                    Some(acc) => {
                        let rows = acc.rows();
                        let end = first_row + data.rows();
                        let from = rows.partition_point(|&r| (r as usize) < first_row);
                        for &row in &rows[from..] {
                            if row as usize >= end {
                                break;
                            }
                            if data.code_at(row as usize - first_row) == code {
                                matched.push(row);
                            }
                        }
                    }
                },
            )?;
            total.pages_scanned += summary.pages_scanned;
            total.pages_skipped += summary.pages_skipped;
            total.rows_examined += summary.rows_examined;
            acc = Some(RowSet::from_sorted(matched));
            if acc.as_ref().is_some_and(RowSet::is_empty) {
                break;
            }
        }
        Ok((acc.unwrap_or_else(|| RowSet::all(self.rows)), total))
    }

    /// Distinct codes of `attr` present in the data, from zone-map
    /// bitsets alone (no page reads). `None` when any page lacks a
    /// bitset (wide dictionaries) — callers fall back to the schema
    /// cardinality.
    pub fn present_codes(&self, attr: usize) -> Option<Vec<u32>> {
        let mut bits = [0u64; 4];
        for &id in self.pages_of(PagedColumn::Attribute(attr)) {
            let page_bits = self.directory[id as usize].zone.codes?;
            for (acc, word) in bits.iter_mut().zip(page_bits) {
                *acc |= word;
            }
        }
        let mut present = Vec::new();
        for code in 0..256u32 {
            if bits[(code / 64) as usize] & (1u64 << (code % 64)) != 0 {
                present.push(code);
            }
        }
        Some(present)
    }

    /// Materialise the whole population back into memory: the table,
    /// the scores (when stored). The snapshot-restart path — after this
    /// the caller is in ordinary in-memory territory.
    ///
    /// # Errors
    ///
    /// [`PagedError`] from page reads; [`PagedError::Corrupt`] when a
    /// column's pages decode to the wrong type.
    pub fn materialize(&self) -> Result<(Table, Option<Vec<f64>>), PagedError> {
        let mut columns: Vec<Column> = Vec::with_capacity(self.schema.width());
        for (attr, def) in self.schema.attributes().iter().enumerate() {
            let col = PagedColumn::Attribute(attr);
            match def.dtype {
                DataType::Categorical { .. } => {
                    let mut codes: Vec<u32> = Vec::with_capacity(self.rows);
                    self.scan_column(col, None, None, |_, data| match data {
                        PageData::Code8(v) => codes.extend(v.iter().map(|&c| u32::from(c))),
                        PageData::Code32(v) => codes.extend_from_slice(v),
                        _ => {}
                    })?;
                    if codes.len() != self.rows {
                        return Err(PagedError::Corrupt(format!(
                            "column `{}` decoded {} of {} rows",
                            def.name,
                            codes.len(),
                            self.rows
                        )));
                    }
                    columns.push(Column::Categorical(codes));
                }
                DataType::Numeric { .. } => {
                    let mut values: Vec<f64> = Vec::with_capacity(self.rows);
                    self.scan_column(col, None, None, |_, data| {
                        if let PageData::F64(v) = data {
                            values.extend_from_slice(v);
                        }
                    })?;
                    if values.len() != self.rows {
                        return Err(PagedError::Corrupt(format!(
                            "column `{}` decoded {} of {} rows",
                            def.name,
                            values.len(),
                            self.rows
                        )));
                    }
                    columns.push(Column::Numeric(values));
                }
                DataType::Integer { .. } => {
                    let mut values: Vec<i64> = Vec::with_capacity(self.rows);
                    self.scan_column(col, None, None, |_, data| {
                        if let PageData::I64(v) = data {
                            values.extend_from_slice(v);
                        }
                    })?;
                    if values.len() != self.rows {
                        return Err(PagedError::Corrupt(format!(
                            "column `{}` decoded {} of {} rows",
                            def.name,
                            values.len(),
                            self.rows
                        )));
                    }
                    columns.push(Column::Integer(values));
                }
            }
        }
        let table = Table::from_columns(self.schema.clone(), columns)?;
        let scores = if self.has_scores() {
            let mut values: Vec<f64> = Vec::with_capacity(self.rows);
            self.scan_column(PagedColumn::Scores, None, None, |_, data| {
                if let PageData::F64(v) = data {
                    values.extend_from_slice(v);
                }
            })?;
            if values.len() != self.rows {
                return Err(PagedError::Corrupt(format!(
                    "scores decoded {} of {} rows",
                    values.len(),
                    self.rows
                )));
            }
            Some(values)
        } else {
            None
        };
        Ok((table, scores))
    }
}

/// Percent-escape a dictionary label for the header's schema block.
/// Runtime schemas carry labels the descriptor format cannot represent
/// — the bucketiser's band names (`[1950,1962)`) contain commas, and
/// arbitrary marketplaces may use spaces — so the paged header escapes
/// `%`, `,` and whitespace on write and reverses it on open. Escaping
/// is injective, so distinct labels stay distinct through validation.
fn escape_label(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        match c {
            '%' => out.push_str("%25"),
            ',' => out.push_str("%2C"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape_label(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut chars = label.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let pair: String = chars.by_ref().take(2).collect();
        match u8::from_str_radix(&pair, 16) {
            Ok(byte) => out.push(byte as char),
            // Not an escape we wrote; keep the text verbatim.
            Err(_) => {
                out.push('%');
                out.push_str(&pair);
            }
        }
    }
    out
}

/// Rebuild a schema with every categorical domain value passed through
/// `f` (names, kinds, numeric bounds unchanged).
fn map_domains(schema: &Schema, f: fn(&str) -> String) -> Result<Schema, StoreError> {
    let mut builder = Schema::builder();
    for attr in schema.attributes() {
        builder = match &attr.dtype {
            DataType::Categorical { domain } => {
                let mapped: Vec<String> = domain.iter().map(|v| f(v)).collect();
                let refs: Vec<&str> = mapped.iter().map(String::as_str).collect();
                builder.categorical(&attr.name, attr.kind, &refs)
            }
            DataType::Numeric { min, max } => builder.numeric(&attr.name, attr.kind, *min, *max),
            DataType::Integer { min, max } => builder.integer(&attr.name, attr.kind, *min, *max),
        };
    }
    builder.build()
}

fn parse_header(text: &str) -> Result<(usize, u64, usize, bool, Schema), PagedError> {
    let corrupt = |reason: &str| PagedError::Corrupt(reason.to_string());
    let mut rows = None;
    let mut epoch = None;
    let mut bins = None;
    let mut scores = None;
    let mut lines = text.lines();
    let Some(first) = lines.next() else {
        return Err(corrupt("empty header"));
    };
    if first.trim() != "# fairjob paged v1" {
        return Err(corrupt("missing version line"));
    }
    let mut schema_text_block = String::new();
    let mut in_schema = false;
    for line in lines {
        if in_schema {
            schema_text_block.push_str(line);
            schema_text_block.push('\n');
            continue;
        }
        let trimmed = line.trim();
        if trimmed == "schema" {
            in_schema = true;
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        match (parts.next(), parts.next()) {
            (Some("rows"), Some(v)) => rows = v.parse().ok(),
            (Some("epoch"), Some(v)) => epoch = v.parse().ok(),
            (Some("bins"), Some(v)) => bins = v.parse().ok(),
            (Some("scores"), Some(v)) => scores = v.parse::<u8>().ok().map(|v| v != 0),
            _ => return Err(corrupt("unknown header line")),
        }
    }
    let schema = map_domains(&schema_text::from_text(&schema_text_block)?, unescape_label)?;
    Ok((
        rows.ok_or_else(|| corrupt("missing rows"))?,
        epoch.ok_or_else(|| corrupt("missing epoch"))?,
        bins.ok_or_else(|| corrupt("missing bins"))?,
        scores.ok_or_else(|| corrupt("missing scores flag"))?,
        schema,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttributeKind;
    use crate::table::Value;

    fn population(rows: usize) -> (Table, Vec<f64>) {
        let schema = Schema::builder()
            .categorical("gender", AttributeKind::Protected, &["Male", "Female"])
            .categorical(
                "country",
                AttributeKind::Protected,
                &["America", "India", "Other"],
            )
            .numeric("approval", AttributeKind::Observed, 0.0, 100.0)
            .build()
            .unwrap();
        let mut table = Table::new(schema);
        let mut scores = Vec::with_capacity(rows);
        for i in 0..rows {
            let gender = if i % 3 == 0 { "Female" } else { "Male" };
            let country = ["America", "India", "Other"][(i / 7) % 3];
            table
                .push_row(&[
                    Value::cat(gender),
                    Value::cat(country),
                    Value::num((i % 101) as f64),
                ])
                .unwrap();
            scores.push((i % 97) as f64 / 96.0);
        }
        (table, scores)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fairjob-paged-{}-{name}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir.join("pop.fjp")
    }

    #[test]
    fn roundtrip_materializes_identically() {
        let (table, scores) = population(20_000);
        let path = tmp("roundtrip");
        let summary = write_paged(&path, &table, Some(&scores), None, 3, 10).unwrap();
        assert_eq!(summary.rows, 20_000);
        // scores: 3 pages of 8192; gender/country: 1 byte page each;
        // approval: 3 f64 pages.
        assert_eq!(summary.pages, 3 + 1 + 1 + 3);
        let store = PagedStore::open(&path, 1 << 20).unwrap();
        assert_eq!(store.rows(), 20_000);
        assert_eq!(store.epoch(), 3);
        assert_eq!(store.bins(), 10);
        assert!(store.live().is_none());
        assert_eq!(store.schema(), table.schema());
        let (back, back_scores) = store.materialize().unwrap();
        assert_eq!(back, table);
        assert_eq!(back_scores.unwrap(), scores);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn live_set_roundtrips() {
        let (table, scores) = population(100);
        let live = RowSet::from_rows((0..100).filter(|r| r % 4 != 1).collect());
        let path = tmp("live");
        write_paged(&path, &table, Some(&scores), Some(&live), 7, 10).unwrap();
        let store = PagedStore::open(&path, 1 << 20).unwrap();
        assert_eq!(store.live().unwrap(), &live);
        assert_eq!(store.epoch(), 7);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zone_map_scan_skips_and_counts_truthfully() {
        // Country is block-clustered in thirds so zone maps can skip.
        let schema = Schema::builder()
            .categorical(
                "country",
                AttributeKind::Protected,
                &["America", "India", "Other"],
            )
            .build()
            .unwrap();
        let mut table = Table::new(schema);
        let rows = 3 * PageKind::Code8.rows_per_page();
        for i in 0..rows {
            let c = ["America", "India", "Other"][i / PageKind::Code8.rows_per_page()];
            table.push_row(&[Value::cat(c)]).unwrap();
        }
        let path = tmp("zone");
        write_paged(&path, &table, None, None, 0, 0).unwrap();
        let store = PagedStore::open(&path, 1 << 20).unwrap();
        let (matched, summary) = store.scan_matching(&[(0, 1)]).unwrap();
        assert_eq!(matched.len(), PageKind::Code8.rows_per_page());
        assert_eq!(summary.pages_scanned, 1);
        assert_eq!(summary.pages_skipped, 2);
        assert_eq!(
            summary.pages_scanned + summary.pages_skipped,
            store.directory_len()
        );
        let counters = store.stats().snapshot();
        assert_eq!(counters.pages_scanned, 1);
        assert_eq!(counters.pages_skipped, 2);
        assert_eq!(counters.misses, 1);
        assert_eq!(store.present_codes(0).unwrap(), vec![0, 1, 2]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn buffer_budget_evicts_and_counts() {
        let (table, scores) = population(40_000);
        let path = tmp("evict");
        write_paged(&path, &table, Some(&scores), None, 0, 10).unwrap();
        // Budget of exactly two score pages: scanning five score pages
        // must evict.
        let store = PagedStore::open(&path, 2 * PAGE_SIZE).unwrap();
        let score_pages = store.pages_of(PagedColumn::Scores).len();
        assert_eq!(score_pages, 5);
        let mut rows_seen = 0usize;
        store
            .scan_column(PagedColumn::Scores, None, None, |_, d| {
                rows_seen += d.rows();
            })
            .unwrap();
        assert_eq!(rows_seen, 40_000);
        let c = store.stats().snapshot();
        assert_eq!(c.misses, 5);
        assert_eq!(c.pages_scanned, 5);
        assert!(c.evictions >= 2, "evictions {}", c.evictions);
        assert!(store.buffer().resident_pages() <= 3);
        // A second scan re-misses evicted pages; hits + misses equals
        // total requests.
        store
            .scan_column(PagedColumn::Scores, None, None, |_, _| {})
            .unwrap();
        let c = store.stats().snapshot();
        assert_eq!(c.hits + c.misses, 10);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let (table, scores) = population(40_000);
        let path = tmp("pin");
        write_paged(&path, &table, Some(&scores), None, 0, 10).unwrap();
        let store = PagedStore::open(&path, PAGE_SIZE).unwrap();
        let pages = store.pages_of(PagedColumn::Scores).to_vec();
        let pinned = store.page(pages[0]).unwrap();
        for &id in &pages[1..] {
            let _ = store.page(id).unwrap();
        }
        // The pinned page is still resident: fetching it again is a hit.
        let before = store.stats().snapshot().hits;
        let again = store.page(pages[0]).unwrap();
        assert_eq!(store.stats().snapshot().hits, before + 1);
        assert!(std::ptr::eq(Arc::as_ptr(&pinned), Arc::as_ptr(&again)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a paged file at all............").unwrap();
        assert!(matches!(
            PagedStore::open(&path, 1 << 20),
            Err(PagedError::Corrupt(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn counters_since_subtracts() {
        let a = PageCounters {
            hits: 10,
            misses: 5,
            evictions: 2,
            pages_skipped: 1,
            pages_scanned: 6,
        };
        let b = PageCounters {
            hits: 4,
            misses: 5,
            evictions: 0,
            pages_skipped: 0,
            pages_scanned: 2,
        };
        let d = a.since(&b);
        assert_eq!(d.hits, 6);
        assert_eq!(d.misses, 0);
        assert_eq!(d.evictions, 2);
        assert_eq!(d.pages_scanned, 4);
    }
}
