//! Dependency-free CSV import/export.
//!
//! Enough of RFC 4180 for worker tables: comma separation, double-quote
//! quoting with `""` escapes, a header row matching the schema. Used for
//! persisting generated populations and exporting audit inputs; kept
//! hand-rolled because the workspace's only allowed serialisation crate
//! (`serde`) ships no wire format.

use crate::schema::DataType;
use crate::table::{Table, Value};
use crate::StoreError;

/// Serialise a table (header + one line per row).
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .schema()
        .attributes()
        .iter()
        .map(|a| escape(&a.name))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in 0..table.len() {
        let values = table.row(row).expect("row in range");
        let fields: Vec<String> = values
            .iter()
            .map(|v| match v {
                Value::Cat(s) => escape(s),
                Value::Num(x) => format_float(*x),
                Value::Int(x) => x.to_string(),
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

/// Parse CSV text into a table over `schema`. The header must name the
/// schema's attributes in order.
///
/// # Errors
///
/// [`StoreError::Csv`] for malformed input; the usual ingestion errors
/// (wrapped in `Csv` with line information) for invalid values.
pub fn from_csv(schema: crate::Schema, text: &str) -> Result<Table, StoreError> {
    let mut lines = split_records(text);
    let header = lines
        .next()
        .ok_or(StoreError::Csv {
            line: 1,
            reason: "missing header".into(),
        })?
        .map_err(|reason| StoreError::Csv { line: 1, reason })?;
    let expected: Vec<&str> = schema
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    if header != expected {
        return Err(StoreError::Csv {
            line: 1,
            reason: format!("header {header:?} does not match schema {expected:?}"),
        });
    }
    let mut table = Table::new(schema);
    // Parse every record first, then commit the whole file as one
    // batch append — the schema is resolved once per batch instead of
    // once per line (`Table::push_rows`).
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for (lineno, record) in lines.enumerate() {
        let line = lineno + 2;
        let fields = record.map_err(|reason| StoreError::Csv { line, reason })?;
        if fields.len() != table.schema().width() {
            return Err(StoreError::Csv {
                line,
                reason: format!(
                    "expected {} fields, found {}",
                    table.schema().width(),
                    fields.len()
                ),
            });
        }
        let mut values = Vec::with_capacity(fields.len());
        for (attr, field) in table.schema().attributes().iter().zip(&fields) {
            let value = match &attr.dtype {
                DataType::Categorical { .. } => Value::Cat(field.clone()),
                DataType::Numeric { .. } => {
                    Value::Num(field.parse::<f64>().map_err(|e| StoreError::Csv {
                        line,
                        reason: format!("bad float `{field}`: {e}"),
                    })?)
                }
                DataType::Integer { .. } => {
                    Value::Int(field.parse::<i64>().map_err(|e| StoreError::Csv {
                        line,
                        reason: format!("bad integer `{field}`: {e}"),
                    })?)
                }
            };
            values.push(value);
        }
        rows.push(values);
    }
    table.push_rows(&rows).map_err(|e| match e {
        StoreError::BatchRow { row, error } => StoreError::Csv {
            line: row + 2,
            reason: error.to_string(),
        },
        other => StoreError::Csv {
            line: 1,
            reason: other.to_string(),
        },
    })?;
    Ok(table)
}

/// Render one CSV record (no trailing newline) from raw fields, quoting
/// where needed. Public so sibling formats built on CSV records (the
/// stream event log) share the exact quoting rules.
pub fn render_record(fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| escape(f))
        .collect::<Vec<_>>()
        .join(",")
}

/// Iterate CSV records of `text` (quoted fields may embed commas,
/// quotes and newlines). Each item is the record's fields or a parse
/// error description. Public for sibling formats built on CSV records
/// (the stream event log).
pub fn parse_records(text: &str) -> impl Iterator<Item = Result<Vec<String>, String>> + '_ {
    split_records(text)
}

fn format_float(x: f64) -> String {
    // Shortest representation that round-trips (f64 Display in Rust is
    // already round-trip-exact).
    format!("{x}")
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Iterate records (handling quoted fields, including embedded newlines).
/// Each item is the list of fields or an error description.
fn split_records(text: &str) -> impl Iterator<Item = Result<Vec<String>, String>> + '_ {
    let mut chars = text.chars().peekable();
    let mut done = false;
    std::iter::from_fn(move || {
        if done || chars.peek().is_none() {
            return None;
        }
        let mut fields = Vec::new();
        let mut field = String::new();
        let mut in_quotes = false;
        loop {
            match chars.next() {
                None => {
                    if in_quotes {
                        done = true;
                        return Some(Err("unterminated quoted field".into()));
                    }
                    fields.push(std::mem::take(&mut field));
                    done = true;
                    return Some(Ok(fields));
                }
                Some('"') if in_quotes => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                Some('"') if field.is_empty() => in_quotes = true,
                Some('"') => {
                    done = true;
                    return Some(Err("quote inside unquoted field".into()));
                }
                Some(',') if !in_quotes => fields.push(std::mem::take(&mut field)),
                Some('\n') if !in_quotes => {
                    fields.push(std::mem::take(&mut field));
                    return Some(Ok(fields));
                }
                Some('\r') if !in_quotes && chars.peek() == Some(&'\n') => {
                    chars.next();
                    fields.push(std::mem::take(&mut field));
                    return Some(Ok(fields));
                }
                Some(c) => field.push(c),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeKind, Schema};

    fn schema() -> Schema {
        Schema::builder()
            .categorical("gender", AttributeKind::Protected, &["Male", "Female"])
            .integer("yob", AttributeKind::Protected, 1950, 2009)
            .numeric("approval", AttributeKind::Observed, 25.0, 100.0)
            .build()
            .unwrap()
    }

    fn sample_table() -> Table {
        let mut t = Table::new(schema());
        t.push_row(&[Value::cat("Male"), Value::int(1980), Value::num(75.5)])
            .unwrap();
        t.push_row(&[Value::cat("Female"), Value::int(1999), Value::num(90.0)])
            .unwrap();
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample_table();
        let csv = to_csv(&t);
        let back = from_csv(schema(), &csv).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn header_written() {
        let csv = to_csv(&sample_table());
        assert!(csv.starts_with("gender,yob,approval\n"));
    }

    #[test]
    fn quoted_fields_roundtrip() {
        let s = Schema::builder()
            .categorical("name", AttributeKind::Protected, &["a,b", "c\"d", "e\nf"])
            .build()
            .unwrap();
        let mut t = Table::new(s.clone());
        t.push_row(&[Value::cat("a,b")]).unwrap();
        t.push_row(&[Value::cat("c\"d")]).unwrap();
        t.push_row(&[Value::cat("e\nf")]).unwrap();
        let csv = to_csv(&t);
        let back = from_csv(s, &csv).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn header_mismatch_rejected() {
        let csv = "a,b,c\n";
        let err = from_csv(schema(), csv).unwrap_err();
        assert!(matches!(err, StoreError::Csv { line: 1, .. }));
    }

    #[test]
    fn bad_field_count_reported_with_line() {
        let csv = "gender,yob,approval\nMale,1980\n";
        let err = from_csv(schema(), csv).unwrap_err();
        assert!(matches!(err, StoreError::Csv { line: 2, .. }));
    }

    #[test]
    fn bad_number_reported() {
        let csv = "gender,yob,approval\nMale,xyz,80\n";
        let err = from_csv(schema(), csv).unwrap_err();
        match err {
            StoreError::Csv { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("xyz"));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn out_of_range_value_reported() {
        let csv = "gender,yob,approval\nMale,1900,80\n";
        let err = from_csv(schema(), csv).unwrap_err();
        assert!(matches!(err, StoreError::Csv { line: 2, .. }));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let csv = "gender,yob,approval\n\"Male,1980,80\n";
        assert!(from_csv(schema(), csv).is_err());
    }

    #[test]
    fn crlf_accepted() {
        let csv = "gender,yob,approval\r\nMale,1980,75.5\r\n";
        let t = from_csv(schema(), csv).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_body_gives_empty_table() {
        let csv = "gender,yob,approval\n";
        let t = from_csv(schema(), csv).unwrap();
        assert!(t.is_empty());
    }
}
