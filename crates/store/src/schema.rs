//! Attribute schemas.
//!
//! Definition 1 of the paper distinguishes **protected** attributes
//! (inherent properties: gender, age, ethnicity, origin, …) from
//! **observed** attributes (skills: reputation, language test, approval
//! rate, …). Partitions may only be formed on protected attributes;
//! scoring functions may only read observed attributes. Encoding the
//! distinction in the schema lets the audit layer enforce both rules.

use crate::StoreError;

/// Whether an attribute is protected (groupable) or observed (scorable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeKind {
    /// Inherent property of a person; fairness groups are defined on
    /// these (gender, country, year of birth, …).
    Protected,
    /// A skill signal a scoring function may read (language test score,
    /// approval rate, …).
    Observed,
    /// Neither: bookkeeping columns (ids, derived labels, …).
    Metadata,
}

/// Physical/logical type of an attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum DataType {
    /// Dictionary-encoded categorical with a fixed declared domain.
    Categorical {
        /// Allowed values, in declaration order (codes are indexes).
        domain: Vec<String>,
    },
    /// Real-valued in `[min, max]`.
    Numeric {
        /// Smallest allowed value.
        min: f64,
        /// Largest allowed value.
        max: f64,
    },
    /// Integer-valued in `[min, max]`.
    Integer {
        /// Smallest allowed value.
        min: i64,
        /// Largest allowed value.
        max: i64,
    },
}

impl DataType {
    /// Short name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            DataType::Categorical { .. } => "categorical",
            DataType::Numeric { .. } => "numeric",
            DataType::Integer { .. } => "integer",
        }
    }
}

/// One named, typed, kinded attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeDef {
    /// Attribute name, unique within a schema.
    pub name: String,
    /// Protected / observed / metadata.
    pub kind: AttributeKind,
    /// Value type.
    pub dtype: DataType,
}

impl AttributeDef {
    /// Number of categories for categorical attributes, `None` otherwise.
    pub fn cardinality(&self) -> Option<usize> {
        match &self.dtype {
            DataType::Categorical { domain } => Some(domain.len()),
            _ => None,
        }
    }

    /// Resolve a categorical value to its code.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotCategorical`] or [`StoreError::UnknownCategory`].
    pub fn code_of(&self, value: &str) -> Result<u32, StoreError> {
        match &self.dtype {
            DataType::Categorical { domain } => domain
                .iter()
                .position(|v| v == value)
                .map(|i| i as u32)
                .ok_or_else(|| StoreError::UnknownCategory {
                    attribute: self.name.clone(),
                    value: value.to_string(),
                }),
            _ => Err(StoreError::NotCategorical {
                attribute: self.name.clone(),
            }),
        }
    }

    /// Resolve a code back to its categorical label.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotCategorical`] or [`StoreError::BadCode`].
    pub fn label_of(&self, code: u32) -> Result<&str, StoreError> {
        match &self.dtype {
            DataType::Categorical { domain } => domain
                .get(code as usize)
                .map(String::as_str)
                .ok_or(StoreError::BadCode {
                    attribute: self.name.clone(),
                    code,
                }),
            _ => Err(StoreError::NotCategorical {
                attribute: self.name.clone(),
            }),
        }
    }
}

/// An ordered collection of attributes with unique names.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    attributes: Vec<AttributeDef>,
}

impl Schema {
    /// Start building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder {
            attributes: Vec::new(),
        }
    }

    /// All attributes, in declaration order.
    pub fn attributes(&self) -> &[AttributeDef] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn width(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute by index.
    pub fn attribute(&self, idx: usize) -> &AttributeDef {
        &self.attributes[idx]
    }

    /// Look up an attribute index by name.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchAttribute`].
    pub fn index_of(&self, name: &str) -> Result<usize, StoreError> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| StoreError::NoSuchAttribute {
                name: name.to_string(),
            })
    }

    /// Indexes of all attributes of the given kind.
    pub fn indexes_of_kind(&self, kind: AttributeKind) -> Vec<usize> {
        (0..self.attributes.len())
            .filter(|&i| self.attributes[i].kind == kind)
            .collect()
    }

    /// Indexes of all **categorical protected** attributes — the ones the
    /// audit algorithms may split on.
    pub fn splittable(&self) -> Vec<usize> {
        (0..self.attributes.len())
            .filter(|&i| {
                self.attributes[i].kind == AttributeKind::Protected
                    && matches!(self.attributes[i].dtype, DataType::Categorical { .. })
            })
            .collect()
    }
}

/// Builder for [`Schema`].
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    attributes: Vec<AttributeDef>,
}

impl SchemaBuilder {
    /// Add a categorical attribute with the given domain.
    pub fn categorical(mut self, name: &str, kind: AttributeKind, domain: &[&str]) -> Self {
        self.attributes.push(AttributeDef {
            name: name.to_string(),
            kind,
            dtype: DataType::Categorical {
                domain: domain.iter().map(|s| s.to_string()).collect(),
            },
        });
        self
    }

    /// Add a real-valued attribute constrained to `[min, max]`.
    pub fn numeric(mut self, name: &str, kind: AttributeKind, min: f64, max: f64) -> Self {
        self.attributes.push(AttributeDef {
            name: name.to_string(),
            kind,
            dtype: DataType::Numeric { min, max },
        });
        self
    }

    /// Add an integer-valued attribute constrained to `[min, max]`.
    pub fn integer(mut self, name: &str, kind: AttributeKind, min: i64, max: i64) -> Self {
        self.attributes.push(AttributeDef {
            name: name.to_string(),
            kind,
            dtype: DataType::Integer { min, max },
        });
        self
    }

    /// Add a pre-built attribute definition.
    pub fn attribute(mut self, def: AttributeDef) -> Self {
        self.attributes.push(def);
        self
    }

    /// Validate and produce the schema.
    ///
    /// # Errors
    ///
    /// [`StoreError::EmptySchema`], [`StoreError::DuplicateAttribute`],
    /// [`StoreError::EmptyDomain`], [`StoreError::DuplicateDomainValue`]
    /// or [`StoreError::BadRange`].
    pub fn build(self) -> Result<Schema, StoreError> {
        if self.attributes.is_empty() {
            return Err(StoreError::EmptySchema);
        }
        for (i, a) in self.attributes.iter().enumerate() {
            if self.attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(StoreError::DuplicateAttribute {
                    name: a.name.clone(),
                });
            }
            match &a.dtype {
                DataType::Categorical { domain } => {
                    if domain.is_empty() {
                        return Err(StoreError::EmptyDomain {
                            name: a.name.clone(),
                        });
                    }
                    for (j, v) in domain.iter().enumerate() {
                        if domain[..j].contains(v) {
                            return Err(StoreError::DuplicateDomainValue {
                                attribute: a.name.clone(),
                                value: v.clone(),
                            });
                        }
                    }
                }
                DataType::Numeric { min, max } => {
                    // `!(min <= max)` deliberately rejects NaN bounds.
                    #[allow(clippy::neg_cmp_op_on_partial_ord)]
                    if !(min <= max) || !min.is_finite() || !max.is_finite() {
                        return Err(StoreError::BadRange {
                            name: a.name.clone(),
                        });
                    }
                }
                DataType::Integer { min, max } => {
                    if min > max {
                        return Err(StoreError::BadRange {
                            name: a.name.clone(),
                        });
                    }
                }
            }
        }
        Ok(Schema {
            attributes: self.attributes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::builder()
            .categorical("gender", AttributeKind::Protected, &["Male", "Female"])
            .categorical(
                "country",
                AttributeKind::Protected,
                &["America", "India", "Other"],
            )
            .integer("yob", AttributeKind::Protected, 1950, 2009)
            .numeric("approval", AttributeKind::Observed, 25.0, 100.0)
            .build()
            .unwrap()
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = sample();
        assert_eq!(s.width(), 4);
        assert_eq!(s.index_of("country").unwrap(), 1);
        assert_eq!(s.attribute(1).name, "country");
        assert!(matches!(
            s.index_of("nope"),
            Err(StoreError::NoSuchAttribute { .. })
        ));
    }

    #[test]
    fn kinds_filter() {
        let s = sample();
        assert_eq!(s.indexes_of_kind(AttributeKind::Protected), vec![0, 1, 2]);
        assert_eq!(s.indexes_of_kind(AttributeKind::Observed), vec![3]);
    }

    #[test]
    fn splittable_excludes_numeric_protected() {
        let s = sample();
        // yob is protected but numeric: not splittable until bucketised.
        assert_eq!(s.splittable(), vec![0, 1]);
    }

    #[test]
    fn code_label_roundtrip() {
        let s = sample();
        let g = s.attribute(0);
        assert_eq!(g.code_of("Female").unwrap(), 1);
        assert_eq!(g.label_of(1).unwrap(), "Female");
        assert!(matches!(
            g.code_of("X"),
            Err(StoreError::UnknownCategory { .. })
        ));
        assert!(matches!(
            g.label_of(9),
            Err(StoreError::BadCode { code: 9, .. })
        ));
        assert_eq!(g.cardinality(), Some(2));
        assert_eq!(s.attribute(2).cardinality(), None);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let r = Schema::builder()
            .categorical("a", AttributeKind::Protected, &["x"])
            .numeric("a", AttributeKind::Observed, 0.0, 1.0)
            .build();
        assert!(matches!(r, Err(StoreError::DuplicateAttribute { .. })));
    }

    #[test]
    fn empty_schema_rejected() {
        assert!(matches!(
            Schema::builder().build(),
            Err(StoreError::EmptySchema)
        ));
    }

    #[test]
    fn empty_domain_rejected() {
        let r = Schema::builder()
            .categorical("a", AttributeKind::Protected, &[])
            .build();
        assert!(matches!(r, Err(StoreError::EmptyDomain { .. })));
    }

    #[test]
    fn duplicate_domain_value_rejected() {
        let r = Schema::builder()
            .categorical("a", AttributeKind::Protected, &["x", "x"])
            .build();
        assert!(matches!(r, Err(StoreError::DuplicateDomainValue { .. })));
    }

    #[test]
    fn bad_ranges_rejected() {
        assert!(Schema::builder()
            .numeric("a", AttributeKind::Observed, 1.0, 0.0)
            .build()
            .is_err());
        assert!(Schema::builder()
            .numeric("a", AttributeKind::Observed, f64::NAN, 1.0)
            .build()
            .is_err());
        assert!(Schema::builder()
            .integer("a", AttributeKind::Observed, 5, 4)
            .build()
            .is_err());
    }

    #[test]
    fn non_categorical_code_lookup_fails() {
        let s = sample();
        assert!(matches!(
            s.attribute(3).code_of("50"),
            Err(StoreError::NotCategorical { .. })
        ));
    }
}
