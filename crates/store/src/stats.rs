//! Per-column summary statistics (the `describe` surface used by the
//! CLI and reports).

use crate::column::Column;
use crate::table::Table;

/// Summary of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSummary {
    /// Numeric / integer column summary.
    Numeric {
        /// Smallest value present.
        min: f64,
        /// Largest value present.
        max: f64,
        /// Mean.
        mean: f64,
        /// Population standard deviation.
        std: f64,
    },
    /// Categorical column summary: `(label, count)` per domain value in
    /// domain order (zero counts included).
    Categorical {
        /// Per-label counts.
        counts: Vec<(String, usize)>,
    },
    /// The table is empty.
    Empty,
}

/// Summarise one column.
pub fn summarise(table: &Table, attr: usize) -> ColumnSummary {
    if table.is_empty() {
        return ColumnSummary::Empty;
    }
    match table.column(attr) {
        Column::Categorical(codes) => {
            let def = table.schema().attribute(attr);
            let cardinality = def.cardinality().expect("categorical has cardinality");
            let mut counts = vec![0usize; cardinality];
            for &c in codes {
                counts[c as usize] += 1;
            }
            ColumnSummary::Categorical {
                counts: counts
                    .into_iter()
                    .enumerate()
                    .map(|(code, n)| {
                        (
                            def.label_of(code as u32).expect("valid code").to_string(),
                            n,
                        )
                    })
                    .collect(),
            }
        }
        Column::Numeric(values) => numeric_summary(values.iter().copied()),
        Column::Integer(values) => numeric_summary(values.iter().map(|&v| v as f64)),
    }
}

fn numeric_summary(values: impl Iterator<Item = f64> + Clone) -> ColumnSummary {
    let mut n = 0usize;
    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in values.clone() {
        n += 1;
        sum += v;
        min = min.min(v);
        max = max.max(v);
    }
    if n == 0 {
        return ColumnSummary::Empty;
    }
    let mean = sum / n as f64;
    let var = values.map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
    ColumnSummary::Numeric {
        min,
        max,
        mean,
        std: var.sqrt(),
    }
}

/// Domain cardinality and number of distinct values actually present
/// for a categorical column. The present count is the number of
/// children a split on this attribute yields (its *bin count*), which
/// is what the query analyzer costs audit candidates with. `None` for
/// non-categorical columns.
pub fn cardinality_present(table: &Table, attr: usize) -> Option<(usize, usize)> {
    let Column::Categorical(codes) = table.column(attr) else {
        return None;
    };
    let cardinality = table
        .schema()
        .attribute(attr)
        .cardinality()
        .expect("categorical has cardinality");
    let mut seen = vec![false; cardinality];
    for &c in codes {
        seen[c as usize] = true;
    }
    Some((cardinality, seen.iter().filter(|&&s| s).count()))
}

/// Render a full-table description: one block per attribute.
///
/// Protected categorical columns additionally report their domain
/// cardinality and the number of split bins (distinct values present),
/// the metadata the FairQL analyzer uses to cost audit candidates.
pub fn describe(table: &Table) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} rows, {} attributes\n",
        table.len(),
        table.schema().width()
    ));
    for (idx, attr) in table.schema().attributes().iter().enumerate() {
        out.push_str(&format!(
            "\n{} ({:?}, {}):\n",
            attr.name,
            attr.kind,
            attr.dtype.type_name()
        ));
        match summarise(table, idx) {
            ColumnSummary::Numeric {
                min,
                max,
                mean,
                std,
            } => {
                out.push_str(&format!(
                    "  min {min:.3}  max {max:.3}  mean {mean:.3}  std {std:.3}\n"
                ));
            }
            ColumnSummary::Categorical { counts } => {
                if attr.kind == crate::schema::AttributeKind::Protected {
                    let (cardinality, present) =
                        cardinality_present(table, idx).expect("categorical");
                    out.push_str(&format!(
                        "  cardinality {cardinality}  split bins {present}\n"
                    ));
                }
                for (label, n) in counts {
                    out.push_str(&format!("  {label:<20} {n}\n"));
                }
            }
            ColumnSummary::Empty => out.push_str("  (empty)\n"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeKind, Schema};
    use crate::table::Value;

    fn table() -> Table {
        let schema = Schema::builder()
            .categorical("gender", AttributeKind::Protected, &["Male", "Female"])
            .integer("yob", AttributeKind::Protected, 1950, 2009)
            .numeric("approval", AttributeKind::Observed, 25.0, 100.0)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (g, y, a) in [
            ("Male", 1960, 50.0),
            ("Male", 1980, 70.0),
            ("Female", 2000, 90.0),
        ] {
            t.push_row(&[Value::cat(g), Value::int(y), Value::num(a)])
                .unwrap();
        }
        t
    }

    #[test]
    fn categorical_counts_include_zeros() {
        let t = table();
        match summarise(&t, 0) {
            ColumnSummary::Categorical { counts } => {
                assert_eq!(
                    counts,
                    vec![("Male".to_string(), 2), ("Female".to_string(), 1)]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn numeric_summary_values() {
        let t = table();
        match summarise(&t, 2) {
            ColumnSummary::Numeric {
                min,
                max,
                mean,
                std,
            } => {
                assert_eq!(min, 50.0);
                assert_eq!(max, 90.0);
                assert!((mean - 70.0).abs() < 1e-12);
                // Population std of {50,70,90} = sqrt(800/3).
                assert!((std - (800.0f64 / 3.0).sqrt()).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn integer_column_summarised_as_numeric() {
        let t = table();
        assert!(matches!(summarise(&t, 1), ColumnSummary::Numeric { .. }));
    }

    #[test]
    fn empty_table() {
        let t = Table::new(table().schema().clone());
        assert_eq!(summarise(&t, 0), ColumnSummary::Empty);
    }

    #[test]
    fn cardinality_present_counts_distinct_codes() {
        let t = table();
        assert_eq!(cardinality_present(&t, 0), Some((2, 2)));
        assert_eq!(cardinality_present(&t, 1), None);
    }

    #[test]
    fn describe_reports_protected_cardinality() {
        let text = describe(&table());
        assert!(text.contains("cardinality 2  split bins 2"));
    }

    #[test]
    fn describe_renders_all_attributes() {
        let text = describe(&table());
        assert!(text.contains("3 rows"));
        assert!(text.contains("gender") && text.contains("yob") && text.contains("approval"));
        assert!(text.contains("Male") && text.contains("mean"));
    }
}
