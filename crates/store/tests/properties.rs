//! Property-based tests: row-set algebra, index/scan agreement, CSV
//! round-trips, bucketisation totality.

use fairjob_store::bucketize::{bucketize, BucketSpec};
use fairjob_store::groupby::{group_by, group_by_many};
use fairjob_store::index::CategoricalIndex;
use fairjob_store::schema::{AttributeKind, Schema};
use fairjob_store::table::{Table, Value};
use fairjob_store::RowSet;
use proptest::prelude::*;

fn rowset(max: u32) -> impl Strategy<Value = RowSet> {
    prop::collection::vec(0..max, 0..64).prop_map(RowSet::from_rows)
}

fn schema() -> Schema {
    Schema::builder()
        .categorical("gender", AttributeKind::Protected, &["Male", "Female"])
        .categorical(
            "country",
            AttributeKind::Protected,
            &["America", "India", "Other"],
        )
        .integer("yob", AttributeKind::Protected, 1950, 2009)
        .numeric("approval", AttributeKind::Observed, 25.0, 100.0)
        .build()
        .unwrap()
}

/// Strategy: a populated random table over the fixed schema.
fn table(max_rows: usize) -> impl Strategy<Value = Table> {
    prop::collection::vec(
        (0u32..2, 0u32..3, 1950i64..=2009, 25.0f64..=100.0),
        1..max_rows,
    )
    .prop_map(|rows| {
        let mut t = Table::new(schema());
        for (g, c, y, a) in rows {
            let gl = if g == 0 { "Male" } else { "Female" };
            let cl = ["America", "India", "Other"][c as usize];
            t.push_row(&[Value::cat(gl), Value::cat(cl), Value::int(y), Value::num(a)])
                .unwrap();
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rowset_ops_match_btreeset(a in rowset(128), b in rowset(128)) {
        use std::collections::BTreeSet;
        let sa: BTreeSet<u32> = a.rows().iter().copied().collect();
        let sb: BTreeSet<u32> = b.rows().iter().copied().collect();
        let inter: Vec<u32> = sa.intersection(&sb).copied().collect();
        let union: Vec<u32> = sa.union(&sb).copied().collect();
        let diff: Vec<u32> = sa.difference(&sb).copied().collect();
        let (i, u, d) = (a.intersect(&b), a.union(&b), a.difference(&b));
        prop_assert_eq!(i.rows(), &inter[..]);
        prop_assert_eq!(u.rows(), &union[..]);
        prop_assert_eq!(d.rows(), &diff[..]);
        prop_assert_eq!(a.is_disjoint(&b), sa.is_disjoint(&sb));
    }

    #[test]
    fn bitmap_algebra_matches_rowset(a in rowset(200), b in rowset(200)) {
        use fairjob_store::bitmap::Bitmap;
        let ba = Bitmap::from_rowset(&a, 200);
        let bb = Bitmap::from_rowset(&b, 200);
        prop_assert_eq!(ba.intersect(&bb).to_rowset(), a.intersect(&b));
        prop_assert_eq!(ba.union(&bb).to_rowset(), a.union(&b));
        prop_assert_eq!(ba.difference(&bb).to_rowset(), a.difference(&b));
        prop_assert_eq!(ba.len(), a.len());
        prop_assert_eq!(ba.to_rowset(), a);
    }

    #[test]
    fn asymmetric_intersect_matches_btreeset(a in rowset(24), b in rowset(4000)) {
        // Size gap forces the galloping path (in either argument order).
        use std::collections::BTreeSet;
        let sa: BTreeSet<u32> = a.rows().iter().copied().collect();
        let sb: BTreeSet<u32> = b.rows().iter().copied().collect();
        let expected: Vec<u32> = sa.intersection(&sb).copied().collect();
        prop_assert_eq!(a.intersect(&b).rows(), &expected[..]);
        prop_assert_eq!(b.intersect(&a).rows(), &expected[..]);
    }

    #[test]
    fn split_kernel_matches_legacy_split(
        t in table(100),
        within in rowset(100),
        bins in 1usize..12,
    ) {
        // The kernel must agree with the posting-intersection oracle on
        // children AND histograms, for any partition and bin layout.
        let within = RowSet::from_rows(
            within.rows().iter().copied().filter(|&r| (r as usize) < t.len()).collect(),
        );
        let bin_of: Vec<u32> = (0..t.len() as u32).map(|r| r % bins as u32).collect();
        for attr in t.schema().splittable() {
            let idx = CategoricalIndex::build(&t, attr).unwrap();
            let kernel = idx.split_with_bins(&within, &bin_of, bins);
            let legacy = idx.split(&within);
            prop_assert_eq!(kernel.len(), legacy.len());
            for (child, (code, rows)) in kernel.iter().zip(&legacy) {
                prop_assert_eq!(child.code, *code);
                prop_assert_eq!(&child.rows, rows);
                let mut expected = vec![0.0; bins];
                for row in rows.iter() {
                    expected[bin_of[row] as usize] += 1.0;
                }
                prop_assert_eq!(&child.bin_counts, &expected);
                prop_assert_eq!(child.bin_counts.iter().sum::<f64>(), rows.len() as f64);
            }
        }
    }

    #[test]
    fn index_split_matches_groupby_scan(t in table(100)) {
        let all = RowSet::all(t.len());
        for attr in t.schema().splittable() {
            let idx = CategoricalIndex::build(&t, attr).unwrap();
            prop_assert_eq!(idx.split(&all), group_by(&t, &all, attr).unwrap());
        }
    }

    #[test]
    fn groupby_is_disjoint_cover(t in table(100)) {
        let all = RowSet::all(t.len());
        let groups = group_by(&t, &all, 1).unwrap();
        let mut union = RowSet::empty();
        for (i, (_, a)) in groups.iter().enumerate() {
            for (_, b) in &groups[i + 1..] {
                prop_assert!(a.is_disjoint(b));
            }
            union = union.union(a);
        }
        prop_assert_eq!(union, all);
    }

    #[test]
    fn groupby_many_refines_single(t in table(100)) {
        let all = RowSet::all(t.len());
        let fine = group_by_many(&t, &all, &[0, 1]).unwrap();
        let coarse = group_by(&t, &all, 0).unwrap();
        // Every fine group is a subset of exactly one coarse group.
        for (key, rows) in &fine {
            let parent = coarse.iter().find(|(code, _)| *code == key[0]).unwrap();
            prop_assert_eq!(rows.intersect(&parent.1), rows.clone());
        }
        let total: usize = fine.iter().map(|(_, r)| r.len()).sum();
        prop_assert_eq!(total, t.len());
    }

    #[test]
    fn csv_roundtrip(t in table(60)) {
        let text = fairjob_store::csv::to_csv(&t);
        let back = fairjob_store::csv::from_csv(schema(), &text).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn bucketize_covers_every_row(t in table(80), n in 1usize..8) {
        let mut t = t;
        let idx = bucketize(&mut t, "yob", "band", &BucketSpec::EqualWidth { n }).unwrap();
        let codes = t.column(idx).as_categorical().unwrap();
        prop_assert_eq!(codes.len(), t.len());
        for &c in codes {
            prop_assert!((c as usize) < n);
        }
        // Bucket order preserves value order.
        let years = t.column_by_name("yob").unwrap().as_integer().unwrap().to_vec();
        for i in 0..t.len() {
            for j in 0..t.len() {
                if years[i] < years[j] {
                    prop_assert!(codes[i] <= codes[j]);
                }
            }
        }
    }
}
