//! Unfairness drift monitoring (extension).
//!
//! An audit is a snapshot; a deployed marketplace keeps re-scoring
//! workers as their observed attributes evolve (see
//! `fairjob_marketplace::hiring` for the feedback loop that drives
//! this). [`DriftMonitor`] holds the partitioning a baseline audit
//! found and tracks its unfairness across successive score vectors,
//! flagging when it leaves the band the baseline established — the
//! "alert when the ranking quietly becomes unfair" primitive.

use crate::error::AuditError;
use crate::partition::Partitioning;
use fairjob_hist::{BinSpec, Histogram, HistogramDistance};
use fairjob_store::RowSet;
use std::sync::Arc;

/// One observation of the monitored metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftPoint {
    /// Observation index (0-based round number).
    pub round: usize,
    /// Unfairness of the monitored partitioning at this round.
    pub unfairness: f64,
    /// Whether the alert threshold was exceeded.
    pub alert: bool,
}

/// Tracks the unfairness of a fixed partitioning over evolving scores.
pub struct DriftMonitor {
    groups: Vec<RowSet>,
    spec: BinSpec,
    distance: Arc<dyn HistogramDistance>,
    /// Alert when unfairness exceeds `baseline * relative_threshold +
    /// absolute_slack`.
    baseline: f64,
    relative_threshold: f64,
    absolute_slack: f64,
    history: Vec<DriftPoint>,
}

impl DriftMonitor {
    /// Monitor the groups of an audited partitioning. `baseline` is the
    /// audit-time unfairness; an observation alerts when it exceeds
    /// `baseline * relative_threshold + absolute_slack`.
    pub fn new(
        partitioning: &Partitioning,
        spec: BinSpec,
        distance: Arc<dyn HistogramDistance>,
        baseline: f64,
        relative_threshold: f64,
        absolute_slack: f64,
    ) -> Self {
        DriftMonitor {
            groups: partitioning
                .partitions()
                .iter()
                .map(|p| p.rows.clone())
                .collect(),
            spec,
            distance,
            baseline,
            relative_threshold,
            absolute_slack,
            history: Vec::new(),
        }
    }

    /// The alert threshold.
    pub fn threshold(&self) -> f64 {
        self.baseline * self.relative_threshold + self.absolute_slack
    }

    /// Feed a fresh score vector (row-aligned with the audited table);
    /// returns the recorded point.
    ///
    /// # Errors
    ///
    /// [`AuditError::ScoreLength`] when the vector length changed,
    /// distance failures otherwise.
    pub fn observe(&mut self, scores: &[f64]) -> Result<DriftPoint, AuditError> {
        let rows: usize = self.groups.iter().map(RowSet::len).sum();
        if scores.len() < rows {
            return Err(AuditError::ScoreLength {
                rows,
                scores: scores.len(),
            });
        }
        let hists: Vec<Histogram> = self
            .groups
            .iter()
            .map(|g| {
                let mut h = Histogram::empty(self.spec.clone());
                for row in g.iter() {
                    h.add(scores[row]);
                }
                h
            })
            .collect();
        let refs: Vec<&Histogram> = hists.iter().collect();
        let unfairness = crate::unfairness::average_pairwise(&refs, self.distance.as_ref())?;
        let point = DriftPoint {
            round: self.history.len(),
            unfairness,
            alert: unfairness > self.threshold(),
        };
        self.history.push(point);
        Ok(point)
    }

    /// All recorded points.
    pub fn history(&self) -> &[DriftPoint] {
        &self.history
    }

    /// The first alerting round, if any.
    pub fn first_alert(&self) -> Option<usize> {
        self.history.iter().find(|p| p.alert).map(|p| p.round)
    }

    /// Sparkline-style rendering of the trajectory for reports.
    pub fn render(&self, width: usize) -> String {
        if self.history.is_empty() {
            return "(no observations)".to_string();
        }
        let max = self
            .history
            .iter()
            .map(|p| p.unfairness)
            .fold(self.threshold(), f64::max)
            .max(1e-9);
        let mut out = String::new();
        for p in &self.history {
            let bar = ((p.unfairness / max) * width as f64).round() as usize;
            out.push_str(&format!(
                "round {:>4}  {:>7.4} {}{}\n",
                p.round,
                p.unfairness,
                "#".repeat(bar),
                if p.alert { "  << ALERT" } else { "" }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
    use crate::{AuditConfig, AuditContext};
    use fairjob_hist::distance::Emd1d;
    use fairjob_marketplace::scoring::{LinearScore, ScoringFunction};
    use fairjob_marketplace::{bucketise_numeric_protected, generate_uniform};

    fn monitored() -> (fairjob_store::Table, Vec<f64>, DriftMonitor) {
        let mut workers = generate_uniform(300, 51);
        bucketise_numeric_protected(&mut workers).unwrap();
        let scores = LinearScore::alpha("f", 0.5).score_all(&workers).unwrap();
        let cfg = AuditConfig {
            attributes: Some(vec!["gender".into()]),
            ..Default::default()
        };
        let ctx = AuditContext::new(&workers, &scores, cfg).unwrap();
        let audit = Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
        let monitor = DriftMonitor::new(
            &audit.partitioning,
            ctx.spec().clone(),
            Arc::new(Emd1d),
            audit.unfairness,
            2.0,
            0.02,
        );
        (workers, scores, monitor)
    }

    #[test]
    fn stable_scores_do_not_alert() {
        let (_, scores, mut monitor) = monitored();
        for _ in 0..5 {
            let point = monitor.observe(&scores).unwrap();
            assert!(!point.alert, "{point:?}");
        }
        assert_eq!(monitor.history().len(), 5);
        assert_eq!(monitor.first_alert(), None);
    }

    #[test]
    fn injected_bias_alerts() {
        let (workers, scores, mut monitor) = monitored();
        // Round 0: baseline. Rounds 1..: progressively separate genders.
        monitor.observe(&scores).unwrap();
        let gender = workers.schema().index_of("gender").unwrap();
        let codes = workers.column(gender).as_categorical().unwrap().to_vec();
        let mut drifted = scores.clone();
        for strength in [0.2, 0.5, 0.9] {
            for (row, &code) in codes.iter().enumerate() {
                let target = if code == 0 { 0.9 } else { 0.1 };
                drifted[row] = scores[row] * (1.0 - strength) + target * strength;
            }
            monitor.observe(&drifted).unwrap();
        }
        let first = monitor.first_alert().expect("strong drift must alert");
        assert!(first >= 1, "baseline round must not alert");
        let render = monitor.render(20);
        assert!(render.contains("ALERT"));
    }

    #[test]
    fn short_score_vector_rejected() {
        let (_, scores, mut monitor) = monitored();
        assert!(matches!(
            monitor.observe(&scores[..10]),
            Err(AuditError::ScoreLength { .. })
        ));
    }

    #[test]
    fn empty_render() {
        let (_, _, monitor) = monitored();
        assert!(monitor.render(10).contains("no observations"));
    }
}
