//! The most-unfair-partitioning search of *Exploring Fairness of Ranking
//! in Online Job Marketplaces* (EDBT 2019).
//!
//! Given a worker table, a score per worker and a set of protected
//! attributes, the **Most Unfair Partitioning Problem** (Definition 1)
//! asks for the full disjoint partitioning of the workers on their
//! protected attributes that maximises `unfairness(P, f)` — the average
//! pairwise Earth Mover's Distance between the per-partition score
//! histograms (Definition 2).
//!
//! The search space is exponential, so the paper proposes greedy
//! heuristics. This crate implements all of them plus the baselines and
//! reference searches:
//!
//! | Algorithm | Module | Paper role |
//! |---|---|---|
//! | `balanced` | [`algorithms::balanced`] | Algorithm 1 — split *all* leaves on the worst attribute each round |
//! | `unbalanced` | [`algorithms::unbalanced`] | Algorithm 2 — per-partition recursive split decision |
//! | `r-balanced`, `r-unbalanced` | same modules, random attribute choice | baselines |
//! | `all-attributes` | [`algorithms::all_attributes`] | baseline — full cartesian partitioning |
//! | `exhaustive` (tree & cell space) | [`algorithms::exhaustive`] | the brute force the paper reports as infeasible |
//! | `beam` | [`algorithms::beam`] | extension — beam search between greedy and exhaustive |
//!
//! The measure is pluggable ([`fairjob_hist::HistogramDistance`]) to
//! support the future-work ablation over JSD / KS / total variation / …,
//! and [`stats`] adds a permutation significance test for observed
//! unfairness values.
//!
//! # Example
//!
//! ```
//! use fairjob_core::{AuditConfig, AuditContext};
//! use fairjob_core::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
//! use fairjob_marketplace::{generate_uniform, bucketise_numeric_protected};
//! use fairjob_marketplace::scoring::{LinearScore, ScoringFunction};
//!
//! let mut workers = generate_uniform(200, 42);
//! bucketise_numeric_protected(&mut workers).unwrap();
//! let scores = LinearScore::alpha("f1", 0.5).score_all(&workers).unwrap();
//! let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).unwrap();
//! let result = Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
//! assert!(result.unfairness >= 0.0);
//! assert!(!result.partitioning.partitions().is_empty());
//! ```

pub mod algorithms;
pub mod context;
pub mod drift;
pub mod engine;
pub mod error;
pub mod exposure;
pub mod joint;
pub mod partition;
pub mod pool;
pub mod report;
pub mod scratch;
pub mod stats;
pub mod unfairness;

pub use context::{AuditConfig, AuditContext};
pub use engine::{
    CandidateScore, EngineCaches, EngineStats, EvalEngine, IncrementalEval, InvalidationReport,
    RowChange, RowFacts, SplitChildren,
};
pub use error::AuditError;
pub use partition::{Partition, Partitioning};
pub use report::AuditResult;
