//! Thread-local persistent solver workspaces.
//!
//! The worker-pool threads live for the whole process, so giving each
//! thread one [`SolveScratch`] means every workspace reaches its
//! steady-state size once and is then reused for every chunk that
//! thread ever executes — the exact-solve path stops touching the
//! allocator entirely. The main thread gets one too, which serves the
//! engine's serial distance path.

use fairjob_hist::SolveScratch;
use std::cell::RefCell;

thread_local! {
    static SOLVE_SCRATCH: RefCell<SolveScratch> = RefCell::new(SolveScratch::new());
}

/// Run `f` on this thread's persistent [`SolveScratch`].
pub fn with_scratch<T>(f: impl FnOnce(&mut SolveScratch) -> T) -> T {
    SOLVE_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_persists_within_a_thread() {
        let first = with_scratch(|s| {
            s.begin_chunk();
            s as *const SolveScratch as usize
        });
        let second = with_scratch(|s| s as *const SolveScratch as usize);
        assert_eq!(first, second, "same thread must reuse one workspace");
    }
}
