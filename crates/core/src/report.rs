//! Audit results and their human-readable / machine-readable rendering.

use crate::engine::EngineStats;
use crate::partition::Partitioning;
use crate::AuditContext;
use std::time::Duration;

/// Minimal JSON string escaping (the workspace deliberately carries no
/// serialisation crates; audit reports are flat enough to emit by hand).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The outcome of running one algorithm on one audit context.
#[derive(Debug, Clone)]
pub struct AuditResult {
    /// Which algorithm produced this result (`"balanced"`, …).
    pub algorithm: String,
    /// The most-unfair partitioning the algorithm found.
    pub partitioning: Partitioning,
    /// `unfairness(P, f)` of that partitioning — the average pairwise
    /// histogram distance reported in the paper's tables.
    pub unfairness: f64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// How many candidate partitionings the algorithm evaluated (the
    /// driver of the runtime differences in Tables 1–2).
    pub candidates_evaluated: usize,
    /// Evaluation-engine counters for the run: distances actually
    /// computed, memo-cache hits, and cache bypasses, plus the split
    /// fast path's splits computed, split-cache hits, rows scanned, and
    /// histograms built. All zero for algorithms that do not route
    /// through [`crate::EvalEngine`].
    pub engine: EngineStats,
}

impl AuditResult {
    /// Render a report in the style of Figure 1: the unfairness value
    /// followed by one line per partition (predicate, size, score mean)
    /// and optionally the per-partition histograms.
    pub fn render(&self, ctx: &AuditContext<'_>, with_histograms: bool) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "algorithm: {}\nunfairness (avg pairwise {}): {:.4}\npartitions: {}\nattributes used: {}\nelapsed: {:?}\n",
            self.algorithm,
            ctx.distance().name(),
            self.unfairness,
            self.partitioning.len(),
            self.partitioning
                .attributes_used()
                .iter()
                .map(|&a| ctx.schema().attribute(a).name.clone())
                .collect::<Vec<_>>()
                .join(", "),
            self.elapsed,
        ));
        if self.engine.lookups() > 0 {
            out.push_str(&format!(
                "engine: {} distances computed, {} cache hits, {} bypasses\n",
                self.engine.distances_computed, self.engine.cache_hits, self.engine.cache_bypasses,
            ));
        }
        if self.engine.split_lookups() > 0 {
            out.push_str(&format!(
                "splits: {} computed, {} cache hits, {} rows scanned, {} histograms built\n",
                self.engine.splits_computed,
                self.engine.split_cache_hits,
                self.engine.rows_scanned,
                self.engine.histograms_built,
            ));
        }
        if self.engine.cache_evictions + self.engine.split_evictions > 0 {
            out.push_str(&format!(
                "evictions: {} distance entries, {} split entries\n",
                self.engine.cache_evictions, self.engine.split_evictions,
            ));
        }
        if self.engine.bounds_screened + self.engine.exact_solves + self.engine.pool_tasks > 0 {
            out.push_str(&format!(
                "bounds: {} pairs screened, {} exact solves, {} pool tasks\n",
                self.engine.bounds_screened, self.engine.exact_solves, self.engine.pool_tasks,
            ));
        }
        if self.engine.ground_cache_hits + self.engine.scratch_reuses + self.engine.warm_starts > 0
        {
            out.push_str(&format!(
                "solver: {} ground cache hits, {} scratch reuses, {} warm starts\n",
                self.engine.ground_cache_hits, self.engine.scratch_reuses, self.engine.warm_starts,
            ));
        }
        if self.engine.shard_tasks > 0 {
            out.push_str(&format!(
                "shards: {} shard tasks, {} rows classified in parallel\n",
                self.engine.shard_tasks, self.engine.rows_classified_parallel,
            ));
        }
        if self.engine.page_hits + self.engine.page_misses + self.engine.pages_skipped > 0 {
            out.push_str(&format!(
                "pages: {} scanned, {} skipped, {} cache hits, {} misses, {} evictions\n",
                self.engine.pages_scanned,
                self.engine.pages_skipped,
                self.engine.page_hits,
                self.engine.page_misses,
                self.engine.page_evictions,
            ));
        }
        let mut parts: Vec<&crate::Partition> = self.partitioning.partitions().iter().collect();
        parts.sort_by_key(|p| std::cmp::Reverse(p.len()));
        for p in parts {
            let mean = p
                .histogram
                .mean()
                .map(|m| format!("{m:.3}"))
                .unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "  {:<60} mean score {}\n",
                p.describe_in(ctx.schema()),
                mean
            ));
            if with_histograms {
                for line in p.histogram.render_ascii(30).lines() {
                    out.push_str(&format!("    {line}\n"));
                }
            }
        }
        out
    }
}

impl AuditResult {
    /// Machine-readable JSON rendering of the result (stable field
    /// names; one object, no trailing newline).
    pub fn to_json(&self, ctx: &AuditContext<'_>) -> String {
        let schema = ctx.schema();
        let attributes: Vec<String> = self
            .partitioning
            .attributes_used()
            .iter()
            .map(|&a| format!("\"{}\"", json_escape(&schema.attribute(a).name)))
            .collect();
        let partitions: Vec<String> = self
            .partitioning
            .partitions()
            .iter()
            .map(|p| {
                let constraints: Vec<String> = p
                    .predicate
                    .constraints()
                    .iter()
                    .map(|c| {
                        let attr = schema.attribute(c.attr);
                        format!(
                            "{{\"attribute\":\"{}\",\"value\":\"{}\"}}",
                            json_escape(&attr.name),
                            json_escape(attr.label_of(c.code).unwrap_or("?"))
                        )
                    })
                    .collect();
                let mean = p
                    .histogram
                    .mean()
                    .map(|m| format!("{m:.6}"))
                    .unwrap_or_else(|| "null".into());
                format!(
                    "{{\"constraints\":[{}],\"size\":{},\"mean_score\":{}}}",
                    constraints.join(","),
                    p.len(),
                    mean
                )
            })
            .collect();
        // Engine counters come from `EngineStats::as_pairs` so a counter
        // added to the struct appears here without touching this file.
        let engine: Vec<String> = self
            .engine
            .as_pairs()
            .iter()
            .map(|(name, value)| format!("\"{name}\":{value}"))
            .collect();
        format!(
            "{{\"algorithm\":\"{}\",\"distance\":\"{}\",\"unfairness\":{:.6},\"elapsed_ms\":{:.3},\"candidates_evaluated\":{},\"engine\":{{{}}},\"attributes_used\":[{}],\"partitions\":[{}]}}",
            json_escape(&self.algorithm),
            json_escape(ctx.distance().name()),
            self.unfairness,
            self.elapsed.as_secs_f64() * 1000.0,
            self.candidates_evaluated,
            engine.join(","),
            attributes.join(","),
            partitions.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AuditConfig, AuditContext};
    use fairjob_marketplace::toy::toy_workers;

    #[test]
    fn render_mentions_key_fields() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        let unfairness = ctx.unfairness(&genders).unwrap();
        let result = AuditResult {
            algorithm: "test".into(),
            partitioning: Partitioning::new(genders),
            unfairness,
            elapsed: Duration::from_millis(1),
            candidates_evaluated: 1,
            engine: EngineStats {
                distances_computed: 4,
                cache_hits: 96,
                cache_bypasses: 0,
                splits_computed: 5,
                split_cache_hits: 11,
                rows_scanned: 320,
                histograms_built: 12,
                cache_evictions: 2,
                split_evictions: 0,
                bounds_screened: 40,
                exact_solves: 6,
                pool_tasks: 3,
                ground_cache_hits: 14,
                scratch_reuses: 13,
                warm_starts: 7,
                shard_tasks: 6,
                rows_classified_parallel: 320,
                page_hits: 9,
                page_misses: 4,
                page_evictions: 1,
                pages_skipped: 8,
                pages_scanned: 13,
            },
        };
        let text = result.render(&ctx, false);
        assert!(text.contains("algorithm: test"));
        assert!(text.contains("engine: 4 distances computed, 96 cache hits, 0 bypasses"));
        assert!(text
            .contains("splits: 5 computed, 11 cache hits, 320 rows scanned, 12 histograms built"));
        assert!(text.contains("evictions: 2 distance entries, 0 split entries"));
        assert!(text.contains("bounds: 40 pairs screened, 6 exact solves, 3 pool tasks"));
        assert!(text.contains("solver: 14 ground cache hits, 13 scratch reuses, 7 warm starts"));
        assert!(text.contains("shards: 6 shard tasks, 320 rows classified in parallel"));
        assert!(text.contains("pages: 13 scanned, 8 skipped, 9 cache hits, 4 misses, 1 evictions"));
        assert!(text.contains("0.5000"));
        assert!(text.contains("gender=Male"));
        assert!(text.contains("gender=Female"));
        let with_hists = result.render(&ctx, true);
        assert!(with_hists.len() > text.len());
        assert!(with_hists.contains('#'));
    }

    #[test]
    fn json_structure() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        let unfairness = ctx.unfairness(&genders).unwrap();
        let result = AuditResult {
            algorithm: "test\"quoted".into(),
            partitioning: Partitioning::new(genders),
            unfairness,
            elapsed: Duration::from_millis(2),
            candidates_evaluated: 3,
            engine: EngineStats {
                distances_computed: 7,
                cache_hits: 2,
                cache_bypasses: 1,
                splits_computed: 4,
                split_cache_hits: 9,
                rows_scanned: 250,
                histograms_built: 8,
                cache_evictions: 0,
                split_evictions: 3,
                bounds_screened: 20,
                exact_solves: 5,
                pool_tasks: 2,
                ground_cache_hits: 12,
                scratch_reuses: 10,
                warm_starts: 4,
                shard_tasks: 6,
                rows_classified_parallel: 250,
                page_hits: 21,
                page_misses: 7,
                page_evictions: 2,
                pages_skipped: 11,
                pages_scanned: 17,
            },
        };
        let json = result.to_json(&ctx);
        // Balanced braces/brackets and escaped quote.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\\\"quoted"));
        assert!(json.contains("\"unfairness\":0.500000"));
        assert!(json.contains("\"attribute\":\"gender\""));
        assert!(json.contains("\"value\":\"Male\""));
        assert!(json.contains("\"candidates_evaluated\":3"));
        assert!(json.contains(
            "\"engine\":{\"distances_computed\":7,\"cache_hits\":2,\"cache_bypasses\":1,\"splits_computed\":4,\"split_cache_hits\":9,\"rows_scanned\":250,\"histograms_built\":8,\"cache_evictions\":0,\"split_evictions\":3,\"bounds_screened\":20,\"exact_solves\":5,\"pool_tasks\":2,\"ground_cache_hits\":12,\"scratch_reuses\":10,\"warm_starts\":4,\"shard_tasks\":6,\"rows_classified_parallel\":250,\"page_hits\":21,\"page_misses\":7,\"page_evictions\":2,\"pages_skipped\":11,\"pages_scanned\":17}"
        ));
        // Structural completeness: every counter as_pairs knows about is
        // present in the JSON by name.
        for (name, _) in result.engine.as_pairs() {
            assert!(json.contains(&format!("\"{name}\":")), "missing {name}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn json_escape_covers_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd\te\r"), "a\\\"b\\\\c\\nd\\te\\r");
        assert_eq!(json_escape("\u{01}"), "\\u0001");
    }
}
