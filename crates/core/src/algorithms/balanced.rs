//! Algorithm 1 — `balanced` (and its random-choice baseline
//! `r-balanced`).
//!
//! Faithful to the paper's pseudocode: split all workers on the chosen
//! attribute unconditionally, then keep splitting **every** current
//! partition on one further attribute per round, stopping as soon as the
//! candidate round does not strictly increase the average pairwise
//! distance (`currentAvg >= childrenAvg → break`) or attributes run out.
//! Because every round splits all leaves with the same attribute, the
//! resulting partition tree is balanced.

use super::{choose_attribute, into_partitioning, Algorithm, AttributeChoice};
use crate::engine::EvalEngine;
use crate::error::AuditError;
use crate::report::AuditResult;
use crate::AuditContext;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// The `balanced` algorithm (Algorithm 1 of the paper).
#[derive(Debug, Clone, Copy)]
pub struct Balanced {
    choice: AttributeChoice,
}

impl Balanced {
    /// `Balanced::new(AttributeChoice::Worst)` is the paper's
    /// `balanced`; `AttributeChoice::Random { .. }` is `r-balanced`.
    pub fn new(choice: AttributeChoice) -> Self {
        Balanced { choice }
    }
}

impl Algorithm for Balanced {
    fn name(&self) -> String {
        match self.choice {
            AttributeChoice::Worst => "balanced".to_string(),
            AttributeChoice::Random { .. } => "r-balanced".to_string(),
        }
    }

    fn run(&self, ctx: &AuditContext<'_>) -> Result<AuditResult, AuditError> {
        let start = Instant::now();
        let engine = EvalEngine::new(ctx);
        let mut evaluations = 0usize;
        let mut rng = match self.choice {
            AttributeChoice::Random { seed } => Some(StdRng::seed_from_u64(seed)),
            AttributeChoice::Worst => None,
        };

        let mut remaining: Vec<usize> = ctx.attributes().to_vec();
        let mut current = vec![Arc::new(ctx.root())];

        // Lines 1–4: the first split is unconditional.
        if let Some(chosen) = choose_attribute(
            &engine,
            &current,
            &remaining,
            self.choice,
            &mut rng,
            &mut evaluations,
        )? {
            remaining.retain(|&x| x != chosen.attr);
            current = chosen.parts;
        }
        // Candidate scoring above already cached every pair distance, so
        // this full evaluation is pure cache hits.
        let mut current_avg = engine.unfairness(&current)?;
        evaluations += 1;

        // Lines 5–16: keep splitting while it strictly helps.
        while !remaining.is_empty() {
            let Some(chosen) = choose_attribute(
                &engine,
                &current,
                &remaining,
                self.choice,
                &mut rng,
                &mut evaluations,
            )?
            else {
                break; // nothing can split any partition any more
            };
            remaining.retain(|&x| x != chosen.attr);
            let children = chosen.parts;
            let children_avg = engine.unfairness(&children)?;
            evaluations += 1;
            if current_avg >= children_avg {
                break;
            }
            current = children;
            current_avg = children_avg;
        }

        Ok(AuditResult {
            algorithm: self.name(),
            partitioning: into_partitioning(current),
            unfairness: current_avg,
            elapsed: start.elapsed(),
            candidates_evaluated: evaluations,
            engine: engine.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AuditConfig;
    use fairjob_marketplace::toy::toy_workers;

    #[test]
    fn toy_balanced_splits_gender_then_stops_or_continues_consistently() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let result = Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
        // A valid full disjoint cover.
        result.partitioning.validate(t.len()).unwrap();
        // The first (worst) attribute on the toy data is gender: the
        // gender split scores 0.3 while the language split scores less.
        assert!(result.partitioning.attributes_used().contains(&0));
        // Reported unfairness matches recomputation.
        let recomputed = ctx.unfairness(result.partitioning.partitions()).unwrap();
        assert!((recomputed - result.unfairness).abs() < 1e-12);
    }

    #[test]
    fn r_balanced_is_deterministic_in_seed() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let a = Balanced::new(AttributeChoice::Random { seed: 5 })
            .run(&ctx)
            .unwrap();
        let b = Balanced::new(AttributeChoice::Random { seed: 5 })
            .run(&ctx)
            .unwrap();
        assert_eq!(a.partitioning.len(), b.partitioning.len());
        assert_eq!(a.unfairness, b.unfairness);
    }

    #[test]
    fn names() {
        assert_eq!(Balanced::new(AttributeChoice::Worst).name(), "balanced");
        assert_eq!(
            Balanced::new(AttributeChoice::Random { seed: 0 }).name(),
            "r-balanced"
        );
    }

    #[test]
    fn single_attribute_context_terminates() {
        let (t, scores) = toy_workers();
        let cfg = AuditConfig {
            attributes: Some(vec!["gender".into()]),
            ..Default::default()
        };
        let ctx = AuditContext::new(&t, &scores, cfg).unwrap();
        let result = Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
        assert_eq!(result.partitioning.len(), 2);
        assert!((result.unfairness - 0.5).abs() < 1e-9);
    }
}
