//! Beam search over split trees (extension).
//!
//! The paper's `balanced` is a beam of width 1 over *global* splits:
//! each round commits to the single worst attribute. Beam search keeps
//! the `width` best partitionings per round instead, interpolating
//! between the greedy heuristics and the exhaustive search at a
//! predictable `width ×` cost factor. Used in the ablation bench to ask
//! how much the greedy commitment loses.

use super::{into_partitioning, Algorithm};
use crate::engine::EvalEngine;
use crate::error::AuditError;
use crate::partition::Partition;
use crate::report::AuditResult;
use crate::AuditContext;
use std::sync::Arc;
use std::time::Instant;

/// Balanced-style beam search with configurable width.
#[derive(Debug, Clone, Copy)]
pub struct Beam {
    /// How many candidate partitionings survive each round.
    pub width: usize,
}

impl Beam {
    /// Beam search of the given width (width 1 ≈ `balanced` without its
    /// early stop).
    pub fn new(width: usize) -> Self {
        Beam {
            width: width.max(1),
        }
    }
}

/// One beam state: the current partitioning (shared — beam rounds clone
/// `Arc`s, not partitions), its value, and the attributes still unused
/// on it.
struct State {
    parts: Vec<Arc<Partition>>,
    value: f64,
    remaining: Vec<usize>,
}

impl Algorithm for Beam {
    fn name(&self) -> String {
        format!("beam-{}", self.width)
    }

    fn run(&self, ctx: &AuditContext<'_>) -> Result<AuditResult, AuditError> {
        let start = Instant::now();
        // Beam states overlap heavily (same round, different attribute
        // orders reach the same predicates), so the shared memo cache
        // collapses most of the width × attrs evaluations to lookups.
        let engine = EvalEngine::new(ctx);
        let mut evaluations = 0usize;
        let root = State {
            parts: vec![Arc::new(ctx.root())],
            value: 0.0,
            remaining: ctx.attributes().to_vec(),
        };
        let mut best: (Vec<Arc<Partition>>, f64) = (root.parts.clone(), root.value);
        let mut beam: Vec<State> = vec![root];

        loop {
            let mut candidates: Vec<State> = Vec::new();
            for state in &beam {
                for &a in &state.remaining {
                    let parts = engine.split_all(&state.parts, a);
                    if parts.len() == state.parts.len() {
                        continue; // nothing split
                    }
                    let value = engine.unfairness(&parts)?;
                    evaluations += 1;
                    candidates.push(State {
                        parts,
                        value,
                        remaining: state
                            .remaining
                            .iter()
                            .copied()
                            .filter(|&x| x != a)
                            .collect(),
                    });
                }
            }
            if candidates.is_empty() {
                break;
            }
            candidates.sort_by(|x, y| y.value.partial_cmp(&x.value).expect("finite values"));
            candidates.truncate(self.width);
            if candidates[0].value > best.1 {
                best = (candidates[0].parts.clone(), candidates[0].value);
            }
            beam = candidates;
        }

        Ok(AuditResult {
            algorithm: self.name(),
            partitioning: into_partitioning(best.0),
            unfairness: best.1,
            elapsed: start.elapsed(),
            candidates_evaluated: evaluations,
            engine: engine.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive::ExhaustiveTree;
    use crate::AuditConfig;
    use fairjob_marketplace::toy::toy_workers;

    #[test]
    fn beam_output_is_valid() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let result = Beam::new(2).run(&ctx).unwrap();
        result.partitioning.validate(t.len()).unwrap();
        assert_eq!(result.algorithm, "beam-2");
    }

    #[test]
    fn wider_beams_never_do_worse_on_the_toy() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let b1 = Beam::new(1).run(&ctx).unwrap();
        let b4 = Beam::new(4).run(&ctx).unwrap();
        assert!(b4.unfairness >= b1.unfairness - 1e-12);
    }

    #[test]
    fn beam_cannot_beat_exhaustive_balanced_space_note() {
        // Beam explores balanced trees only, so it is bounded by the
        // full tree-space optimum.
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let beam = Beam::new(8).run(&ctx).unwrap();
        let exhaustive = ExhaustiveTree::new(10_000).run(&ctx).unwrap();
        assert!(beam.unfairness <= exhaustive.unfairness + 1e-12);
    }

    #[test]
    fn width_zero_clamps_to_one() {
        assert_eq!(Beam::new(0).width, 1);
    }
}
