//! Depth-limited lookahead greedy over the balanced space (extension).
//!
//! The paper's `balanced` commits to the attribute whose *immediate*
//! split maximises average pairwise distance. That is a horizon-1
//! decision: an attribute that looks mediocre alone can unlock a much
//! better two-attribute partitioning. `Lookahead` scores each candidate
//! by the best value reachable within `depth` further splits, committing
//! one split at a time — horizon-`d` greedy, costing O(mᵈ) evaluations
//! per step. `depth = 1` reproduces greedy `balanced` (modulo its
//! unconditional first split); large depths converge on
//! [`super::subsets::SubsetExact`].

use super::{into_partitioning, Algorithm};
use crate::engine::EvalEngine;
use crate::error::AuditError;
use crate::partition::Partition;
use crate::report::AuditResult;
use crate::AuditContext;
use std::sync::Arc;
use std::time::Instant;

/// Horizon-`depth` greedy search over balanced partitionings.
#[derive(Debug, Clone, Copy)]
pub struct Lookahead {
    /// How many splits ahead each candidate is scored (≥ 1).
    pub depth: usize,
}

impl Lookahead {
    /// Lookahead search with the given horizon.
    pub fn new(depth: usize) -> Self {
        Lookahead {
            depth: depth.max(1),
        }
    }
}

/// Best unfairness reachable from `parts` within `depth` more splits.
/// Lookahead subtrees overlap massively (attribute *sets*, not orders,
/// determine balanced partitionings), so routing through the engine's
/// memo cache collapses the O(mᵈ) recomputation.
fn horizon_value(
    engine: &EvalEngine<'_, '_>,
    parts: &[Arc<Partition>],
    remaining: &[usize],
    depth: usize,
    evaluations: &mut usize,
) -> Result<f64, AuditError> {
    let mut best = engine.unfairness(parts)?;
    *evaluations += 1;
    if depth == 0 {
        return Ok(best);
    }
    for &a in remaining {
        let children = engine.split_all(parts, a);
        if children.len() == parts.len() {
            continue;
        }
        let rest: Vec<usize> = remaining.iter().copied().filter(|&x| x != a).collect();
        let v = horizon_value(engine, &children, &rest, depth - 1, evaluations)?;
        best = best.max(v);
    }
    Ok(best)
}

impl Algorithm for Lookahead {
    fn name(&self) -> String {
        format!("lookahead-{}", self.depth)
    }

    fn run(&self, ctx: &AuditContext<'_>) -> Result<AuditResult, AuditError> {
        let start = Instant::now();
        let engine = EvalEngine::new(ctx);
        let mut evaluations = 0usize;
        let mut current = vec![Arc::new(ctx.root())];
        let mut current_value = 0.0;
        let mut remaining: Vec<usize> = ctx.attributes().to_vec();

        loop {
            // Pick the attribute whose subtree promises the best value
            // within the horizon.
            let mut best: Option<(usize, Vec<Arc<Partition>>, f64, f64)> = None;
            for &a in &remaining {
                let children = engine.split_all(&current, a);
                if children.len() == current.len() {
                    continue;
                }
                let rest: Vec<usize> = remaining.iter().copied().filter(|&x| x != a).collect();
                let immediate = engine.unfairness(&children)?;
                evaluations += 1;
                let promise = if self.depth > 1 {
                    horizon_value(&engine, &children, &rest, self.depth - 1, &mut evaluations)?
                } else {
                    immediate
                };
                if best.as_ref().is_none_or(|(_, _, _, bp)| promise > *bp) {
                    best = Some((a, children, immediate, promise));
                }
            }
            let Some((a, children, immediate, promise)) = best else {
                break;
            };
            if promise <= current_value + 1e-15 {
                break; // nothing within the horizon improves on stopping here
            }
            remaining.retain(|&x| x != a);
            current = children;
            current_value = immediate;
        }

        // The best value seen may be at an interior depth; re-descend is
        // unnecessary because we only commit improving splits, but the
        // final `current` may sit below `current_value`'s historic max —
        // it cannot: we stop before any non-improving commit.
        Ok(AuditResult {
            algorithm: self.name(),
            partitioning: into_partitioning(current),
            unfairness: current_value,
            elapsed: start.elapsed(),
            candidates_evaluated: evaluations,
            engine: engine.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::subsets::SubsetExact;
    use crate::algorithms::{balanced::Balanced, AttributeChoice};
    use crate::AuditConfig;
    use fairjob_marketplace::scoring::{RuleBasedScore, ScoringFunction};
    use fairjob_marketplace::toy::toy_workers;
    use fairjob_marketplace::{bucketise_numeric_protected, generate_uniform};

    #[test]
    fn valid_cover_and_recomputable_value() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        for depth in [1, 2, 3] {
            let r = Lookahead::new(depth).run(&ctx).unwrap();
            r.partitioning.validate(t.len()).unwrap();
            let recomputed = ctx.unfairness(r.partitioning.partitions()).unwrap();
            assert!((recomputed - r.unfairness).abs() < 1e-12, "depth {depth}");
        }
    }

    #[test]
    fn deeper_horizons_never_do_worse_than_greedy() {
        let mut workers = generate_uniform(400, 31);
        bucketise_numeric_protected(&mut workers).unwrap();
        let scores = RuleBasedScore::f7(5).score_all(&workers).unwrap();
        let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).unwrap();
        let greedy = Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
        let deep = Lookahead::new(2).run(&ctx).unwrap();
        assert!(deep.unfairness >= greedy.unfairness - 1e-9);
    }

    #[test]
    fn bounded_by_subset_exact() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let exact = SubsetExact::default().run(&ctx).unwrap();
        for depth in [1, 2] {
            let r = Lookahead::new(depth).run(&ctx).unwrap();
            assert!(r.unfairness <= exact.unfairness + 1e-12, "depth {depth}");
        }
        // Full-depth lookahead finds the subset optimum on the toy data.
        let full = Lookahead::new(2).run(&ctx).unwrap();
        assert!((full.unfairness - exact.unfairness).abs() < 1e-12);
    }

    #[test]
    fn depth_zero_clamps_to_one() {
        assert_eq!(Lookahead::new(0).depth, 1);
        assert_eq!(Lookahead::new(3).name(), "lookahead-3");
    }
}
