//! Algorithm 2 — `unbalanced` (and its random baseline `r-unbalanced`).
//!
//! After the initial worst-attribute split of the whole population, the
//! algorithm recurses per partition: a partition is replaced by its
//! children only when doing so raises the average pairwise distance of
//! the local level (children next to the partition's siblings, versus
//! the partition next to its siblings). Different branches may split on
//! different attributes in different orders, so the tree is unbalanced.
//!
//! Two documented ambiguities of the pseudocode are exposed as options:
//!
//! * **Sibling scope** — line 13 recurses with `children − {p}` as the
//!   sibling set, silently dropping the ancestors' siblings.
//!   [`Unbalanced::with_ancestor_siblings`] keeps them instead.
//! * **Stopping comparison** — `averageEMD(children, siblings)` can read
//!   as the average over *all* pairs of `children ∪ siblings` (the
//!   "what would unfairness become" reading of the paper's prose, the
//!   default here) or over *cross* pairs only
//!   ([`Unbalanced::with_cross_stopping`]).

use super::{into_partitioning, Algorithm, AttributeChoice};
use crate::engine::{EvalEngine, SplitChildren};
use crate::error::AuditError;
use crate::partition::Partition;
use crate::report::AuditResult;
use crate::AuditContext;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// How the stopping rule aggregates distances (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoppingRule {
    /// Average over all pairs of `group ∪ siblings` (default).
    Union,
    /// Average over `group × siblings` cross pairs only.
    Cross,
}

/// The `unbalanced` algorithm (Algorithm 2 of the paper).
#[derive(Debug, Clone, Copy)]
pub struct Unbalanced {
    choice: AttributeChoice,
    stopping: StoppingRule,
    ancestor_siblings: bool,
}

impl Unbalanced {
    /// `Unbalanced::new(AttributeChoice::Worst)` is the paper's
    /// `unbalanced`; `AttributeChoice::Random { .. }` is `r-unbalanced`.
    pub fn new(choice: AttributeChoice) -> Self {
        Unbalanced {
            choice,
            stopping: StoppingRule::Union,
            ancestor_siblings: false,
        }
    }

    /// Use cross-pair averaging in the stopping rule.
    pub fn with_cross_stopping(mut self) -> Self {
        self.stopping = StoppingRule::Cross;
        self
    }

    /// Carry ancestors' siblings into recursive sibling sets instead of
    /// the paper-literal `children − {p}`.
    pub fn with_ancestor_siblings(mut self) -> Self {
        self.ancestor_siblings = true;
        self
    }
}

struct Run<'c, 'a> {
    engine: EvalEngine<'c, 'a>,
    choice: AttributeChoice,
    stopping: StoppingRule,
    ancestor_siblings: bool,
    rng: Option<StdRng>,
    evaluations: usize,
    output: Vec<Arc<Partition>>,
}

impl Run<'_, '_> {
    fn level_avg(
        &mut self,
        group: &[Arc<Partition>],
        siblings: &[Arc<Partition>],
    ) -> Result<f64, AuditError> {
        self.evaluations += 1;
        match self.stopping {
            StoppingRule::Union => self.engine.unfairness_union(group, siblings),
            StoppingRule::Cross => self.engine.unfairness_cross(group, siblings),
        }
    }

    /// `worstAttribute(current, f, A)` for a single partition: the
    /// attribute whose split of `current` has the highest internal
    /// average pairwise distance, returned **with** its children so
    /// callers never re-split. All remaining attributes are materialised
    /// through one [`EvalEngine::split_batch`] — cached splits are free,
    /// fresh ones run the kernel on worker threads — so each recursion
    /// step's candidate search is parallel yet deterministic. Random
    /// choice picks uniformly among attributes that can split `current`.
    fn choose_for(
        &mut self,
        current: &Partition,
        remaining: &[usize],
    ) -> Result<Option<(usize, SplitChildren)>, AuditError> {
        let requests: Vec<(&Partition, usize)> = remaining.iter().map(|&a| (current, a)).collect();
        let results = self.engine.split_batch(&requests);
        let mut candidates: Vec<(usize, SplitChildren)> = remaining
            .iter()
            .zip(results)
            .filter_map(|(&a, r)| r.map(|children| (a, children)))
            .collect();
        if candidates.is_empty() {
            return Ok(None);
        }
        let winner = match self.choice {
            AttributeChoice::Random { .. } => {
                let rng = self.rng.as_mut().expect("random choice carries an RNG");
                rng.gen_range(0..candidates.len())
            }
            AttributeChoice::Worst => {
                let mut best: Option<(usize, f64)> = None;
                for (index, (_, children)) in candidates.iter().enumerate() {
                    let value = self.engine.unfairness(children.as_slice())?;
                    self.evaluations += 1;
                    if best.is_none_or(|(_, b)| value > b) {
                        best = Some((index, value));
                    }
                }
                best.expect("candidates is non-empty").0
            }
        };
        Ok(Some(candidates.swap_remove(winner)))
    }

    /// Algorithm 2's recursive body.
    fn recurse(
        &mut self,
        current: Arc<Partition>,
        siblings: &[Arc<Partition>],
        remaining: &[usize],
    ) -> Result<(), AuditError> {
        // Line 1: out of attributes -> emit.
        let Some((a, children)) = self.choose_for(&current, remaining)? else {
            self.output.push(current);
            return Ok(());
        };
        // Lines 4–9: compare the local level with and without the split.
        let current_avg = self.level_avg(std::slice::from_ref(&current), siblings)?;
        let children_avg = self.level_avg(&children, siblings)?;
        if current_avg >= children_avg {
            self.output.push(current);
            return Ok(());
        }
        // Lines 12–14: recurse per child. Sibling sets share the child
        // partitions instead of deep-cloning them per recursion level.
        let remaining: Vec<usize> = remaining.iter().copied().filter(|&x| x != a).collect();
        for (i, child) in children.iter().enumerate() {
            let mut sibs: Vec<Arc<Partition>> = children
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, p)| Arc::clone(p))
                .collect();
            if self.ancestor_siblings {
                sibs.extend(siblings.iter().cloned());
            }
            self.recurse(Arc::clone(child), &sibs, &remaining)?;
        }
        Ok(())
    }
}

impl Algorithm for Unbalanced {
    fn name(&self) -> String {
        match self.choice {
            AttributeChoice::Worst => "unbalanced".to_string(),
            AttributeChoice::Random { .. } => "r-unbalanced".to_string(),
        }
    }

    fn run(&self, ctx: &AuditContext<'_>) -> Result<AuditResult, AuditError> {
        let start = Instant::now();
        let mut run = Run {
            engine: EvalEngine::new(ctx),
            choice: self.choice,
            stopping: self.stopping,
            ancestor_siblings: self.ancestor_siblings,
            rng: match self.choice {
                AttributeChoice::Random { seed } => Some(StdRng::seed_from_u64(seed)),
                AttributeChoice::Worst => None,
            },
            evaluations: 0,
            output: Vec::new(),
        };

        // Initial split, exactly as balanced's first step.
        let root = Arc::new(ctx.root());
        let remaining: Vec<usize> = ctx.attributes().to_vec();
        match run.choose_for(&root, &remaining)? {
            None => run.output.push(root),
            Some((a, children)) => {
                let remaining: Vec<usize> = remaining.iter().copied().filter(|&x| x != a).collect();
                for (i, child) in children.iter().enumerate() {
                    let sibs: Vec<Arc<Partition>> = children
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, p)| Arc::clone(p))
                        .collect();
                    run.recurse(Arc::clone(child), &sibs, &remaining)?;
                }
            }
        }

        let partitioning = into_partitioning(std::mem::take(&mut run.output));
        let unfairness = run.engine.unfairness(partitioning.partitions())?;
        Ok(AuditResult {
            algorithm: self.name(),
            partitioning,
            unfairness,
            elapsed: start.elapsed(),
            candidates_evaluated: run.evaluations,
            engine: run.engine.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AuditConfig;
    use fairjob_marketplace::toy::toy_workers;

    #[test]
    fn toy_output_is_a_valid_cover() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        for algo in [
            Unbalanced::new(AttributeChoice::Worst),
            Unbalanced::new(AttributeChoice::Worst).with_cross_stopping(),
            Unbalanced::new(AttributeChoice::Worst).with_ancestor_siblings(),
            Unbalanced::new(AttributeChoice::Random { seed: 3 }),
        ] {
            let result = algo.run(&ctx).unwrap();
            result.partitioning.validate(t.len()).unwrap();
            let recomputed = ctx.unfairness(result.partitioning.partitions()).unwrap();
            assert!((recomputed - result.unfairness).abs() < 1e-12);
        }
    }

    #[test]
    fn toy_unbalanced_finds_figure_one_partitioning() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let result = Unbalanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
        // Figure 1's optimum: Male-English, Male-Indian, Male-Other,
        // Female — males split by language, females kept whole.
        assert_eq!(
            result.partitioning.len(),
            4,
            "{}",
            result.partitioning.describe(&t)
        );
        let female_whole = result
            .partitioning
            .partitions()
            .iter()
            .any(|p| p.len() == 4 && p.predicate.constraints().len() == 1);
        assert!(
            female_whole,
            "females should stay whole:\n{}",
            result.partitioning.describe(&t)
        );
    }

    #[test]
    fn names() {
        assert_eq!(Unbalanced::new(AttributeChoice::Worst).name(), "unbalanced");
        assert_eq!(
            Unbalanced::new(AttributeChoice::Random { seed: 0 }).name(),
            "r-unbalanced"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let a = Unbalanced::new(AttributeChoice::Random { seed: 11 })
            .run(&ctx)
            .unwrap();
        let b = Unbalanced::new(AttributeChoice::Random { seed: 11 })
            .run(&ctx)
            .unwrap();
        assert_eq!(a.unfairness, b.unfairness);
        assert_eq!(a.partitioning.len(), b.partitioning.len());
    }
}
