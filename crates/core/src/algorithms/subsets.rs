//! Exact search over the *balanced* partitioning space.
//!
//! A balanced tree splits every partition on the same attribute each
//! round, so its leaves are exactly the cartesian cells of the chosen
//! attribute *set* — order does not matter. The balanced space is
//! therefore the subset lattice of the candidate attributes: `2^m − 1`
//! partitionings for `m` attributes, which is tiny (63 for the paper's
//! six) even though the full unbalanced-tree space is astronomically
//! large. Evaluating all subsets gives the exact optimum of the space
//! `balanced` greedily navigates — the right yardstick for how much the
//! greedy worst-attribute commitment loses.

use super::Algorithm;
use crate::engine::EvalEngine;
use crate::error::AuditError;
use crate::partition::{Partition, Partitioning};
use crate::report::AuditResult;
use crate::AuditContext;
use fairjob_store::Predicate;
use std::time::Instant;

/// Exact optimum over attribute subsets (the balanced space).
#[derive(Debug, Clone, Copy)]
pub struct SubsetExact {
    /// Refuse to run with more candidate attributes than this (the cost
    /// is `2^m` full-partitioning evaluations). 20 by default.
    pub max_attributes: usize,
}

impl Default for SubsetExact {
    fn default() -> Self {
        SubsetExact { max_attributes: 20 }
    }
}

impl Algorithm for SubsetExact {
    fn name(&self) -> String {
        "subset-exact".to_string()
    }

    fn run(&self, ctx: &AuditContext<'_>) -> Result<AuditResult, AuditError> {
        let start = Instant::now();
        let attrs = ctx.attributes();
        if attrs.len() > self.max_attributes {
            return Err(AuditError::BudgetExceeded {
                budget: 1 << self.max_attributes,
            });
        }
        // Subset partitionings nest: every cell of subset S is a union
        // of cells of S ∪ {a}, and identical predicates recur across
        // masks — the memo cache deduplicates them.
        let engine = EvalEngine::new(ctx);
        let mut best: Option<(Vec<Partition>, f64)> = None;
        let mut evaluated = 0usize;
        for mask in 1u64..(1u64 << attrs.len()) {
            let selection: Vec<usize> = attrs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &a)| a)
                .collect();
            let table = ctx.table().ok_or(AuditError::OutOfCore {
                what: "the subset search's cartesian group-by",
            })?;
            let groups = fairjob_store::groupby::group_by_many(
                table,
                &fairjob_store::RowSet::all(table.len()),
                &selection,
            )?;
            let partitions: Vec<Partition> = groups
                .into_iter()
                .map(|(codes, rows)| {
                    let mut pred = Predicate::always();
                    for (&attr, &code) in selection.iter().zip(&codes) {
                        pred = pred.and(attr, code);
                    }
                    ctx.partition(pred, rows)
                })
                .collect();
            let value = engine.unfairness(&partitions)?;
            evaluated += 1;
            if best.as_ref().is_none_or(|(_, b)| value > *b) {
                best = Some((partitions, value));
            }
        }
        let (partitions, unfairness) = best.unwrap_or_else(|| (vec![ctx.root()], 0.0));
        Ok(AuditResult {
            algorithm: self.name(),
            partitioning: Partitioning::new(partitions),
            unfairness,
            elapsed: start.elapsed(),
            candidates_evaluated: evaluated,
            engine: engine.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::balanced::Balanced;
    use crate::algorithms::exhaustive::ExhaustiveTree;
    use crate::algorithms::AttributeChoice;
    use crate::AuditConfig;
    use fairjob_marketplace::toy::toy_workers;

    #[test]
    fn evaluates_every_subset() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let result = SubsetExact::default().run(&ctx).unwrap();
        // Two attributes -> 3 subsets.
        assert_eq!(result.candidates_evaluated, 3);
        result.partitioning.validate(t.len()).unwrap();
    }

    #[test]
    fn sandwiched_between_greedy_and_tree_exhaustive() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let greedy = Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
        let subset = SubsetExact::default().run(&ctx).unwrap();
        let tree = ExhaustiveTree::new(100_000).run(&ctx).unwrap();
        assert!(subset.unfairness >= greedy.unfairness - 1e-12);
        assert!(subset.unfairness <= tree.unfairness + 1e-12);
        // On the toy data, the balanced-space optimum is the gender split
        // (0.5) while the unbalanced tree optimum is higher (0.5167).
        assert!((subset.unfairness - 0.5).abs() < 1e-9);
        assert!(tree.unfairness > subset.unfairness);
    }

    #[test]
    fn attribute_cap_enforced() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let err = SubsetExact { max_attributes: 1 }.run(&ctx).unwrap_err();
        assert!(matches!(err, AuditError::BudgetExceeded { .. }));
    }
}
