//! The `all-attributes` baseline: split on every protected attribute,
//! producing the full cartesian partitioning (non-empty cells only).

use super::Algorithm;
use crate::engine::EvalEngine;
use crate::error::AuditError;
use crate::partition::{Partition, Partitioning};
use crate::report::AuditResult;
use crate::AuditContext;
use fairjob_store::Predicate;
use std::time::Instant;

/// The `all-attributes` baseline of the paper's evaluation.
#[derive(Debug, Clone, Copy)]
pub struct AllAttributes;

impl Algorithm for AllAttributes {
    fn name(&self) -> String {
        "all-attributes".to_string()
    }

    fn run(&self, ctx: &AuditContext<'_>) -> Result<AuditResult, AuditError> {
        let start = Instant::now();
        let table = ctx.table().ok_or(AuditError::OutOfCore {
            what: "the all-attributes cartesian group-by",
        })?;
        let groups = fairjob_store::groupby::group_by_many(
            table,
            &fairjob_store::RowSet::all(table.len()),
            ctx.attributes(),
        )?;
        let partitions: Vec<Partition> = groups
            .into_iter()
            .map(|(codes, rows)| {
                let mut pred = Predicate::always();
                for (&attr, &code) in ctx.attributes().iter().zip(&codes) {
                    pred = pred.and(attr, code);
                }
                ctx.partition(pred, rows)
            })
            .collect();
        let partitioning = Partitioning::new(partitions);
        let engine = EvalEngine::new(ctx);
        let unfairness = engine.unfairness(partitioning.partitions())?;
        Ok(AuditResult {
            algorithm: self.name(),
            partitioning,
            unfairness,
            elapsed: start.elapsed(),
            candidates_evaluated: 1,
            engine: engine.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AuditConfig;
    use fairjob_marketplace::toy::toy_workers;

    #[test]
    fn full_partitioning_of_the_toy_data() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let result = AllAttributes.run(&ctx).unwrap();
        result.partitioning.validate(t.len()).unwrap();
        // 2 genders x 3 languages, all cells non-empty in the toy data.
        assert_eq!(result.partitioning.len(), 6);
        // Every partition is constrained on both attributes.
        for p in result.partitioning.partitions() {
            assert_eq!(p.predicate.constraints().len(), 2);
        }
    }

    #[test]
    fn unfairness_is_recomputable() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let result = AllAttributes.run(&ctx).unwrap();
        let recomputed = ctx.unfairness(result.partitioning.partitions()).unwrap();
        assert!((recomputed - result.unfairness).abs() < 1e-12);
    }
}
