//! The partitioning-search algorithms.
//!
//! All algorithms implement [`Algorithm`] and share the attribute-choice
//! abstraction: the paper's heuristics split on the **worst** attribute
//! (the one whose split maximises average pairwise EMD) while the
//! `r-balanced` / `r-unbalanced` baselines pick uniformly at random.

pub mod all_attributes;
pub mod balanced;
pub mod beam;
pub mod exhaustive;
pub mod lookahead;
pub mod subsets;
pub mod unbalanced;

use crate::engine::{CandidateScore, EvalEngine, IncrementalEval, SplitChildren};
use crate::error::AuditError;
use crate::report::AuditResult;
use crate::AuditContext;
use std::sync::Arc;

/// How a heuristic picks its next split attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttributeChoice {
    /// The paper's `worstAttribute`: try every remaining attribute and
    /// keep the one whose split yields the highest average pairwise
    /// distance.
    Worst,
    /// Uniform random choice among the remaining attributes (the
    /// `r-balanced` / `r-unbalanced` baselines). Deterministic in the
    /// seed.
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// A partitioning-search algorithm.
pub trait Algorithm {
    /// Stable name used in result tables (`"balanced"`, `"r-unbalanced"`,
    /// …).
    fn name(&self) -> String;

    /// Run the search over `ctx` and return the partitioning found.
    ///
    /// # Errors
    ///
    /// [`AuditError`] from distance evaluation, or
    /// [`AuditError::BudgetExceeded`] for budgeted exhaustive searches.
    fn run(&self, ctx: &AuditContext<'_>) -> Result<AuditResult, AuditError>;
}

/// Run a set of algorithms and collect their results (in input order).
///
/// # Errors
///
/// Fails fast on the first algorithm error.
pub fn run_all(
    ctx: &AuditContext<'_>,
    algorithms: &[&dyn Algorithm],
) -> Result<Vec<AuditResult>, AuditError> {
    algorithms.iter().map(|a| a.run(ctx)).collect()
}

/// The paper's five-way comparison: `unbalanced`, `r-unbalanced`,
/// `balanced`, `r-balanced`, `all-attributes` (the row order of
/// Tables 1–3). Random variants use `seed`.
pub fn paper_algorithms(seed: u64) -> Vec<Box<dyn Algorithm>> {
    vec![
        Box::new(unbalanced::Unbalanced::new(AttributeChoice::Worst)),
        Box::new(unbalanced::Unbalanced::new(AttributeChoice::Random {
            seed,
        })),
        Box::new(balanced::Balanced::new(AttributeChoice::Worst)),
        Box::new(balanced::Balanced::new(AttributeChoice::Random {
            seed: seed.wrapping_add(1),
        })),
        Box::new(all_attributes::AllAttributes),
    ]
}

/// Resolve an algorithm by its short CLI/query name (`balanced`,
/// `r-balanced`, `unbalanced`, `r-unbalanced`, `all-attributes`,
/// `subset-exact`). Random variants are seeded with `seed`; `None`
/// means the name is unknown.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn Algorithm + Send + Sync>> {
    Some(match name {
        "balanced" => Box::new(balanced::Balanced::new(AttributeChoice::Worst)),
        "r-balanced" => Box::new(balanced::Balanced::new(AttributeChoice::Random { seed })),
        "unbalanced" => Box::new(unbalanced::Unbalanced::new(AttributeChoice::Worst)),
        "r-unbalanced" => Box::new(unbalanced::Unbalanced::new(AttributeChoice::Random {
            seed,
        })),
        "all-attributes" => Box::new(all_attributes::AllAttributes),
        "subset-exact" => Box::new(subsets::SubsetExact::default()),
        _ => return None,
    })
}

/// The names [`by_name`] accepts, for error messages.
pub const ALGORITHM_NAMES: &[&str] = &[
    "balanced",
    "r-balanced",
    "unbalanced",
    "r-unbalanced",
    "all-attributes",
    "subset-exact",
];

/// Per-partition candidate splits: `(partition index, children)` pairs,
/// indexed ascending. Children are shared out of the engine's split
/// cache, never cloned.
type Splits = Vec<(usize, SplitChildren)>;

/// The outcome of [`choose_attribute`]: the winning attribute and the
/// partitioning obtained by splitting every splittable partition by it
/// (already materialised — callers must not re-split).
pub(crate) struct ChosenSplit {
    /// The chosen attribute.
    pub attr: usize,
    /// `parts` with every partition the attribute can split replaced by
    /// its children (unsplittable partitions kept whole, shared).
    pub parts: Vec<Arc<crate::Partition>>,
}

/// Internal helper: pick an attribute from `remaining` for splitting the
/// given partitions, under `choice`. Returns `None` when no remaining
/// attribute can split anything.
///
/// Candidate materialisation goes through one
/// [`EvalEngine::split_batch`] over `remaining × parts`: splits seen in
/// an earlier round come straight from the split cache, the rest run the
/// single-pass kernel on worker threads, and losing candidates stay
/// cached for the next round. For [`AttributeChoice::Worst`] the
/// candidates are then scored by delta evaluation ([`IncrementalEval`]
/// seeded once with `parts`): replacing the split partitions by their
/// children costs O(k · changed) distance lookups per candidate instead
/// of the O(k²) full matrix, and every distance goes through `engine`'s
/// memo cache. The attribute with the highest average pairwise distance
/// wins (ties: first). Scoring is branch-and-bound: each candidate after
/// the first is screened against the best value so far
/// ([`IncrementalEval::score_replacements_bounded`]) and abandoned
/// before any exact distance solve when its upper bound shows it cannot
/// win — the winner and its value are bit-identical to the unpruned
/// search. `evaluations` is incremented once per candidate considered,
/// pruned or not.
pub(crate) fn choose_attribute(
    engine: &EvalEngine<'_, '_>,
    parts: &[Arc<crate::Partition>],
    remaining: &[usize],
    choice: AttributeChoice,
    rng: &mut Option<rand::rngs::StdRng>,
    evaluations: &mut usize,
) -> Result<Option<ChosenSplit>, AuditError> {
    use rand::Rng;
    let requests: Vec<(&crate::Partition, usize)> = remaining
        .iter()
        .flat_map(|&a| parts.iter().map(move |p| (p.as_ref(), a)))
        .collect();
    let results = engine.split_batch(&requests);
    // An attribute is viable if it can split at least one partition.
    let mut candidates: Vec<(usize, Splits)> = Vec::new();
    for (ai, &a) in remaining.iter().enumerate() {
        let splits: Splits = (0..parts.len())
            .filter_map(|i| {
                results[ai * parts.len() + i]
                    .clone()
                    .map(|children| (i, children))
            })
            .collect();
        if !splits.is_empty() {
            candidates.push((a, splits));
        }
    }
    if candidates.is_empty() {
        return Ok(None);
    }
    let winner = match choice {
        AttributeChoice::Random { .. } => {
            let rng = rng.as_mut().expect("random choice carries an RNG");
            rng.gen_range(0..candidates.len())
        }
        AttributeChoice::Worst => {
            let mut incremental = IncrementalEval::new(engine, parts)?;
            let mut best: Option<(usize, f64)> = None;
            for (index, (_, splits)) in candidates.iter().enumerate() {
                let replacements: Vec<(usize, &[Arc<crate::Partition>])> = splits
                    .iter()
                    .map(|(i, children)| (*i, children.as_slice()))
                    .collect();
                let incumbent = best.map(|(_, b)| b);
                let score = incremental.score_replacements_bounded(&replacements, incumbent)?;
                *evaluations += 1;
                if let CandidateScore::Exact(value) = score {
                    if best.is_none_or(|(_, b)| value > b) {
                        best = Some((index, value));
                    }
                }
            }
            best.expect("candidates is non-empty").0
        }
    };
    let (attr, splits) = candidates.swap_remove(winner);
    Ok(Some(ChosenSplit {
        attr,
        parts: materialise(parts, &splits),
    }))
}

/// `parts` with each `(index, children)` substitution applied in order
/// (splits are indexed ascending by construction). Everything is shared:
/// untouched partitions and children alike are `Arc` clones.
fn materialise(parts: &[Arc<crate::Partition>], splits: &Splits) -> Vec<Arc<crate::Partition>> {
    let mut out = Vec::with_capacity(parts.len() + splits.len());
    let mut next = 0;
    for (i, p) in parts.iter().enumerate() {
        if next < splits.len() && splits[next].0 == i {
            out.extend(splits[next].1.iter().cloned());
            next += 1;
        } else {
            out.push(Arc::clone(p));
        }
    }
    out
}

/// Deep-copy a shared partitioning into an owned [`crate::Partitioning`]
/// (done once per run, at the very end — the search itself only moves
/// `Arc`s around).
pub(crate) fn into_partitioning(parts: Vec<Arc<crate::Partition>>) -> crate::Partitioning {
    crate::Partitioning::new(
        parts
            .into_iter()
            .map(|p| Arc::try_unwrap(p).unwrap_or_else(|shared| shared.as_ref().clone()))
            .collect(),
    )
}
