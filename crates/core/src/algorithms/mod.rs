//! The partitioning-search algorithms.
//!
//! All algorithms implement [`Algorithm`] and share the attribute-choice
//! abstraction: the paper's heuristics split on the **worst** attribute
//! (the one whose split maximises average pairwise EMD) while the
//! `r-balanced` / `r-unbalanced` baselines pick uniformly at random.

pub mod all_attributes;
pub mod balanced;
pub mod beam;
pub mod exhaustive;
pub mod lookahead;
pub mod subsets;
pub mod unbalanced;

use crate::error::AuditError;
use crate::report::AuditResult;
use crate::AuditContext;

/// How a heuristic picks its next split attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttributeChoice {
    /// The paper's `worstAttribute`: try every remaining attribute and
    /// keep the one whose split yields the highest average pairwise
    /// distance.
    Worst,
    /// Uniform random choice among the remaining attributes (the
    /// `r-balanced` / `r-unbalanced` baselines). Deterministic in the
    /// seed.
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// A partitioning-search algorithm.
pub trait Algorithm {
    /// Stable name used in result tables (`"balanced"`, `"r-unbalanced"`,
    /// …).
    fn name(&self) -> String;

    /// Run the search over `ctx` and return the partitioning found.
    ///
    /// # Errors
    ///
    /// [`AuditError`] from distance evaluation, or
    /// [`AuditError::BudgetExceeded`] for budgeted exhaustive searches.
    fn run(&self, ctx: &AuditContext<'_>) -> Result<AuditResult, AuditError>;
}

/// Run a set of algorithms and collect their results (in input order).
///
/// # Errors
///
/// Fails fast on the first algorithm error.
pub fn run_all(
    ctx: &AuditContext<'_>,
    algorithms: &[&dyn Algorithm],
) -> Result<Vec<AuditResult>, AuditError> {
    algorithms.iter().map(|a| a.run(ctx)).collect()
}

/// The paper's five-way comparison: `unbalanced`, `r-unbalanced`,
/// `balanced`, `r-balanced`, `all-attributes` (the row order of
/// Tables 1–3). Random variants use `seed`.
pub fn paper_algorithms(seed: u64) -> Vec<Box<dyn Algorithm>> {
    vec![
        Box::new(unbalanced::Unbalanced::new(AttributeChoice::Worst)),
        Box::new(unbalanced::Unbalanced::new(AttributeChoice::Random { seed })),
        Box::new(balanced::Balanced::new(AttributeChoice::Worst)),
        Box::new(balanced::Balanced::new(AttributeChoice::Random { seed: seed.wrapping_add(1) })),
        Box::new(all_attributes::AllAttributes),
    ]
}

/// Internal helper: pick an attribute from `remaining` for splitting the
/// given partitions, under `choice`. Returns `None` when no remaining
/// attribute can split anything.
///
/// For [`AttributeChoice::Worst`] this evaluates, for every candidate
/// attribute, the partitioning obtained by splitting **every** partition
/// in `parts` by it (unsplittable partitions stay whole), and returns the
/// attribute with the highest average pairwise distance (ties: first).
/// `evaluations` is incremented once per candidate scored.
pub(crate) fn choose_attribute(
    ctx: &AuditContext<'_>,
    parts: &[crate::Partition],
    remaining: &[usize],
    choice: AttributeChoice,
    rng: &mut Option<rand::rngs::StdRng>,
    evaluations: &mut usize,
) -> Result<Option<usize>, AuditError> {
    use rand::Rng;
    // An attribute is viable if it can split at least one partition.
    let viable: Vec<usize> = remaining
        .iter()
        .copied()
        .filter(|&a| parts.iter().any(|p| ctx.split(p, a).is_some()))
        .collect();
    if viable.is_empty() {
        return Ok(None);
    }
    match choice {
        AttributeChoice::Random { .. } => {
            let rng = rng.as_mut().expect("random choice carries an RNG");
            Ok(Some(viable[rng.gen_range(0..viable.len())]))
        }
        AttributeChoice::Worst => {
            let mut best: Option<(usize, f64)> = None;
            for &a in &viable {
                let candidate = split_all(ctx, parts, a);
                let value = ctx.unfairness(&candidate)?;
                *evaluations += 1;
                if best.is_none_or(|(_, b)| value > b) {
                    best = Some((a, value));
                }
            }
            Ok(best.map(|(a, _)| a))
        }
    }
}

/// Split every partition in `parts` by `a`; partitions that cannot split
/// are kept whole (this is what "splitting the current partitioning by
/// attribute a" means once some branches have exhausted a's values).
pub(crate) fn split_all(
    ctx: &AuditContext<'_>,
    parts: &[crate::Partition],
    a: usize,
) -> Vec<crate::Partition> {
    let mut out = Vec::with_capacity(parts.len() * 2);
    for p in parts {
        match ctx.split(p, a) {
            Some(children) => out.extend(children),
            None => out.push(p.clone()),
        }
    }
    out
}
