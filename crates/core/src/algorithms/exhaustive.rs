//! Brute-force reference searches.
//!
//! The paper implemented "an exhaustive algorithm that solves our
//! optimization problem exactly by generating all possible partitionings
//! in a brute-force manner", and reports that it failed to terminate
//! within two days on 6 attributes of ≤ 5 values. Two searches are
//! provided here, both budgeted so they fail fast instead of running for
//! days:
//!
//! * [`ExhaustiveTree`] — enumerates every *attribute-split tree* (each
//!   leaf either stops or splits on an attribute unused on its path).
//!   This is the space the paper's heuristics navigate, so it is the
//!   right oracle for "did the heuristic find the best tree".
//! * [`exhaustive_cells`] — enumerates every *set partition* of the full
//!   cartesian cells (the widest reading of Definition 1, where a group
//!   may be any union of attribute-value combinations). Its space is the
//!   Bell number of the cell count; it exists to measure how much the
//!   tree restriction gives up on small instances.

use super::{into_partitioning, Algorithm};
use crate::engine::EvalEngine;
use crate::error::AuditError;
use crate::partition::Partition;
use crate::report::AuditResult;
use crate::unfairness::average_pairwise;
use crate::AuditContext;
use fairjob_hist::Histogram;
use fairjob_store::RowSet;
use std::sync::Arc;
use std::time::Instant;

/// Budgeted exhaustive search over attribute-split trees.
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveTree {
    /// Maximum number of complete partitionings to evaluate before
    /// giving up with [`AuditError::BudgetExceeded`].
    pub budget: usize,
}

impl ExhaustiveTree {
    /// Search with the given evaluation budget.
    pub fn new(budget: usize) -> Self {
        ExhaustiveTree { budget }
    }
}

impl Algorithm for ExhaustiveTree {
    fn name(&self) -> String {
        "exhaustive-tree".to_string()
    }

    fn run(&self, ctx: &AuditContext<'_>) -> Result<AuditResult, AuditError> {
        let start = Instant::now();
        // Candidate partitionings share almost all their partitions, so
        // the memo cache turns the brute force's O(candidates × k²)
        // distance computations into one computation per distinct pair,
        // and the split cache materialises each subtree's splits once
        // even though sibling enumeration orders revisit them.
        let engine = EvalEngine::new(ctx);
        let mut counter = 0usize;
        let all = options(
            &engine,
            &Arc::new(ctx.root()),
            ctx.attributes(),
            self.budget,
            &mut counter,
        )?;
        let mut best: Option<(Vec<Arc<Partition>>, f64)> = None;
        for candidate in all {
            let value = engine.unfairness(&candidate)?;
            if best.as_ref().is_none_or(|(_, b)| value > *b) {
                best = Some((candidate, value));
            }
        }
        let (partitions, unfairness) = best.expect("at least the no-split partitioning exists");
        Ok(AuditResult {
            algorithm: self.name(),
            partitioning: into_partitioning(partitions),
            unfairness,
            elapsed: start.elapsed(),
            candidates_evaluated: counter,
            engine: engine.stats(),
        })
    }
}

/// All partitionings of `part`'s rows expressible as split trees over
/// `remaining`. Increments `counter` per produced partitioning and fails
/// once it passes `budget`. Partitions are shared between candidates —
/// every combination holds `Arc`s into the engine's split cache.
fn options(
    engine: &EvalEngine<'_, '_>,
    part: &Arc<Partition>,
    remaining: &[usize],
    budget: usize,
    counter: &mut usize,
) -> Result<Vec<Vec<Arc<Partition>>>, AuditError> {
    let mut out: Vec<Vec<Arc<Partition>>> = vec![vec![Arc::clone(part)]];
    *counter += 1;
    if *counter > budget {
        return Err(AuditError::BudgetExceeded { budget });
    }
    for &a in remaining {
        let Some(children) = engine.split(part, a) else {
            continue;
        };
        let rest: Vec<usize> = remaining.iter().copied().filter(|&x| x != a).collect();
        // Cartesian product of per-child subtree options. Size is
        // checked *before* materialising each stage — the product
        // explodes long before memory would.
        let mut combos: Vec<Vec<Arc<Partition>>> = vec![Vec::new()];
        for child in children.iter() {
            let child_options = options(engine, child, &rest, budget, counter)?;
            let size = combos.len().saturating_mul(child_options.len());
            if size > budget || out.len().saturating_add(size) > budget {
                return Err(AuditError::BudgetExceeded { budget });
            }
            let mut next = Vec::with_capacity(size);
            for combo in &combos {
                for option in &child_options {
                    let mut joined = combo.clone();
                    joined.extend(option.iter().cloned());
                    next.push(joined);
                }
            }
            combos = next;
        }
        out.extend(combos);
    }
    Ok(out)
}

/// Count (without materialising) the number of split-tree partitionings
/// of `part` over `remaining`, saturating at `cap`. This powers the
/// "exhaustive is infeasible" experiment: the count explodes long before
/// any evaluation happens.
pub fn count_tree_partitionings(
    ctx: &AuditContext<'_>,
    part: &Partition,
    remaining: &[usize],
    cap: u128,
) -> u128 {
    let mut total: u128 = 1; // the leaf option
    for &a in remaining {
        let Some(children) = ctx.split(part, a) else {
            continue;
        };
        let rest: Vec<usize> = remaining.iter().copied().filter(|&x| x != a).collect();
        let mut product: u128 = 1;
        for child in &children {
            product = product.saturating_mul(count_tree_partitionings(ctx, child, &rest, cap));
            if product >= cap {
                return cap;
            }
        }
        total = total.saturating_add(product);
        if total >= cap {
            return cap;
        }
    }
    total
}

/// Outcome of the set-partition (cell-space) exhaustive search.
#[derive(Debug, Clone)]
pub struct CellSearchOutcome {
    /// The best unfairness value found.
    pub unfairness: f64,
    /// The winning grouping: per block, the member cells as
    /// `(codes, rows)` in the order of [`CellSearchOutcome::attributes`].
    pub blocks: Vec<Vec<(Vec<u32>, RowSet)>>,
    /// The attribute indexes the cell codes refer to.
    pub attributes: Vec<usize>,
    /// Number of set partitions evaluated.
    pub evaluated: usize,
}

/// Budgeted exhaustive search over **set partitions of the full
/// cartesian cells** (Bell-number space — only viable for a handful of
/// cells).
///
/// # Errors
///
/// [`AuditError::BudgetExceeded`] once more than `budget` set partitions
/// have been evaluated; distance errors as usual.
pub fn exhaustive_cells(
    ctx: &AuditContext<'_>,
    budget: usize,
) -> Result<CellSearchOutcome, AuditError> {
    let table = ctx.table().ok_or(AuditError::OutOfCore {
        what: "the exhaustive cell enumeration",
    })?;
    let groups =
        fairjob_store::groupby::group_by_many(table, &RowSet::all(table.len()), ctx.attributes())?;
    let histograms: Vec<Histogram> = groups.iter().map(|(_, rows)| ctx.histogram(rows)).collect();

    // Enumerate set partitions by assigning each cell to an existing
    // block or a fresh one (restricted-growth strings).
    let n = groups.len();
    let mut assignment = vec![0usize; n];
    let mut best: Option<(Vec<usize>, f64)> = None;
    let mut evaluated = 0usize;

    #[allow(clippy::too_many_arguments)] // recursive helper threading all search state
    fn assign(
        i: usize,
        max_block: usize,
        n: usize,
        assignment: &mut Vec<usize>,
        histograms: &[Histogram],
        ctx: &AuditContext<'_>,
        best: &mut Option<(Vec<usize>, f64)>,
        evaluated: &mut usize,
        budget: usize,
    ) -> Result<(), AuditError> {
        if i == n {
            *evaluated += 1;
            if *evaluated > budget {
                return Err(AuditError::BudgetExceeded { budget });
            }
            // Merge histograms per block and score.
            let blocks = max_block + 1;
            let mut merged: Vec<Histogram> = (0..blocks)
                .map(|_| Histogram::empty(histograms[0].spec().clone()))
                .collect();
            for (cell, &block) in assignment.iter().enumerate() {
                merged[block].merge(&histograms[cell]);
            }
            let refs: Vec<&Histogram> = merged.iter().collect();
            let value = average_pairwise(&refs, ctx.distance())?;
            if best.as_ref().is_none_or(|(_, b)| value > *b) {
                *best = Some((assignment.clone(), value));
            }
            return Ok(());
        }
        for block in 0..=max_block + 1 {
            assignment[i] = block;
            assign(
                i + 1,
                max_block.max(block),
                n,
                assignment,
                histograms,
                ctx,
                best,
                evaluated,
                budget,
            )?;
        }
        Ok(())
    }

    if n > 0 {
        assignment[0] = 0;
        assign(
            1,
            0,
            n,
            &mut assignment,
            &histograms,
            ctx,
            &mut best,
            &mut evaluated,
            budget,
        )?;
    }
    let (winner, unfairness) = best.unwrap_or((vec![0; n], 0.0));
    let blocks_count = winner.iter().copied().max().map_or(0, |m| m + 1);
    let mut blocks: Vec<Vec<(Vec<u32>, RowSet)>> = vec![Vec::new(); blocks_count];
    for (cell, &block) in winner.iter().enumerate() {
        blocks[block].push(groups[cell].clone());
    }
    Ok(CellSearchOutcome {
        unfairness,
        blocks,
        attributes: ctx.attributes().to_vec(),
        evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AuditConfig;
    use fairjob_marketplace::toy::toy_workers;

    #[test]
    fn toy_tree_space_has_thirteen_partitionings() {
        // leaf + gender-first (1 x {F leaf/split} x {M leaf/split} = 4)
        // + language-first (2^3 = 8) = 13.
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let count = count_tree_partitionings(&ctx, &ctx.root(), ctx.attributes(), u128::MAX);
        assert_eq!(count, 13);
    }

    #[test]
    fn toy_optimum_is_figure_one() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let result = ExhaustiveTree::new(10_000).run(&ctx).unwrap();
        result.partitioning.validate(t.len()).unwrap();
        assert_eq!(
            result.partitioning.len(),
            4,
            "{}",
            result.partitioning.describe(&t)
        );
        // Female partition kept whole (one constraint), males split on
        // both gender and language (two constraints each).
        let mut whole = 0;
        let mut split = 0;
        for p in result.partitioning.partitions() {
            match p.predicate.constraints().len() {
                1 => {
                    whole += 1;
                    assert_eq!(p.len(), 4);
                }
                2 => split += 1,
                _ => panic!("unexpected predicate: {}", p.predicate.describe(&t)),
            }
        }
        assert_eq!((whole, split), (1, 3));
    }

    #[test]
    fn budget_is_enforced() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let err = ExhaustiveTree::new(3).run(&ctx).unwrap_err();
        assert!(matches!(err, AuditError::BudgetExceeded { budget: 3 }));
    }

    #[test]
    fn cell_space_at_least_matches_tree_space() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let tree = ExhaustiveTree::new(10_000).run(&ctx).unwrap();
        let cells = exhaustive_cells(&ctx, 100_000).unwrap();
        // 6 toy cells -> Bell(6) = 203 set partitions.
        assert_eq!(cells.evaluated, 203);
        assert!(
            cells.unfairness >= tree.unfairness - 1e-12,
            "cell space is a superset: {} vs {}",
            cells.unfairness,
            tree.unfairness
        );
    }

    #[test]
    fn cells_budget_is_enforced() {
        let (t, scores) = toy_workers();
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        assert!(matches!(
            exhaustive_cells(&ctx, 10),
            Err(AuditError::BudgetExceeded { budget: 10 })
        ));
    }
}
