//! Partitions and partitionings.
//!
//! A *partition* is one group of workers described by a conjunction of
//! `attribute = value` constraints; a *partitioning* is a full disjoint
//! cover of the worker set by such groups (the constraint set of
//! Definition 1: `pᵢ ∩ pⱼ = ∅`, `⋃ pᵢ = W`).

use fairjob_hist::Histogram;
use fairjob_store::{Predicate, RowSet, Schema, Table};

/// One group of workers: its defining predicate, its rows, and the
/// histogram of its members' scores (precomputed — every algorithm
/// compares histograms many times per split decision).
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// The conjunction of attribute constraints defining the group.
    pub predicate: Predicate,
    /// The member rows.
    pub rows: RowSet,
    /// Histogram of the members' scores.
    pub histogram: Histogram,
}

impl Partition {
    /// Number of workers in the partition.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the partition has no members (never produced by splits;
    /// possible only for hand-built partitions).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Human-readable description against a table's schema.
    pub fn describe(&self, table: &Table) -> String {
        self.describe_in(table.schema())
    }

    /// Schema-only variant of [`Partition::describe`] (paged contexts
    /// hold a schema but no table).
    pub fn describe_in(&self, schema: &Schema) -> String {
        format!("{} (n={})", self.predicate.describe_in(schema), self.len())
    }
}

/// A full disjoint partitioning of the audited workers.
#[derive(Debug, Clone)]
pub struct Partitioning {
    partitions: Vec<Partition>,
}

impl Partitioning {
    /// Wrap a list of partitions (callers are responsible for the
    /// disjoint-cover invariant; [`Partitioning::validate`] checks it).
    pub fn new(partitions: Vec<Partition>) -> Self {
        Partitioning { partitions }
    }

    /// The partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True when there are no partitions.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Check the Definition 1 constraints against a universe of `n`
    /// rows: partitions are pairwise disjoint and their union is
    /// `{0..n}`. Returns a description of the first violation.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        let mut seen = vec![false; n];
        for (i, p) in self.partitions.iter().enumerate() {
            for row in p.rows.iter() {
                if row >= n {
                    return Err(format!("partition {i} references row {row} >= {n}"));
                }
                if seen[row] {
                    return Err(format!("row {row} appears in more than one partition"));
                }
                seen[row] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("row {missing} is not covered by any partition"));
        }
        Ok(())
    }

    /// The distinct attribute indexes used by the partitioning's
    /// predicates, sorted — "which attributes did the audit split on".
    pub fn attributes_used(&self) -> Vec<usize> {
        let mut attrs: Vec<usize> = self
            .partitions
            .iter()
            .flat_map(|p| p.predicate.constraints().iter().map(|c| c.attr))
            .collect();
        attrs.sort_unstable();
        attrs.dedup();
        attrs
    }

    /// Render the partitioning one line per partition, largest first.
    pub fn describe(&self, table: &Table) -> String {
        self.describe_in(table.schema())
    }

    /// Schema-only variant of [`Partitioning::describe`].
    pub fn describe_in(&self, schema: &Schema) -> String {
        let mut parts: Vec<&Partition> = self.partitions.iter().collect();
        parts.sort_by_key(|p| std::cmp::Reverse(p.len()));
        parts
            .iter()
            .map(|p| p.describe_in(schema))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairjob_hist::BinSpec;

    fn part(rows: Vec<u32>) -> Partition {
        let spec = BinSpec::equal_width(0.0, 1.0, 4).unwrap();
        Partition {
            predicate: Predicate::always(),
            rows: RowSet::from_rows(rows),
            histogram: Histogram::from_values(spec, [0.5].iter().copied()),
        }
    }

    #[test]
    fn validate_accepts_disjoint_cover() {
        let p = Partitioning::new(vec![part(vec![0, 1]), part(vec![2])]);
        assert!(p.validate(3).is_ok());
    }

    #[test]
    fn validate_rejects_overlap() {
        let p = Partitioning::new(vec![part(vec![0, 1]), part(vec![1, 2])]);
        let err = p.validate(3).unwrap_err();
        assert!(err.contains("more than one"));
    }

    #[test]
    fn validate_rejects_gap() {
        let p = Partitioning::new(vec![part(vec![0]), part(vec![2])]);
        let err = p.validate(3).unwrap_err();
        assert!(err.contains("not covered"));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let p = Partitioning::new(vec![part(vec![0, 5])]);
        let err = p.validate(3).unwrap_err();
        assert!(err.contains(">="));
    }

    #[test]
    fn attributes_used_dedups_and_sorts() {
        let spec = BinSpec::equal_width(0.0, 1.0, 4).unwrap();
        let mk = |pred: Predicate, rows: Vec<u32>| Partition {
            predicate: pred,
            rows: RowSet::from_rows(rows),
            histogram: Histogram::from_values(spec.clone(), [0.5].iter().copied()),
        };
        let p = Partitioning::new(vec![
            mk(Predicate::eq(3, 0).and(1, 2), vec![0]),
            mk(Predicate::eq(1, 1), vec![1]),
        ]);
        assert_eq!(p.attributes_used(), vec![1, 3]);
    }
}
