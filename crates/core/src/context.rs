//! Audit configuration and the shared evaluation context.

use crate::engine::EngineCaches;
use crate::error::AuditError;
use crate::partition::Partition;
use fairjob_hist::distance::Emd1d;
use fairjob_hist::{BinSpec, Histogram, HistogramDistance};
use fairjob_store::index::IndexSet;
use fairjob_store::{Predicate, RowSet, Table};
use std::sync::{Arc, Mutex};

/// Configuration of an audit.
#[derive(Clone)]
pub struct AuditConfig {
    /// Number of equal-width histogram bins over `[0, 1]` (the paper's
    /// "equal bins over the range of f"; the bin count is unspecified
    /// there — 10 is this library's default, swept in the ablations).
    pub bins: usize,
    /// Distance between per-partition score histograms. Defaults to the
    /// paper's Earth Mover's Distance.
    pub distance: Arc<dyn HistogramDistance>,
    /// Protected attributes to audit, by name. `None` = every
    /// categorical protected attribute in the schema.
    pub attributes: Option<Vec<String>>,
    /// Minimum rows a split child must keep for the split to be allowed.
    /// The paper has no such floor (equivalent to 1); larger values are
    /// an extension that suppresses noise-driven micro-partitions.
    pub min_partition_size: usize,
    /// Worker-thread count for the evaluation engine's parallel paths.
    /// `None` (the default) lets the engine pick from the machine's
    /// available parallelism. Results are bit-identical for every
    /// thread count; this knob exists for reproducible benchmarking
    /// and resource capping.
    pub threads: Option<usize>,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            bins: 10,
            distance: Arc::new(Emd1d),
            attributes: None,
            min_partition_size: 1,
            threads: None,
        }
    }
}

impl std::fmt::Debug for AuditConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditConfig")
            .field("bins", &self.bins)
            .field("distance", &self.distance.name())
            .field("attributes", &self.attributes)
            .field("min_partition_size", &self.min_partition_size)
            .field("threads", &self.threads)
            .finish()
    }
}

impl AuditConfig {
    /// Default config with a specific bin count.
    pub fn with_bins(bins: usize) -> Self {
        AuditConfig {
            bins,
            ..Default::default()
        }
    }

    /// Default config with a specific distance.
    pub fn with_distance(distance: Arc<dyn HistogramDistance>) -> Self {
        AuditConfig {
            distance,
            ..Default::default()
        }
    }
}

/// Everything an algorithm needs to evaluate candidate partitionings:
/// the table, the scores, the bin layout, the distance, the candidate
/// attributes and their inverted indexes.
pub struct AuditContext<'a> {
    table: &'a Table,
    scores: &'a [f64],
    spec: BinSpec,
    distance: Arc<dyn HistogramDistance>,
    attributes: Vec<usize>,
    /// Shared so a streaming view can hand its maintained indexes to a
    /// fresh per-epoch context without a rebuild or deep copy.
    indexes: Arc<IndexSet>,
    min_partition_size: usize,
    threads: Option<usize>,
    /// `bin_of[row]` = the histogram bin of the row's score, computed
    /// once at build (scores are immutable per audit). Every histogram
    /// built during the search reads this array instead of re-binning
    /// floats. Shared for the same reason as `indexes`.
    bin_of: Arc<Vec<u32>>,
    /// The audited rows. `None` = every table row (the batch case);
    /// `Some` = the live subset of a streaming view whose table keeps
    /// tombstoned rows in place.
    live: Option<RowSet>,
    /// Epoch stamp of the underlying data version (0 for batch audits).
    epoch: u64,
    /// Warm engine caches handed across engine lifetimes: seeded before
    /// a run via [`AuditContext::seed_engine_caches`], adopted by the
    /// next [`crate::EvalEngine`], returned here when it drops. A
    /// `Mutex` (not `RefCell`) so the context stays `Sync` for the
    /// engine's scoped worker threads; it is only locked at engine
    /// construction and drop.
    engine_caches: Mutex<Option<EngineCaches>>,
}

impl std::fmt::Debug for AuditContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditContext")
            .field("rows", &self.table.len())
            .field("bins", &self.spec.len())
            .field("distance", &self.distance.name())
            .field("attributes", &self.attributes)
            .field("min_partition_size", &self.min_partition_size)
            .finish()
    }
}

impl<'a> AuditContext<'a> {
    /// Validate inputs and build the context (scores row-aligned with
    /// `table`, each in `[0, 1]`).
    ///
    /// # Errors
    ///
    /// [`AuditError`] for empty tables, misaligned or out-of-range
    /// scores, unusable attribute selections, or bad bin counts.
    pub fn new(
        table: &'a Table,
        scores: &'a [f64],
        config: AuditConfig,
    ) -> Result<Self, AuditError> {
        if table.is_empty() {
            return Err(AuditError::EmptyTable);
        }
        if scores.len() != table.len() {
            return Err(AuditError::ScoreLength {
                rows: table.len(),
                scores: scores.len(),
            });
        }
        for (row, &s) in scores.iter().enumerate() {
            if !s.is_finite() || !(0.0..=1.0).contains(&s) {
                return Err(AuditError::BadScore { row, value: s });
            }
        }
        let spec = BinSpec::equal_width(0.0, 1.0, config.bins)
            .map_err(|e| AuditError::Bins(e.to_string()))?;
        let attributes = Self::resolve_attributes(table, &config)?;
        let indexes = Arc::new(IndexSet::build(table)?);
        let bin_of: Arc<Vec<u32>> =
            Arc::new(scores.iter().map(|&s| spec.bin_index(s) as u32).collect());
        Ok(AuditContext {
            table,
            scores,
            spec,
            distance: config.distance,
            attributes,
            indexes,
            min_partition_size: config.min_partition_size.max(1),
            threads: config.threads,
            bin_of,
            live: None,
            epoch: 0,
            engine_caches: Mutex::new(None),
        })
    }

    /// Build a context from pre-maintained parts — the streaming fast
    /// path: the view hands over its in-place-maintained indexes and
    /// bin array (shared `Arc`s, no rebuild), the live row subset, and
    /// an epoch stamp. Only cheap shape validation runs here; the
    /// caller guarantees that every **live** row's score is finite in
    /// `[0, 1]` and binned consistently with `config.bins` (the stream
    /// view validates incrementally on mutation). Results over the live
    /// subset are bit-identical to a cold [`AuditContext::new`] over a
    /// compacted table of the same rows.
    ///
    /// # Errors
    ///
    /// [`AuditError`] for empty tables/live sets, misaligned scores,
    /// index or bin arrays, unusable attribute selections, or bad bin
    /// counts.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        table: &'a Table,
        scores: &'a [f64],
        config: AuditConfig,
        indexes: Arc<IndexSet>,
        bin_of: Arc<Vec<u32>>,
        live: Option<RowSet>,
        epoch: u64,
    ) -> Result<Self, AuditError> {
        if table.is_empty() {
            return Err(AuditError::EmptyTable);
        }
        if scores.len() != table.len() {
            return Err(AuditError::ScoreLength {
                rows: table.len(),
                scores: scores.len(),
            });
        }
        if bin_of.len() != table.len() {
            return Err(AuditError::ScoreLength {
                rows: table.len(),
                scores: bin_of.len(),
            });
        }
        let spec = BinSpec::equal_width(0.0, 1.0, config.bins)
            .map_err(|e| AuditError::Bins(e.to_string()))?;
        if let Some(live) = &live {
            if live.is_empty() {
                return Err(AuditError::EmptyTable);
            }
            if let Some(&last) = live.rows().last() {
                if last as usize >= table.len() {
                    return Err(AuditError::ScoreLength {
                        rows: table.len(),
                        scores: last as usize + 1,
                    });
                }
            }
        }
        let attributes = Self::resolve_attributes(table, &config)?;
        Ok(AuditContext {
            table,
            scores,
            spec,
            distance: config.distance,
            attributes,
            indexes,
            min_partition_size: config.min_partition_size.max(1),
            threads: config.threads,
            bin_of,
            live,
            epoch,
            engine_caches: Mutex::new(None),
        })
    }

    fn resolve_attributes(table: &Table, config: &AuditConfig) -> Result<Vec<usize>, AuditError> {
        let attributes =
            match &config.attributes {
                None => table.schema().splittable(),
                Some(names) => {
                    let splittable = table.schema().splittable();
                    let mut attrs = Vec::with_capacity(names.len());
                    for name in names {
                        let idx = table.schema().index_of(name).map_err(|_| {
                            AuditError::BadAttribute {
                                name: name.clone(),
                                reason: "unknown",
                            }
                        })?;
                        if !splittable.contains(&idx) {
                            return Err(AuditError::BadAttribute {
                                name: name.clone(),
                                reason: "not a categorical protected attribute",
                            });
                        }
                        attrs.push(idx);
                    }
                    attrs
                }
            };
        if attributes.is_empty() {
            return Err(AuditError::NoAttributes);
        }
        Ok(attributes)
    }

    /// Seed warm engine caches for the next [`crate::EvalEngine`] built
    /// on this context. The engine adopts them at construction and
    /// hands them back (via [`AuditContext::take_engine_caches`]) when
    /// it drops — the streaming audit loop's cache hand-off.
    pub fn seed_engine_caches(&self, caches: EngineCaches) {
        *self.engine_caches.lock().expect("caches mutex poisoned") = Some(caches);
    }

    /// Take back the engine caches currently parked on this context
    /// (seeded but not yet adopted, or returned by a dropped engine).
    pub fn take_engine_caches(&self) -> Option<EngineCaches> {
        self.engine_caches
            .lock()
            .expect("caches mutex poisoned")
            .take()
    }

    /// Park engine caches on the context (the engine-drop write-back
    /// path; equivalent to [`AuditContext::seed_engine_caches`]).
    pub fn store_engine_caches(&self, caches: EngineCaches) {
        self.seed_engine_caches(caches);
    }

    /// The audited table.
    pub fn table(&self) -> &Table {
        self.table
    }

    /// The per-row scores.
    pub fn scores(&self) -> &[f64] {
        self.scores
    }

    /// The histogram bin layout.
    pub fn spec(&self) -> &BinSpec {
        &self.spec
    }

    /// The configured histogram distance.
    pub fn distance(&self) -> &dyn HistogramDistance {
        self.distance.as_ref()
    }

    /// Candidate protected attributes (schema indexes).
    pub fn attributes(&self) -> &[usize] {
        &self.attributes
    }

    /// The minimum-size floor for split children.
    pub fn min_partition_size(&self) -> usize {
        self.min_partition_size
    }

    /// The configured engine worker-thread count (`None` = pick from
    /// the machine's available parallelism).
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// The precomputed per-row bin indices (`bin_of()[row]` = histogram
    /// bin of the row's score).
    pub fn bin_of(&self) -> &[u32] {
        self.bin_of.as_slice()
    }

    /// The audited row subset, when restricted (`None` = all rows).
    pub fn live_rows(&self) -> Option<&RowSet> {
        self.live.as_ref()
    }

    /// Epoch stamp of the audited data version (0 for batch audits).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Histogram of the scores of `rows`, built from the precomputed
    /// bin-index array (no per-value float binning).
    pub fn histogram(&self, rows: &RowSet) -> Histogram {
        Histogram::from_bin_indices(
            self.spec.clone(),
            rows.iter().map(|row| self.bin_of[row] as usize),
        )
    }

    /// Build a [`Partition`] from a predicate and its rows.
    pub fn partition(&self, predicate: Predicate, rows: RowSet) -> Partition {
        let histogram = self.histogram(&rows);
        Partition {
            predicate,
            rows,
            histogram,
        }
    }

    /// The root partition: all audited workers (the live subset for
    /// streaming contexts), the always-true predicate.
    pub fn root(&self) -> Partition {
        let rows = match &self.live {
            Some(live) => live.clone(),
            None => RowSet::all(self.table.len()),
        };
        self.partition(Predicate::always(), rows)
    }

    /// Split `part` by attribute `attr`. Returns `None` when the split is
    /// impossible or void: the attribute already constrains the
    /// partition, every member shares one value (split would be a
    /// no-op), or any child would fall below the minimum size.
    ///
    /// Runs the single-pass split kernel: one walk over the partition's
    /// rows produces all child row sets and child histograms at once
    /// (O(|partition|) instead of the legacy O(table) posting
    /// intersections — see [`AuditContext::split_legacy`]).
    pub fn split(&self, part: &Partition, attr: usize) -> Option<Vec<Partition>> {
        if part.predicate.constrains(attr) {
            return None;
        }
        let index = self.indexes.get(attr)?;
        let groups = index.split_with_bins(&part.rows, &self.bin_of, self.spec.len());
        if groups.len() <= 1 {
            return None;
        }
        if groups
            .iter()
            .any(|child| child.rows.len() < self.min_partition_size)
        {
            return None;
        }
        Some(
            groups
                .into_iter()
                .map(|child| Partition {
                    predicate: part.predicate.and(attr, child.code),
                    histogram: Histogram::from_counts(self.spec.clone(), child.bin_counts),
                    rows: child.rows,
                })
                .collect(),
        )
    }

    /// The legacy split path: per-code posting intersections followed by
    /// a histogram build per child. Semantically identical to
    /// [`AuditContext::split`]; kept as the kernel's differential-test
    /// oracle and as the baseline the `split_search` bench measures
    /// against.
    pub fn split_legacy(&self, part: &Partition, attr: usize) -> Option<Vec<Partition>> {
        if part.predicate.constrains(attr) {
            return None;
        }
        let index = self.indexes.get(attr)?;
        let groups = index.split(&part.rows);
        if groups.len() <= 1 {
            return None;
        }
        if groups
            .iter()
            .any(|(_, rows)| rows.len() < self.min_partition_size)
        {
            return None;
        }
        Some(
            groups
                .into_iter()
                .map(|(code, rows)| self.partition(part.predicate.and(attr, code), rows))
                .collect(),
        )
    }

    /// Average pairwise distance over a set of partitions — Definition
    /// 2's `unfairness(P, f)`. Zero for fewer than two non-empty
    /// partitions; empty partitions are skipped.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] if the configured distance fails
    /// (histogram layouts always match inside one context).
    pub fn unfairness(&self, parts: &[Partition]) -> Result<f64, AuditError> {
        self.unfairness_refs(parts.iter().filter(|p| !p.is_empty()).collect())
    }

    fn unfairness_refs(&self, live: Vec<&Partition>) -> Result<f64, AuditError> {
        if live.len() < 2 {
            return Ok(0.0);
        }
        let mut sum = 0.0;
        let mut pairs = 0usize;
        for i in 0..live.len() {
            for j in i + 1..live.len() {
                sum += self
                    .distance
                    .distance(&live[i].histogram, &live[j].histogram)?;
                pairs += 1;
            }
        }
        Ok(sum / pairs as f64)
    }

    /// Average pairwise distance over the union of two partition groups
    /// (used by `unbalanced`'s stopping rule: "what would the average
    /// EMD be if `group` replaced the current partition next to
    /// `siblings`").
    ///
    /// # Errors
    ///
    /// As for [`AuditContext::unfairness`].
    pub fn unfairness_union(
        &self,
        group: &[Partition],
        siblings: &[Partition],
    ) -> Result<f64, AuditError> {
        // Borrow, don't clone: histograms are the heavy part of a
        // partition and this is called once per stopping decision.
        self.unfairness_refs(
            group
                .iter()
                .chain(siblings.iter())
                .filter(|p| !p.is_empty())
                .collect(),
        )
    }

    /// Average distance over **cross pairs only** (`group` × `siblings`)
    /// — the alternative, stricter reading of Algorithm 2's
    /// `averageEMD(current, siblings)`; exposed for the ablation bench.
    ///
    /// # Errors
    ///
    /// As for [`AuditContext::unfairness`].
    pub fn unfairness_cross(
        &self,
        group: &[Partition],
        siblings: &[Partition],
    ) -> Result<f64, AuditError> {
        let ga: Vec<&Partition> = group.iter().filter(|p| !p.is_empty()).collect();
        let gb: Vec<&Partition> = siblings.iter().filter(|p| !p.is_empty()).collect();
        if ga.is_empty() || gb.is_empty() {
            return Ok(0.0);
        }
        let mut sum = 0.0;
        for a in &ga {
            for b in &gb {
                sum += self.distance.distance(&a.histogram, &b.histogram)?;
            }
        }
        Ok(sum / (ga.len() * gb.len()) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairjob_marketplace::toy::toy_workers;

    fn ctx_on_toy<'a>(table: &'a Table, scores: &'a [f64]) -> AuditContext<'a> {
        AuditContext::new(table, scores, AuditConfig::default()).unwrap()
    }

    #[test]
    fn validation_catches_bad_inputs() {
        let (t, scores) = toy_workers();
        // Misaligned scores.
        let err = AuditContext::new(&t, &scores[..5], AuditConfig::default()).unwrap_err();
        assert!(matches!(err, AuditError::ScoreLength { .. }));
        // Out-of-range score.
        let mut bad = scores.clone();
        bad[0] = 1.5;
        let err = AuditContext::new(&t, &bad, AuditConfig::default()).unwrap_err();
        assert!(matches!(err, AuditError::BadScore { row: 0, .. }));
        // NaN score.
        bad[0] = f64::NAN;
        assert!(AuditContext::new(&t, &bad, AuditConfig::default()).is_err());
        // Zero bins.
        let err = AuditContext::new(&t, &scores, AuditConfig::with_bins(0)).unwrap_err();
        assert!(matches!(err, AuditError::Bins(_)));
    }

    #[test]
    fn attribute_selection() {
        let (t, scores) = toy_workers();
        // Default: both protected attributes.
        let ctx = ctx_on_toy(&t, &scores);
        assert_eq!(ctx.attributes().len(), 2);
        // Explicit selection.
        let cfg = AuditConfig {
            attributes: Some(vec!["gender".into()]),
            ..Default::default()
        };
        let ctx = AuditContext::new(&t, &scores, cfg).unwrap();
        assert_eq!(ctx.attributes(), &[0]);
        // Unknown name.
        let cfg = AuditConfig {
            attributes: Some(vec!["nope".into()]),
            ..Default::default()
        };
        assert!(matches!(
            AuditContext::new(&t, &scores, cfg),
            Err(AuditError::BadAttribute { .. })
        ));
        // Observed attribute is not splittable.
        let cfg = AuditConfig {
            attributes: Some(vec!["score".into()]),
            ..Default::default()
        };
        assert!(matches!(
            AuditContext::new(&t, &scores, cfg),
            Err(AuditError::BadAttribute { .. })
        ));
    }

    #[test]
    fn root_covers_everything() {
        let (t, scores) = toy_workers();
        let ctx = ctx_on_toy(&t, &scores);
        let root = ctx.root();
        assert_eq!(root.len(), 10);
        assert_eq!(root.histogram.total(), 10.0);
    }

    #[test]
    fn split_by_gender() {
        let (t, scores) = toy_workers();
        let ctx = ctx_on_toy(&t, &scores);
        let children = ctx.split(&ctx.root(), 0).unwrap();
        assert_eq!(children.len(), 2);
        assert_eq!(children[0].len() + children[1].len(), 10);
        // Splitting a child again by the same attribute is refused.
        assert!(ctx.split(&children[0], 0).is_none());
    }

    #[test]
    fn split_single_valued_partition_is_none() {
        let (t, scores) = toy_workers();
        let ctx = ctx_on_toy(&t, &scores);
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        let females = genders.into_iter().find(|p| p.len() == 4).unwrap();
        // All four females exist across three languages -> splits fine...
        assert!(ctx.split(&females, 1).is_some());
        // ...but a single-language subgroup cannot split by language.
        let by_lang = ctx.split(&females, 1).unwrap();
        for p in by_lang {
            assert!(ctx.split(&p, 1).is_none());
        }
    }

    #[test]
    fn min_partition_size_blocks_small_splits() {
        let (t, scores) = toy_workers();
        let cfg = AuditConfig {
            min_partition_size: 3,
            ..Default::default()
        };
        let ctx = AuditContext::new(&t, &scores, cfg).unwrap();
        // Gender split gives 6 + 4: allowed.
        assert!(ctx.split(&ctx.root(), 0).is_some());
        // Language split gives 3 + 3 + 4: allowed; but splitting males by
        // language gives 2 + 2 + 2: blocked.
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        let males = genders.iter().find(|p| p.len() == 6).unwrap();
        assert!(ctx.split(males, 1).is_none());
    }

    #[test]
    fn unfairness_of_single_partition_is_zero() {
        let (t, scores) = toy_workers();
        let ctx = ctx_on_toy(&t, &scores);
        assert_eq!(ctx.unfairness(&[ctx.root()]).unwrap(), 0.0);
        assert_eq!(ctx.unfairness(&[]).unwrap(), 0.0);
    }

    #[test]
    fn unfairness_matches_hand_computation() {
        let (t, scores) = toy_workers();
        let ctx = ctx_on_toy(&t, &scores);
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        // Males: bins 9,9,5,5,1,1 -> freq 1/3 each at bins 1,5,9.
        // Females: all in bin 0.
        // |CDF diffs| at the nine interior cuts: 1, 2/3, 2/3, 2/3, 2/3,
        // 1/3, 1/3, 1/3, 1/3 -> sum 5, times bin width 0.1 -> EMD 0.5.
        let u = ctx.unfairness(&genders).unwrap();
        assert!((u - 0.5).abs() < 1e-9, "got {u}");
    }

    #[test]
    fn union_and_cross_unfairness() {
        let (t, scores) = toy_workers();
        let ctx = ctx_on_toy(&t, &scores);
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        let (m, f) = (genders[0].clone(), genders[1].clone());
        let union = ctx
            .unfairness_union(std::slice::from_ref(&m), std::slice::from_ref(&f))
            .unwrap();
        let cross = ctx.unfairness_cross(&[m], &[f]).unwrap();
        assert!(
            (union - cross).abs() < 1e-12,
            "two partitions: both views agree"
        );
        assert_eq!(ctx.unfairness_cross(&[], &[ctx.root()]).unwrap(), 0.0);
    }
}
