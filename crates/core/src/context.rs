//! Audit configuration and the shared evaluation context.

use crate::engine::EngineCaches;
use crate::error::AuditError;
use crate::partition::Partition;
use crate::pool::WorkerPool;
use fairjob_hist::distance::Emd1d;
use fairjob_hist::{BinSpec, Histogram, HistogramDistance};
use fairjob_store::index::{CategoricalIndex, IndexSet};
use fairjob_store::paged::{PageCacheStats, PageCounters, PageData, PagedColumn, PAGE_ALIGN_ROWS};
use fairjob_store::{PagedStore, Predicate, RowSet, Schema, ShardPlan, ShardPolicy, Table};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Row-count floor below which a sharded split/classify runs its shards
/// inline instead of dispatching them to the worker pool: small
/// partitions are dominated by per-task overhead, and audits split far
/// more small partitions than large ones. The choice affects scheduling
/// only — results and counters are identical either way.
const SHARD_DISPATCH_MIN_ROWS: usize = 65_536;

/// Configuration of an audit.
#[derive(Clone)]
pub struct AuditConfig {
    /// Number of equal-width histogram bins over `[0, 1]` (the paper's
    /// "equal bins over the range of f"; the bin count is unspecified
    /// there — 10 is this library's default, swept in the ablations).
    pub bins: usize,
    /// Distance between per-partition score histograms. Defaults to the
    /// paper's Earth Mover's Distance.
    pub distance: Arc<dyn HistogramDistance>,
    /// Protected attributes to audit, by name. `None` = every
    /// categorical protected attribute in the schema.
    pub attributes: Option<Vec<String>>,
    /// Minimum rows a split child must keep for the split to be allowed.
    /// The paper has no such floor (equivalent to 1); larger values are
    /// an extension that suppresses noise-driven micro-partitions.
    pub min_partition_size: usize,
    /// Worker-thread count for the evaluation engine's parallel paths.
    /// `None` (the default) lets the engine pick from the machine's
    /// available parallelism. Results are bit-identical for every
    /// thread count; this knob exists for reproducible benchmarking
    /// and resource capping.
    pub threads: Option<usize>,
    /// Row-range sharding of the per-row kernels (classification,
    /// splits, index build). [`ShardPolicy::Auto`] (the default) picks
    /// a shard count from the row count and thread budget;
    /// [`ShardPolicy::Disabled`] runs the legacy scalar kernels — the
    /// baseline the `shard_scale` bench gates against. Audit results
    /// are bit-identical under every policy; only the `shard_tasks` /
    /// `rows_classified_parallel` counters (and wall-clock) change.
    pub shards: ShardPolicy,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            bins: 10,
            distance: Arc::new(Emd1d),
            attributes: None,
            min_partition_size: 1,
            threads: None,
            shards: ShardPolicy::Auto,
        }
    }
}

impl std::fmt::Debug for AuditConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditConfig")
            .field("bins", &self.bins)
            .field("distance", &self.distance.name())
            .field("attributes", &self.attributes)
            .field("min_partition_size", &self.min_partition_size)
            .field("threads", &self.threads)
            .field("shards", &self.shards)
            .finish()
    }
}

impl AuditConfig {
    /// Default config with a specific bin count.
    pub fn with_bins(bins: usize) -> Self {
        AuditConfig {
            bins,
            ..Default::default()
        }
    }

    /// Default config with a specific distance.
    pub fn with_distance(distance: Arc<dyn HistogramDistance>) -> Self {
        AuditConfig {
            distance,
            ..Default::default()
        }
    }
}

/// Where an audit's underlying data lives. The split/histogram kernels
/// never read it after the context is built — they run entirely on the
/// derived arrays (`bin_of`, indexes) — so the paged variant audits
/// datasets whose raw columns never fit in memory.
enum DataSource<'a> {
    /// An in-memory table (batch and streaming audits).
    Mem(&'a Table),
    /// An out-of-core paged store (audits beyond RAM).
    Paged(&'a PagedStore),
}

/// Everything an algorithm needs to evaluate candidate partitionings:
/// the data source, the scores, the bin layout, the distance, the
/// candidate attributes and their inverted indexes.
pub struct AuditContext<'a> {
    source: DataSource<'a>,
    /// The raw score vector, when resident. Paged contexts bin scores
    /// page-by-page at build and never hold the full vector.
    scores: Option<&'a [f64]>,
    spec: BinSpec,
    distance: Arc<dyn HistogramDistance>,
    attributes: Vec<usize>,
    /// Shared so a streaming view can hand its maintained indexes to a
    /// fresh per-epoch context without a rebuild or deep copy.
    indexes: Arc<IndexSet>,
    min_partition_size: usize,
    threads: Option<usize>,
    /// `bin_of[row]` = the histogram bin of the row's score, computed
    /// once at build (scores are immutable per audit). Every histogram
    /// built during the search reads this array instead of re-binning
    /// floats. Shared for the same reason as `indexes`.
    bin_of: Arc<Vec<u32>>,
    /// Byte-narrowed copy of `bin_of`, built once for sharded batch
    /// contexts when the layout fits a byte (bins ≤ 256 — always, for
    /// the paper's configurations). The serial split fast path reads 1
    /// byte per row instead of 4; `None` on legacy and streaming
    /// contexts (the stream view patches `bin_of` in place and a second
    /// maintained array would double its write traffic).
    bin8: Option<Arc<Vec<u8>>>,
    /// The audited rows. `None` = every table row (the batch case);
    /// `Some` = the live subset of a streaming view whose table keeps
    /// tombstoned rows in place.
    live: Option<RowSet>,
    /// Epoch stamp of the underlying data version (0 for batch audits).
    epoch: u64,
    /// Resolved shard layout (`None` = [`ShardPolicy::Disabled`]: the
    /// legacy scalar kernels). Fixed at build from `(rows, policy,
    /// thread budget)`, so every split of this context shards the same
    /// way.
    shard_plan: Option<ShardPlan>,
    /// Data-parallel work counters, accumulated across the context's
    /// lifetime and folded into [`crate::EngineStats`] by
    /// [`crate::EvalEngine::stats`]. Relaxed atomics: every increment
    /// is a fixed amount per kernel invocation, so totals are exact and
    /// thread-schedule independent.
    shard_counters: ShardCounters,
    /// Warm engine caches handed across engine lifetimes: seeded before
    /// a run via [`AuditContext::seed_engine_caches`], adopted by the
    /// next [`crate::EvalEngine`], returned here when it drops. A
    /// `Mutex` (not `RefCell`) so the context stays `Sync` for the
    /// engine's scoped worker threads; it is only locked at engine
    /// construction and drop.
    engine_caches: Mutex<Option<EngineCaches>>,
    /// The paged store's shared traffic counters plus the baseline
    /// snapshot this context measures from (see
    /// [`AuditContext::page_counters`]). `None` on in-memory contexts.
    page_stats: Option<(Arc<PageCacheStats>, PageCounters)>,
}

/// See [`AuditContext`]'s `shard_counters` field.
#[derive(Debug, Default)]
struct ShardCounters {
    shard_tasks: AtomicU64,
    rows_classified_parallel: AtomicU64,
}

impl ShardCounters {
    fn note(&self, tasks: usize, rows: usize) {
        self.shard_tasks.fetch_add(tasks as u64, Ordering::Relaxed);
        self.rows_classified_parallel
            .fetch_add(rows as u64, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for AuditContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditContext")
            .field("rows", &self.rows())
            .field("bins", &self.spec.len())
            .field("distance", &self.distance.name())
            .field("attributes", &self.attributes)
            .field("min_partition_size", &self.min_partition_size)
            .field("shards", &self.shard_plan.as_ref().map(ShardPlan::shards))
            .finish()
    }
}

impl<'a> AuditContext<'a> {
    /// Validate inputs and build the context (scores row-aligned with
    /// `table`, each in `[0, 1]`).
    ///
    /// # Errors
    ///
    /// [`AuditError`] for empty tables, misaligned or out-of-range
    /// scores, unusable attribute selections, or bad bin counts.
    pub fn new(
        table: &'a Table,
        scores: &'a [f64],
        config: AuditConfig,
    ) -> Result<Self, AuditError> {
        if table.is_empty() {
            return Err(AuditError::EmptyTable);
        }
        if scores.len() != table.len() {
            return Err(AuditError::ScoreLength {
                rows: table.len(),
                scores: scores.len(),
            });
        }
        let parallelism = Self::parallelism_for(config.threads);
        let shard_plan = config.shards.plan(table.len(), parallelism);
        if shard_plan.is_none() {
            // Legacy path: upfront branchless bulk validation the
            // compiler can vectorize — the bounds test alone rejects
            // every bad value (NaN and +inf fail `<= 1`, -inf fails
            // `>= 0`). The sharded path fuses this fold into the
            // classification pass instead (scores are read once);
            // [`AuditContext::first_bad_score`] keeps the error
            // precedence identical between the two paths.
            if let Some((row, value)) = Self::first_bad_score(scores) {
                return Err(AuditError::BadScore { row, value });
            }
        }
        let spec = match BinSpec::equal_width(0.0, 1.0, config.bins) {
            Ok(spec) => spec,
            Err(e) => {
                // Sharded path: a bad score still outranks a bad bin
                // count, exactly as the legacy upfront validation had it.
                if let Some((row, value)) = Self::first_bad_score(scores) {
                    return Err(AuditError::BadScore { row, value });
                }
                return Err(AuditError::Bins(e.to_string()));
            }
        };
        let attributes = match Self::resolve_attributes_in(table.schema(), &config) {
            Ok(attributes) => attributes,
            Err(e) => {
                // Same precedence guard as for the bin spec above.
                if let Some((row, value)) = Self::first_bad_score(scores) {
                    return Err(AuditError::BadScore { row, value });
                }
                return Err(e);
            }
        };
        let shard_counters = ShardCounters::default();
        let (indexes, bin_of, bin8) = match &shard_plan {
            None => (
                Arc::new(IndexSet::build(table)?),
                Arc::new(scores.iter().map(|&s| spec.bin_index(s) as u32).collect()),
                None,
            ),
            Some(plan) => {
                let (bin_of, bin8) =
                    Self::classify_validated(&spec, scores, plan, parallelism, &shard_counters)?;
                // Sharded contexts index exactly the audited attributes
                // (splits only ever touch those); the legacy path keeps
                // building every splittable attribute.
                let indexes = Arc::new(IndexSet::build_sharded_subset(table, &attributes, plan)?);
                shard_counters.note(plan.shards() * attributes.len(), 0);
                (indexes, Arc::new(bin_of), bin8.map(Arc::new))
            }
        };
        Ok(AuditContext {
            source: DataSource::Mem(table),
            scores: Some(scores),
            spec,
            distance: config.distance,
            attributes,
            indexes,
            min_partition_size: config.min_partition_size.max(1),
            threads: config.threads,
            bin_of,
            bin8,
            live: None,
            epoch: 0,
            shard_plan,
            shard_counters,
            engine_caches: Mutex::new(None),
            page_stats: None,
        })
    }

    /// The thread budget the sharded kernels (and the auto shard
    /// policy) work with — the same resolution [`crate::EvalEngine`]
    /// applies to `config.threads`.
    fn parallelism_for(threads: Option<usize>) -> usize {
        threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map_or(1, |n| n.get())
                    .min(8)
            })
            .max(1)
    }

    /// First `(row, value)` outside `[0, 1]` (NaN and infinities
    /// included), if any — the scalar rescan behind every `BadScore`
    /// error.
    fn first_bad_score(scores: &[f64]) -> Option<(usize, f64)> {
        scores
            .iter()
            .enumerate()
            .find(|&(_, &s)| !(0.0..=1.0).contains(&s))
            .map(|(row, &value)| (row, value))
    }

    /// Classify every score through the chunked [`BinSpec::bin_indices`]
    /// kernel — one task per shard on the worker pool when parallel,
    /// merged in shard order — **fused** with the `[0, 1]` validation
    /// fold (each chunk is validated while it is still cache-hot, so
    /// the scores are read once instead of twice) and, when the layout
    /// fits a byte (bins ≤ 256), with the byte-narrowed bin array the
    /// serial split kernels read. Shards are contiguous score ranges
    /// and classification is elementwise, so the concatenation equals
    /// the serial `bin_index`-per-row loop exactly.
    ///
    /// # Errors
    ///
    /// [`AuditError::BadScore`] with the **first** offending row — the
    /// same error the legacy upfront validation produces.
    fn classify_validated(
        spec: &BinSpec,
        scores: &[f64],
        plan: &ShardPlan,
        parallelism: usize,
        counters: &ShardCounters,
    ) -> Result<(Vec<u32>, Option<Vec<u8>>), AuditError> {
        counters.note(plan.shards(), scores.len());
        let narrow = spec.len() <= 256;
        let mut bin_of = Vec::with_capacity(scores.len());
        let mut bin8 = Vec::with_capacity(if narrow { scores.len() } else { 0 });
        let mut all_valid = true;
        if scores.len() < SHARD_DISPATCH_MIN_ROWS || parallelism <= 1 {
            // Serial execution: chunked so the validity fold and the
            // byte narrowing re-read each chunk from L1, not from DRAM.
            // `bin_indices` is elementwise, so per-chunk calls equal the
            // whole-slice call exactly.
            for chunk in scores.chunks(4096) {
                all_valid &= chunk
                    .iter()
                    .fold(true, |ok, &s| ok & (0.0..=1.0).contains(&s));
                let bins = spec.bin_indices(chunk);
                if narrow {
                    bin8.extend(bins.iter().map(|&b| b as u8));
                }
                bin_of.extend_from_slice(&bins);
            }
        } else {
            let per_shard: Vec<(Vec<u32>, bool)> =
                WorkerPool::global().run_chunks(parallelism, plan.shards(), |s| {
                    let slice = &scores[plan.range(s)];
                    let ok = slice
                        .iter()
                        .fold(true, |ok, &v| ok & (0.0..=1.0).contains(&v));
                    (spec.bin_indices(slice), ok)
                });
            for (shard, shard_ok) in per_shard {
                if narrow {
                    bin8.extend(shard.iter().map(|&b| b as u8));
                }
                bin_of.extend_from_slice(&shard);
                all_valid &= shard_ok;
            }
        }
        if !all_valid {
            let (row, value) = Self::first_bad_score(scores).expect("a failing score exists");
            return Err(AuditError::BadScore { row, value });
        }
        Ok((bin_of, narrow.then_some(bin8)))
    }

    /// Build a context from pre-maintained parts — the streaming fast
    /// path: the view hands over its in-place-maintained indexes and
    /// bin array (shared `Arc`s, no rebuild), the live row subset, and
    /// an epoch stamp. Only cheap shape validation runs here; the
    /// caller guarantees that every **live** row's score is finite in
    /// `[0, 1]` and binned consistently with `config.bins` (the stream
    /// view validates incrementally on mutation). Results over the live
    /// subset are bit-identical to a cold [`AuditContext::new`] over a
    /// compacted table of the same rows.
    ///
    /// # Errors
    ///
    /// [`AuditError`] for empty tables/live sets, misaligned scores,
    /// index or bin arrays, unusable attribute selections, or bad bin
    /// counts.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        table: &'a Table,
        scores: &'a [f64],
        config: AuditConfig,
        indexes: Arc<IndexSet>,
        bin_of: Arc<Vec<u32>>,
        live: Option<RowSet>,
        epoch: u64,
    ) -> Result<Self, AuditError> {
        if table.is_empty() {
            return Err(AuditError::EmptyTable);
        }
        if scores.len() != table.len() {
            return Err(AuditError::ScoreLength {
                rows: table.len(),
                scores: scores.len(),
            });
        }
        if bin_of.len() != table.len() {
            return Err(AuditError::ScoreLength {
                rows: table.len(),
                scores: bin_of.len(),
            });
        }
        let spec = BinSpec::equal_width(0.0, 1.0, config.bins)
            .map_err(|e| AuditError::Bins(e.to_string()))?;
        if let Some(live) = &live {
            if live.is_empty() {
                return Err(AuditError::EmptyTable);
            }
            if let Some(&last) = live.rows().last() {
                if last as usize >= table.len() {
                    return Err(AuditError::ScoreLength {
                        rows: table.len(),
                        scores: last as usize + 1,
                    });
                }
            }
        }
        let attributes = Self::resolve_attributes_in(table.schema(), &config)?;
        let shard_plan = config
            .shards
            .plan(table.len(), Self::parallelism_for(config.threads));
        Ok(AuditContext {
            source: DataSource::Mem(table),
            scores: Some(scores),
            spec,
            distance: config.distance,
            attributes,
            indexes,
            min_partition_size: config.min_partition_size.max(1),
            threads: config.threads,
            bin_of,
            bin8: None,
            live,
            epoch,
            shard_plan,
            shard_counters: ShardCounters::default(),
            engine_caches: Mutex::new(None),
            page_stats: None,
        })
    }

    /// Build a context directly over an out-of-core [`PagedStore`] —
    /// the audit never materializes the table. Scores are validated and
    /// binned page-by-page (fused with the read, so the score pages are
    /// streamed once), and one inverted index is built per audited
    /// attribute in a single page-ordered pass, so the peak resident
    /// footprint is the derived per-row arrays plus the buffer-manager
    /// budget — never the raw columns. Sharding aligns its interior
    /// boundaries to page boundaries ([`ShardPlan::new_aligned`] with
    /// granule [`PAGE_ALIGN_ROWS`]); results stay bit-identical to the
    /// in-memory audit of the materialized table under every layout,
    /// because classification is elementwise per page, postings are
    /// emitted in row order, and the split kernels never read raw data
    /// after the build.
    ///
    /// `live` restricts the audit to a row subset (a FairQL `WHERE`
    /// filter, already within the store's own live set); `None` audits
    /// the store's live set. `baseline` is the page-counter snapshot
    /// this context's [`AuditContext::page_counters`] measures from —
    /// callers that ran their own pre-scans (e.g. the zone-mapped
    /// `WHERE` filter) pass the snapshot taken before those scans so
    /// the filter's page traffic is attributed to the audit; `None`
    /// snapshots at entry.
    ///
    /// Unlike [`AuditContext::new`], configuration errors (bins,
    /// attributes) are reported before score errors: validating scores
    /// first would cost an extra streaming pass over the score pages.
    ///
    /// # Errors
    ///
    /// [`AuditError`] for empty stores or live sets, stores without a
    /// score column, unusable attribute selections, bad bin counts,
    /// out-of-range scores, or unreadable/corrupt page files.
    pub fn from_paged(
        store: &'a PagedStore,
        config: AuditConfig,
        live: Option<RowSet>,
        baseline: Option<PageCounters>,
    ) -> Result<Self, AuditError> {
        let baseline = baseline.unwrap_or_else(|| store.stats().snapshot());
        let rows = store.rows();
        if rows == 0 {
            return Err(AuditError::EmptyTable);
        }
        if !store.has_scores() {
            return Err(AuditError::ScoreLength { rows, scores: 0 });
        }
        let spec = BinSpec::equal_width(0.0, 1.0, config.bins)
            .map_err(|e| AuditError::Bins(e.to_string()))?;
        let attributes = Self::resolve_attributes_in(store.schema(), &config)?;
        let live = live.or_else(|| store.live().cloned());
        if let Some(live) = &live {
            if live.is_empty() {
                return Err(AuditError::EmptyTable);
            }
            if let Some(&last) = live.rows().last() {
                if last as usize >= rows {
                    return Err(AuditError::ScoreLength {
                        rows,
                        scores: last as usize + 1,
                    });
                }
            }
        }
        let parallelism = Self::parallelism_for(config.threads);
        let shard_plan = config
            .shards
            .plan(rows, parallelism)
            .map(|plan| ShardPlan::new_aligned(rows, plan.shards(), PAGE_ALIGN_ROWS));
        let shard_counters = ShardCounters::default();
        let (bin_of, bin8) = Self::classify_paged(store, &spec, live.as_ref(), &shard_counters)?;
        let indexes = Arc::new(Self::index_paged(
            store,
            &attributes,
            live.as_ref(),
            &shard_counters,
        )?);
        Ok(AuditContext {
            source: DataSource::Paged(store),
            scores: None,
            spec,
            distance: config.distance,
            attributes,
            indexes,
            min_partition_size: config.min_partition_size.max(1),
            threads: config.threads,
            bin_of: Arc::new(bin_of),
            bin8: bin8.map(Arc::new),
            live,
            epoch: store.epoch(),
            shard_plan,
            shard_counters,
            engine_caches: Mutex::new(None),
            page_stats: Some((Arc::clone(store.stats()), baseline)),
        })
    }

    /// Fused paged classification: stream the score pages once,
    /// validating and binning each page while it is cache-hot and
    /// writing the results into pre-zeroed whole-table arrays. Pages
    /// with no audited row are skipped and keep their zeros — those
    /// rows are outside every partition, so the histogram kernels never
    /// read them. Per-page [`BinSpec::bin_indices`] calls are
    /// elementwise, so the concatenation equals the serial whole-slice
    /// classification exactly.
    fn classify_paged(
        store: &PagedStore,
        spec: &BinSpec,
        live: Option<&RowSet>,
        counters: &ShardCounters,
    ) -> Result<(Vec<u32>, Option<Vec<u8>>), AuditError> {
        let rows = store.rows();
        let narrow = spec.len() <= 256;
        let mut bin_of = vec![0u32; rows];
        let mut bin8 = narrow.then(|| vec![0u8; rows]);
        let mut first_bad: Option<(usize, f64)> = None;
        let mut classified = 0usize;
        let summary = store.scan_column(PagedColumn::Scores, live, None, |first_row, data| {
            let PageData::F64(values) = data else {
                return; // score pages are always F64; `open` validated kinds
            };
            if first_bad.is_none() {
                if let Some((i, &value)) = values
                    .iter()
                    .enumerate()
                    .find(|&(_, &s)| !(0.0..=1.0).contains(&s))
                {
                    first_bad = Some((first_row + i, value));
                }
            }
            let bins = spec.bin_indices(values);
            if let Some(bin8) = bin8.as_mut() {
                for (dst, &bin) in bin8[first_row..first_row + bins.len()]
                    .iter_mut()
                    .zip(&bins)
                {
                    *dst = bin as u8;
                }
            }
            bin_of[first_row..first_row + bins.len()].copy_from_slice(&bins);
            classified += values.len();
        })?;
        counters.note(summary.pages_scanned, classified);
        if let Some((row, value)) = first_bad {
            return Err(AuditError::BadScore { row, value });
        }
        Ok((bin_of, bin8))
    }

    /// Single-pass paged index build: for each audited attribute,
    /// stream its code pages once, filling the forward column (rows on
    /// candidate-skipped pages keep zero placeholders — the split
    /// kernels consult the forward column only at audited rows) and
    /// pushing every audited row onto its code's posting list. Pages
    /// arrive in row order, so postings come out sorted without a sort
    /// pass — exactly the in-memory index build's output over the same
    /// rows.
    fn index_paged(
        store: &PagedStore,
        attributes: &[usize],
        live: Option<&RowSet>,
        counters: &ShardCounters,
    ) -> Result<IndexSet, AuditError> {
        let rows = store.rows();
        let mut built = Vec::with_capacity(attributes.len());
        for &attr in attributes {
            let def = store.schema().attribute(attr);
            // Audited attributes are categorical (resolve checked).
            let cardinality = def.cardinality().unwrap_or(0);
            let narrow = cardinality <= 256;
            let mut postings: Vec<Vec<u32>> = vec![Vec::new(); cardinality];
            let mut codes8 = narrow.then(|| vec![0u8; rows]);
            let mut codes = if narrow { Vec::new() } else { vec![0u32; rows] };
            let mut corrupt: Option<String> = None;
            let live_rows = live.map(RowSet::rows);
            let mut cursor = 0usize;
            let summary =
                store.scan_column(PagedColumn::Attribute(attr), live, None, |first_row, data| {
                    if corrupt.is_some() {
                        return;
                    }
                    if !matches!(data, PageData::Code8(_) | PageData::Code32(_)) {
                        corrupt = Some(format!(
                            "attribute `{}` page at row {first_row} is not a code page",
                            def.name
                        ));
                        return;
                    }
                    let page_rows = data.rows();
                    // Forward column: every row of the page. A code out
                    // of the dictionary's range means a corrupt file —
                    // report it instead of panicking downstream.
                    for i in 0..page_rows {
                        let code = data.code_at(i);
                        if code as usize >= cardinality {
                            corrupt = Some(format!(
                                "attribute `{}` code {code} at row {} exceeds cardinality {cardinality}",
                                def.name,
                                first_row + i
                            ));
                            return;
                        }
                        match codes8.as_mut() {
                            Some(fwd) => fwd[first_row + i] = code as u8,
                            None => codes[first_row + i] = code,
                        }
                    }
                    // Postings: audited rows only, in row order.
                    match live_rows {
                        None => {
                            for i in 0..page_rows {
                                postings[data.code_at(i) as usize].push((first_row + i) as u32);
                            }
                        }
                        Some(rows) => {
                            cursor += rows[cursor..].partition_point(|&r| (r as usize) < first_row);
                            while cursor < rows.len()
                                && (rows[cursor] as usize) < first_row + page_rows
                            {
                                let row = rows[cursor] as usize;
                                postings[data.code_at(row - first_row) as usize].push(rows[cursor]);
                                cursor += 1;
                            }
                        }
                    }
                })?;
            if let Some(reason) = corrupt {
                return Err(AuditError::Paged(reason));
            }
            counters.note(summary.pages_scanned, 0);
            let postings: Vec<RowSet> = postings.into_iter().map(RowSet::from_sorted).collect();
            built.push(CategoricalIndex::from_parts(attr, postings, codes8, codes));
        }
        Ok(IndexSet::from_indexes(store.schema().width(), built))
    }

    fn resolve_attributes_in(
        schema: &Schema,
        config: &AuditConfig,
    ) -> Result<Vec<usize>, AuditError> {
        let attributes = match &config.attributes {
            None => schema.splittable(),
            Some(names) => {
                let splittable = schema.splittable();
                let mut attrs = Vec::with_capacity(names.len());
                for name in names {
                    let idx = schema
                        .index_of(name)
                        .map_err(|_| AuditError::BadAttribute {
                            name: name.clone(),
                            reason: "unknown",
                        })?;
                    if !splittable.contains(&idx) {
                        return Err(AuditError::BadAttribute {
                            name: name.clone(),
                            reason: "not a categorical protected attribute",
                        });
                    }
                    attrs.push(idx);
                }
                attrs
            }
        };
        if attributes.is_empty() {
            return Err(AuditError::NoAttributes);
        }
        Ok(attributes)
    }

    /// Seed warm engine caches for the next [`crate::EvalEngine`] built
    /// on this context. The engine adopts them at construction and
    /// hands them back (via [`AuditContext::take_engine_caches`]) when
    /// it drops — the streaming audit loop's cache hand-off.
    pub fn seed_engine_caches(&self, caches: EngineCaches) {
        *self.engine_caches.lock().expect("caches mutex poisoned") = Some(caches);
    }

    /// Take back the engine caches currently parked on this context
    /// (seeded but not yet adopted, or returned by a dropped engine).
    pub fn take_engine_caches(&self) -> Option<EngineCaches> {
        self.engine_caches
            .lock()
            .expect("caches mutex poisoned")
            .take()
    }

    /// Park engine caches on the context (the engine-drop write-back
    /// path; equivalent to [`AuditContext::seed_engine_caches`]).
    pub fn store_engine_caches(&self, caches: EngineCaches) {
        self.seed_engine_caches(caches);
    }

    /// The audited table, when the context holds one in memory (`None`
    /// for paged out-of-core contexts).
    pub fn table(&self) -> Option<&'a Table> {
        match self.source {
            DataSource::Mem(table) => Some(table),
            DataSource::Paged(_) => None,
        }
    }

    /// The raw per-row scores, when resident (`None` for paged
    /// contexts, which bin scores page-by-page and never hold the
    /// vector).
    pub fn scores(&self) -> Option<&'a [f64]> {
        self.scores
    }

    /// The schema of the audited data (available on every context).
    pub fn schema(&self) -> &'a Schema {
        match self.source {
            DataSource::Mem(table) => table.schema(),
            DataSource::Paged(store) => store.schema(),
        }
    }

    /// Total rows of the underlying data, tombstoned rows included
    /// (the audited-row count is [`AuditContext::root`]'s length).
    pub fn rows(&self) -> usize {
        match self.source {
            DataSource::Mem(table) => table.len(),
            DataSource::Paged(store) => store.rows(),
        }
    }

    /// Page-cache traffic attributable to this context: the paged
    /// store's shared counters minus the baseline snapshot taken at
    /// build (or the caller-supplied one). All zeros for in-memory
    /// contexts.
    pub fn page_counters(&self) -> PageCounters {
        match &self.page_stats {
            Some((stats, baseline)) => stats.snapshot().since(baseline),
            None => PageCounters::default(),
        }
    }

    /// The histogram bin layout.
    pub fn spec(&self) -> &BinSpec {
        &self.spec
    }

    /// The configured histogram distance.
    pub fn distance(&self) -> &dyn HistogramDistance {
        self.distance.as_ref()
    }

    /// Candidate protected attributes (schema indexes).
    pub fn attributes(&self) -> &[usize] {
        &self.attributes
    }

    /// The minimum-size floor for split children.
    pub fn min_partition_size(&self) -> usize {
        self.min_partition_size
    }

    /// The configured engine worker-thread count (`None` = pick from
    /// the machine's available parallelism).
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// The precomputed per-row bin indices (`bin_of()[row]` = histogram
    /// bin of the row's score).
    pub fn bin_of(&self) -> &[u32] {
        self.bin_of.as_slice()
    }

    /// The audited row subset, when restricted (`None` = all rows).
    pub fn live_rows(&self) -> Option<&RowSet> {
        self.live.as_ref()
    }

    /// Epoch stamp of the audited data version (0 for batch audits).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The resolved shard layout, when sharding is enabled.
    pub fn shard_plan(&self) -> Option<&ShardPlan> {
        self.shard_plan.as_ref()
    }

    /// Per-shard kernel executions dispatched so far (layout-dependent:
    /// scales with the shard count; independent of thread count).
    pub fn shard_tasks(&self) -> u64 {
        self.shard_counters.shard_tasks.load(Ordering::Relaxed)
    }

    /// Rows pushed through the sharded classify/split kernels so far
    /// (0 when sharding is disabled; otherwise independent of both the
    /// shard count and the thread count).
    pub fn rows_classified_parallel(&self) -> u64 {
        self.shard_counters
            .rows_classified_parallel
            .load(Ordering::Relaxed)
    }

    /// Histogram of the scores of `rows`, built from the precomputed
    /// bin-index array with integer counting (no per-value float
    /// binning, no float accumulation — bit-identical to the float
    /// path, see [`Histogram::from_bin_indices_u32`]).
    pub fn histogram(&self, rows: &RowSet) -> Histogram {
        Histogram::from_bin_indices_u32(self.spec.clone(), rows.iter().map(|row| self.bin_of[row]))
    }

    /// Build a [`Partition`] from a predicate and its rows.
    pub fn partition(&self, predicate: Predicate, rows: RowSet) -> Partition {
        let histogram = self.histogram(&rows);
        Partition {
            predicate,
            rows,
            histogram,
        }
    }

    /// The root partition: all audited workers (the live subset for
    /// streaming contexts), the always-true predicate.
    pub fn root(&self) -> Partition {
        let rows = match &self.live {
            Some(live) => live.clone(),
            None => RowSet::all(self.rows()),
        };
        self.partition(Predicate::always(), rows)
    }

    /// Split `part` by attribute `attr`. Returns `None` when the split is
    /// impossible or void: the attribute already constrains the
    /// partition, every member shares one value (split would be a
    /// no-op), or any child would fall below the minimum size.
    ///
    /// Runs the single-pass split kernel: one walk over the partition's
    /// rows produces all child row sets and child histograms at once
    /// (O(|partition|) instead of the legacy O(table) posting
    /// intersections — see [`AuditContext::split_legacy`]). With
    /// sharding enabled the walk runs as one two-pass task per shard —
    /// on the worker pool for large partitions — merged in shard order,
    /// which is bit-identical to the serial kernel.
    pub fn split(&self, part: &Partition, attr: usize) -> Option<Vec<Partition>> {
        if part.predicate.constrains(attr) {
            return None;
        }
        let index = self.indexes.get(attr)?;
        let bins = self.spec.len();
        let groups = match &self.shard_plan {
            None => index.split_with_bins(&part.rows, &self.bin_of, bins),
            Some(plan) => {
                self.shard_counters.note(plan.shards(), part.rows.len());
                let parallelism = Self::parallelism_for(self.threads);
                if part.rows.len() == self.rows() {
                    // Root split: the children's row sets are exactly
                    // the index postings — only bin counting remains.
                    match &self.bin8 {
                        Some(bin8) => index.split_full_with_bins8(bin8, bins),
                        None => index.split_full_with_bins(&self.bin_of, bins),
                    }
                } else if part.rows.len() >= SHARD_DISPATCH_MIN_ROWS && parallelism > 1 {
                    let sharded = plan.shard_rows(&part.rows);
                    let partials =
                        WorkerPool::global().run_chunks(parallelism, sharded.shards(), |s| {
                            index.split_shard(sharded.shard(s), &self.bin_of, bins)
                        });
                    CategoricalIndex::merge_shard_splits(partials, bins)
                } else {
                    // Serial execution: the one-pass byte kernel when
                    // the layout fits (narrow forward column + narrow
                    // bin array), else the same two-pass kernel over
                    // the whole row slice — bit-identical either way.
                    self.bin8
                        .as_ref()
                        .and_then(|bin8| index.split_onepass(part.rows.rows(), bin8, bins))
                        .unwrap_or_else(|| {
                            index.split_with_bins_two_pass(part.rows.rows(), &self.bin_of, bins)
                        })
                }
            }
        };
        if groups.len() <= 1 {
            return None;
        }
        if groups
            .iter()
            .any(|child| child.rows.len() < self.min_partition_size)
        {
            return None;
        }
        Some(
            groups
                .into_iter()
                .map(|child| Partition {
                    predicate: part.predicate.and(attr, child.code),
                    histogram: Histogram::from_counts(self.spec.clone(), child.bin_counts),
                    rows: child.rows,
                })
                .collect(),
        )
    }

    /// The legacy split path: per-code posting intersections followed by
    /// a histogram build per child. Semantically identical to
    /// [`AuditContext::split`]; kept as the kernel's differential-test
    /// oracle and as the baseline the `split_search` bench measures
    /// against.
    pub fn split_legacy(&self, part: &Partition, attr: usize) -> Option<Vec<Partition>> {
        if part.predicate.constrains(attr) {
            return None;
        }
        let index = self.indexes.get(attr)?;
        let groups = index.split(&part.rows);
        if groups.len() <= 1 {
            return None;
        }
        if groups
            .iter()
            .any(|(_, rows)| rows.len() < self.min_partition_size)
        {
            return None;
        }
        Some(
            groups
                .into_iter()
                .map(|(code, rows)| self.partition(part.predicate.and(attr, code), rows))
                .collect(),
        )
    }

    /// Average pairwise distance over a set of partitions — Definition
    /// 2's `unfairness(P, f)`. Zero for fewer than two non-empty
    /// partitions; empty partitions are skipped.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] if the configured distance fails
    /// (histogram layouts always match inside one context).
    pub fn unfairness(&self, parts: &[Partition]) -> Result<f64, AuditError> {
        self.unfairness_refs(parts.iter().filter(|p| !p.is_empty()).collect())
    }

    fn unfairness_refs(&self, live: Vec<&Partition>) -> Result<f64, AuditError> {
        if live.len() < 2 {
            return Ok(0.0);
        }
        let mut sum = 0.0;
        let mut pairs = 0usize;
        for i in 0..live.len() {
            for j in i + 1..live.len() {
                sum += self
                    .distance
                    .distance(&live[i].histogram, &live[j].histogram)?;
                pairs += 1;
            }
        }
        Ok(sum / pairs as f64)
    }

    /// Average pairwise distance over the union of two partition groups
    /// (used by `unbalanced`'s stopping rule: "what would the average
    /// EMD be if `group` replaced the current partition next to
    /// `siblings`").
    ///
    /// # Errors
    ///
    /// As for [`AuditContext::unfairness`].
    pub fn unfairness_union(
        &self,
        group: &[Partition],
        siblings: &[Partition],
    ) -> Result<f64, AuditError> {
        // Borrow, don't clone: histograms are the heavy part of a
        // partition and this is called once per stopping decision.
        self.unfairness_refs(
            group
                .iter()
                .chain(siblings.iter())
                .filter(|p| !p.is_empty())
                .collect(),
        )
    }

    /// Average distance over **cross pairs only** (`group` × `siblings`)
    /// — the alternative, stricter reading of Algorithm 2's
    /// `averageEMD(current, siblings)`; exposed for the ablation bench.
    ///
    /// # Errors
    ///
    /// As for [`AuditContext::unfairness`].
    pub fn unfairness_cross(
        &self,
        group: &[Partition],
        siblings: &[Partition],
    ) -> Result<f64, AuditError> {
        let ga: Vec<&Partition> = group.iter().filter(|p| !p.is_empty()).collect();
        let gb: Vec<&Partition> = siblings.iter().filter(|p| !p.is_empty()).collect();
        if ga.is_empty() || gb.is_empty() {
            return Ok(0.0);
        }
        let mut sum = 0.0;
        for a in &ga {
            for b in &gb {
                sum += self.distance.distance(&a.histogram, &b.histogram)?;
            }
        }
        Ok(sum / (ga.len() * gb.len()) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairjob_marketplace::toy::toy_workers;

    fn ctx_on_toy<'a>(table: &'a Table, scores: &'a [f64]) -> AuditContext<'a> {
        AuditContext::new(table, scores, AuditConfig::default()).unwrap()
    }

    #[test]
    fn validation_catches_bad_inputs() {
        let (t, scores) = toy_workers();
        // Misaligned scores.
        let err = AuditContext::new(&t, &scores[..5], AuditConfig::default()).unwrap_err();
        assert!(matches!(err, AuditError::ScoreLength { .. }));
        // Out-of-range score.
        let mut bad = scores.clone();
        bad[0] = 1.5;
        let err = AuditContext::new(&t, &bad, AuditConfig::default()).unwrap_err();
        assert!(matches!(err, AuditError::BadScore { row: 0, .. }));
        // NaN score.
        bad[0] = f64::NAN;
        assert!(AuditContext::new(&t, &bad, AuditConfig::default()).is_err());
        // Zero bins.
        let err = AuditContext::new(&t, &scores, AuditConfig::with_bins(0)).unwrap_err();
        assert!(matches!(err, AuditError::Bins(_)));
    }

    #[test]
    fn attribute_selection() {
        let (t, scores) = toy_workers();
        // Default: both protected attributes.
        let ctx = ctx_on_toy(&t, &scores);
        assert_eq!(ctx.attributes().len(), 2);
        // Explicit selection.
        let cfg = AuditConfig {
            attributes: Some(vec!["gender".into()]),
            ..Default::default()
        };
        let ctx = AuditContext::new(&t, &scores, cfg).unwrap();
        assert_eq!(ctx.attributes(), &[0]);
        // Unknown name.
        let cfg = AuditConfig {
            attributes: Some(vec!["nope".into()]),
            ..Default::default()
        };
        assert!(matches!(
            AuditContext::new(&t, &scores, cfg),
            Err(AuditError::BadAttribute { .. })
        ));
        // Observed attribute is not splittable.
        let cfg = AuditConfig {
            attributes: Some(vec!["score".into()]),
            ..Default::default()
        };
        assert!(matches!(
            AuditContext::new(&t, &scores, cfg),
            Err(AuditError::BadAttribute { .. })
        ));
    }

    #[test]
    fn root_covers_everything() {
        let (t, scores) = toy_workers();
        let ctx = ctx_on_toy(&t, &scores);
        let root = ctx.root();
        assert_eq!(root.len(), 10);
        assert_eq!(root.histogram.total(), 10.0);
    }

    #[test]
    fn split_by_gender() {
        let (t, scores) = toy_workers();
        let ctx = ctx_on_toy(&t, &scores);
        let children = ctx.split(&ctx.root(), 0).unwrap();
        assert_eq!(children.len(), 2);
        assert_eq!(children[0].len() + children[1].len(), 10);
        // Splitting a child again by the same attribute is refused.
        assert!(ctx.split(&children[0], 0).is_none());
    }

    #[test]
    fn split_single_valued_partition_is_none() {
        let (t, scores) = toy_workers();
        let ctx = ctx_on_toy(&t, &scores);
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        let females = genders.into_iter().find(|p| p.len() == 4).unwrap();
        // All four females exist across three languages -> splits fine...
        assert!(ctx.split(&females, 1).is_some());
        // ...but a single-language subgroup cannot split by language.
        let by_lang = ctx.split(&females, 1).unwrap();
        for p in by_lang {
            assert!(ctx.split(&p, 1).is_none());
        }
    }

    #[test]
    fn min_partition_size_blocks_small_splits() {
        let (t, scores) = toy_workers();
        let cfg = AuditConfig {
            min_partition_size: 3,
            ..Default::default()
        };
        let ctx = AuditContext::new(&t, &scores, cfg).unwrap();
        // Gender split gives 6 + 4: allowed.
        assert!(ctx.split(&ctx.root(), 0).is_some());
        // Language split gives 3 + 3 + 4: allowed; but splitting males by
        // language gives 2 + 2 + 2: blocked.
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        let males = genders.iter().find(|p| p.len() == 6).unwrap();
        assert!(ctx.split(males, 1).is_none());
    }

    #[test]
    fn unfairness_of_single_partition_is_zero() {
        let (t, scores) = toy_workers();
        let ctx = ctx_on_toy(&t, &scores);
        assert_eq!(ctx.unfairness(&[ctx.root()]).unwrap(), 0.0);
        assert_eq!(ctx.unfairness(&[]).unwrap(), 0.0);
    }

    #[test]
    fn unfairness_matches_hand_computation() {
        let (t, scores) = toy_workers();
        let ctx = ctx_on_toy(&t, &scores);
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        // Males: bins 9,9,5,5,1,1 -> freq 1/3 each at bins 1,5,9.
        // Females: all in bin 0.
        // |CDF diffs| at the nine interior cuts: 1, 2/3, 2/3, 2/3, 2/3,
        // 1/3, 1/3, 1/3, 1/3 -> sum 5, times bin width 0.1 -> EMD 0.5.
        let u = ctx.unfairness(&genders).unwrap();
        assert!((u - 0.5).abs() < 1e-9, "got {u}");
    }

    #[test]
    fn union_and_cross_unfairness() {
        let (t, scores) = toy_workers();
        let ctx = ctx_on_toy(&t, &scores);
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        let (m, f) = (genders[0].clone(), genders[1].clone());
        let union = ctx
            .unfairness_union(std::slice::from_ref(&m), std::slice::from_ref(&f))
            .unwrap();
        let cross = ctx.unfairness_cross(&[m], &[f]).unwrap();
        assert!(
            (union - cross).abs() < 1e-12,
            "two partitions: both views agree"
        );
        assert_eq!(ctx.unfairness_cross(&[], &[ctx.root()]).unwrap(), 0.0);
    }
}
