//! Auditing *exposure* instead of scores (extension).
//!
//! The paper measures unfairness of the scoring function itself; the
//! fairness-of-exposure line it cites (Singh & Joachims, KDD 2018)
//! measures the downstream quantity — how much requester attention each
//! worker actually receives across rankings. Both views fit the same
//! machinery: normalise accumulated exposure into `[0, 1]` pseudo-scores
//! and run the most-unfair-partitioning search on them, or compare group
//! mean exposures directly ([`exposure_disparity`], the demographic-
//! parity-of-exposure ratio).

use crate::error::AuditError;
use fairjob_store::{RowSet, StoreError, Table};

/// Normalise accumulated exposure values into `[0, 1]` pseudo-scores
/// (divide by the maximum) so they can be audited with
/// [`crate::AuditContext`]. An all-zero vector maps to all zeros.
///
/// # Errors
///
/// [`AuditError::BadScore`] on negative or non-finite exposure.
pub fn exposure_scores(exposure: &[f64]) -> Result<Vec<f64>, AuditError> {
    let mut max = 0.0f64;
    for (row, &e) in exposure.iter().enumerate() {
        if !e.is_finite() || e < 0.0 {
            return Err(AuditError::BadScore { row, value: e });
        }
        max = max.max(e);
    }
    if max <= 0.0 {
        return Ok(vec![0.0; exposure.len()]);
    }
    Ok(exposure.iter().map(|e| e / max).collect())
}

/// Group-level exposure disparity for one categorical attribute.
#[derive(Debug, Clone)]
pub struct DisparityReport {
    /// Per group code: `(code, mean exposure, group size)`.
    pub per_group: Vec<(u32, f64, usize)>,
    /// `min(group mean) / max(group mean)` — 1.0 is parity, 0.0 means a
    /// group receives no attention at all. `None` when every group mean
    /// is zero.
    pub parity_ratio: Option<f64>,
}

/// Compute mean exposure per value of categorical attribute `attr` and
/// the min/max parity ratio.
///
/// # Errors
///
/// [`AuditError::ScoreLength`] on misaligned input,
/// [`StoreError::NotCategorical`] (wrapped) for bad attributes.
pub fn exposure_disparity(
    table: &Table,
    exposure: &[f64],
    attr: usize,
) -> Result<DisparityReport, AuditError> {
    if exposure.len() != table.len() {
        return Err(AuditError::ScoreLength {
            rows: table.len(),
            scores: exposure.len(),
        });
    }
    for (row, &e) in exposure.iter().enumerate() {
        if !e.is_finite() || e < 0.0 {
            return Err(AuditError::BadScore { row, value: e });
        }
    }
    let groups = fairjob_store::groupby::group_by(table, &RowSet::all(table.len()), attr)
        .map_err(AuditError::Store)?;
    if groups.is_empty() {
        return Err(AuditError::Store(StoreError::NoSuchAttribute {
            name: table.schema().attribute(attr).name.clone(),
        }));
    }
    let per_group: Vec<(u32, f64, usize)> = groups
        .into_iter()
        .map(|(code, rows)| {
            let total: f64 = rows.iter().map(|r| exposure[r]).sum();
            let n = rows.len();
            (code, total / n as f64, n)
        })
        .collect();
    let means: Vec<f64> = per_group.iter().map(|(_, m, _)| *m).collect();
    let max = means.iter().copied().fold(0.0f64, f64::max);
    let parity_ratio = if max > 0.0 {
        Some(means.iter().copied().fold(f64::INFINITY, f64::min) / max)
    } else {
        None
    };
    Ok(DisparityReport {
        per_group,
        parity_ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
    use crate::{AuditConfig, AuditContext};
    use fairjob_marketplace::platform::Platform;
    use fairjob_marketplace::ranking::ExposureModel;
    use fairjob_marketplace::scoring::RuleBasedScore;
    use fairjob_marketplace::{bucketise_numeric_protected, generate_uniform};

    #[test]
    fn normalisation_and_validation() {
        assert_eq!(
            exposure_scores(&[0.0, 2.0, 4.0]).unwrap(),
            vec![0.0, 0.5, 1.0]
        );
        assert_eq!(exposure_scores(&[0.0, 0.0]).unwrap(), vec![0.0, 0.0]);
        assert!(matches!(
            exposure_scores(&[1.0, -0.1]),
            Err(AuditError::BadScore { row: 1, .. })
        ));
        assert!(exposure_scores(&[f64::NAN]).is_err());
    }

    #[test]
    fn biased_platform_exposure_is_auditable() {
        // f6 gives all top slots to males; audit the *exposure* and the
        // search should localise the disparity on gender.
        let mut workers = generate_uniform(400, 61);
        bucketise_numeric_protected(&mut workers).unwrap();
        let mut platform = Platform::new(workers, ExposureModel::TopK { k: 60 });
        let f6 = RuleBasedScore::f6(8);
        for _ in 0..3 {
            platform.post_task("gig", &f6, 60).unwrap();
        }
        let scores = exposure_scores(platform.exposure()).unwrap();
        let ctx = AuditContext::new(platform.workers(), &scores, AuditConfig::default()).unwrap();
        let audit = Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
        let gender = platform.workers().schema().index_of("gender").unwrap();
        assert!(audit.partitioning.attributes_used().contains(&gender));

        // Disparity ratio: females get zero exposure.
        let report = exposure_disparity(platform.workers(), platform.exposure(), gender).unwrap();
        assert_eq!(report.parity_ratio, Some(0.0));
        let female = report.per_group.iter().find(|(c, _, _)| *c == 1).unwrap();
        assert_eq!(female.1, 0.0);
    }

    #[test]
    fn parity_ratio_of_even_exposure_is_one() {
        let mut workers = generate_uniform(50, 62);
        bucketise_numeric_protected(&mut workers).unwrap();
        let gender = workers.schema().index_of("gender").unwrap();
        let exposure = vec![0.5; workers.len()];
        let report = exposure_disparity(&workers, &exposure, gender).unwrap();
        assert!((report.parity_ratio.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_zero_exposure_has_no_ratio() {
        let mut workers = generate_uniform(20, 63);
        bucketise_numeric_protected(&mut workers).unwrap();
        let gender = workers.schema().index_of("gender").unwrap();
        let report = exposure_disparity(&workers, &[0.0; 20], gender).unwrap();
        assert_eq!(report.parity_ratio, None);
    }

    #[test]
    fn misaligned_exposure_rejected() {
        let mut workers = generate_uniform(20, 64);
        bucketise_numeric_protected(&mut workers).unwrap();
        assert!(matches!(
            exposure_disparity(&workers, &[0.0; 5], 0),
            Err(AuditError::ScoreLength { .. })
        ));
    }
}
