//! Statistical significance of observed unfairness (extension).
//!
//! Random score fluctuations alone produce non-zero average pairwise
//! EMD, especially for small partitions — the paper's own simulation
//! tables show 0.15–0.26 on fully random data. The permutation test
//! here quantifies that: holding the partitioning fixed, it shuffles
//! the scores across workers (breaking any association between group
//! membership and score) and reports how often a shuffled assignment is
//! at least as unfair as the observed one. A small p-value means the
//! observed unfairness is not explained by partition-size noise.

use crate::error::AuditError;
use crate::partition::Partitioning;
use crate::AuditContext;
use fairjob_hist::Histogram;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of [`permutation_test`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PermutationOutcome {
    /// The observed unfairness of the partitioning.
    pub observed: f64,
    /// Mean unfairness across the permuted replicates.
    pub null_mean: f64,
    /// Largest unfairness seen among the replicates.
    pub null_max: f64,
    /// `(1 + #{replicate ≥ observed}) / (1 + replicates)` — the standard
    /// add-one permutation p-value.
    pub p_value: f64,
    /// Number of replicates run.
    pub replicates: usize,
}

/// Permutation test of the unfairness of `partitioning` under `ctx`.
/// Deterministic in `seed`.
///
/// # Errors
///
/// [`AuditError::Distance`] from the underlying distance.
pub fn permutation_test(
    ctx: &AuditContext<'_>,
    partitioning: &Partitioning,
    replicates: usize,
    seed: u64,
) -> Result<PermutationOutcome, AuditError> {
    let observed = ctx.unfairness(partitioning.partitions())?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shuffled: Vec<f64> = ctx
        .scores()
        .ok_or(AuditError::OutOfCore {
            what: "the permutation test's score shuffling",
        })?
        .to_vec();
    let mut at_least = 0usize;
    let mut sum = 0.0;
    let mut max = f64::NEG_INFINITY;
    for _ in 0..replicates {
        shuffled.shuffle(&mut rng);
        // Rebuild each partition's histogram from the shuffled scores.
        let hists: Vec<Histogram> = partitioning
            .partitions()
            .iter()
            .map(|p| {
                let mut h = Histogram::empty(ctx.spec().clone());
                for row in p.rows.iter() {
                    h.add(shuffled[row]);
                }
                h
            })
            .collect();
        let refs: Vec<&Histogram> = hists.iter().collect();
        let value = crate::unfairness::average_pairwise(&refs, ctx.distance())?;
        if value >= observed - 1e-12 {
            at_least += 1;
        }
        sum += value;
        max = max.max(value);
    }
    let replicates_f = replicates as f64;
    Ok(PermutationOutcome {
        observed,
        null_mean: if replicates > 0 {
            sum / replicates_f
        } else {
            0.0
        },
        null_max: if replicates > 0 { max } else { 0.0 },
        p_value: (1.0 + at_least as f64) / (1.0 + replicates_f),
        replicates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
    use crate::AuditConfig;
    use fairjob_marketplace::scoring::{RuleBasedScore, ScoringFunction};
    use fairjob_marketplace::{bucketise_numeric_protected, generate_uniform};

    #[test]
    fn designed_bias_is_significant() {
        let mut workers = generate_uniform(300, 21);
        bucketise_numeric_protected(&mut workers).unwrap();
        let scores = RuleBasedScore::f6(7).score_all(&workers).unwrap();
        let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).unwrap();
        let result = Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
        let outcome = permutation_test(&ctx, &result.partitioning, 99, 3).unwrap();
        assert!(
            outcome.p_value <= 0.05,
            "f6 unfairness should be significant: {outcome:?}"
        );
        assert!(outcome.observed > outcome.null_mean);
    }

    #[test]
    fn random_scores_on_fixed_partitioning_are_not_significant() {
        let mut workers = generate_uniform(300, 22);
        bucketise_numeric_protected(&mut workers).unwrap();
        // Fixed two-way gender partitioning; scores are pure noise.
        let scores: Vec<f64> = {
            use rand::Rng;
            let mut rng = StdRng::seed_from_u64(5);
            (0..workers.len()).map(|_| rng.gen()).collect()
        };
        let cfg = AuditConfig {
            attributes: Some(vec!["gender".into()]),
            ..Default::default()
        };
        let ctx = AuditContext::new(&workers, &scores, cfg).unwrap();
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        let partitioning = Partitioning::new(genders);
        let outcome = permutation_test(&ctx, &partitioning, 99, 4).unwrap();
        assert!(
            outcome.p_value > 0.05,
            "noise should not look significant: {outcome:?}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let mut workers = generate_uniform(100, 23);
        bucketise_numeric_protected(&mut workers).unwrap();
        let scores = RuleBasedScore::f6(7).score_all(&workers).unwrap();
        let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).unwrap();
        let result = Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
        let a = permutation_test(&ctx, &result.partitioning, 20, 9).unwrap();
        let b = permutation_test(&ctx, &result.partitioning, 20, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_replicates_degenerate_but_defined() {
        let mut workers = generate_uniform(50, 24);
        bucketise_numeric_protected(&mut workers).unwrap();
        let scores = RuleBasedScore::f6(7).score_all(&workers).unwrap();
        let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).unwrap();
        let result = Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
        let outcome = permutation_test(&ctx, &result.partitioning, 0, 9).unwrap();
        assert_eq!(outcome.p_value, 1.0);
        assert_eq!(outcome.replicates, 0);
    }
}
