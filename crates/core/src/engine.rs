//! The incremental unfairness evaluation engine.
//!
//! Every search algorithm repeatedly evaluates `unfairness(P, f)` —
//! the average pairwise histogram distance of Definition 2 — over
//! partitionings that differ from one another in only a few positions:
//! sibling candidate splits share every untouched partition, and
//! consecutive greedy rounds share everything except the partitions the
//! committed split replaced. Recomputing the full O(k²) distance matrix
//! per evaluation (the seed behaviour) therefore wastes almost all of
//! its work; on the paper's 7300-worker dataset the full partitioning
//! has ~1800 partitions → ~1.6 M pairs per evaluation.
//!
//! [`EvalEngine`] fixes this at four levels:
//!
//! 1. **Memo cache** — every computed distance is cached under the
//!    ordered pair of the partitions' predicate fingerprints
//!    ([`fairjob_store::Predicate::fingerprint`]). Fingerprints are
//!    structural, so the same subgroup reached through different split
//!    orders hits the same entry. Distances between partitions untouched
//!    by a candidate split are never recomputed — across sibling
//!    candidates *and* across rounds.
//! 2. **Delta evaluation** — [`IncrementalEval`] maintains a
//!    [`PairwiseAverager`] over the current partitioning and scores
//!    "replace partition p by its children" hypotheticals at
//!    O(k · changed) distances instead of O(k²), reverting afterwards at
//!    zero additional distance computations (the revert re-looks-up
//!    distances that were just cached).
//! 3. **Parallel path** — full evaluations over at least
//!    [`EvalEngine::with_parallel_threshold`] live partitions classify
//!    cache hits serially, compute the misses in fixed-size chunks on
//!    the persistent worker pool ([`crate::pool::WorkerPool`] — spawned
//!    once per process, reused across calls and epochs), and take the
//!    final sum serially in pair order so the result is independent of
//!    the thread count. A distance error in a worker propagates as
//!    [`AuditError::Distance`], not a panic.
//! 4. **Bound screen** — [`IncrementalEval::score_replacements_bounded`]
//!    upper-bounds a candidate replacement from warm memo entries plus
//!    the distance's cheap bounds
//!    ([`fairjob_hist::HistogramDistance::bounds`], fed by each
//!    histogram's cached prefix CDF) and abandons it before any exact
//!    solve when the bound plus [`crate::unfairness::PRUNE_MARGIN`]
//!    still falls short of the incumbent — the branch-and-bound step
//!    of the candidate search. Pruned candidates provably cannot win,
//!    so search results stay bit-identical.
//!
//! On top of the distance paths sits the **partition-materialisation
//! fast path**:
//!
//! 5. **Split cache** — [`EvalEngine::split`] materialises candidate
//!    splits through the single-pass kernel
//!    ([`AuditContext::split`]) and memoises the children under the
//!    parent's predicate fingerprint × attribute, sharing them as
//!    [`Arc<Partition>`]s ([`SplitChildren`]). Losing candidates —
//!    recomputed every greedy round by the seed — cost zero row scans
//!    after first touch. Non-viable splits are negatively cached too,
//!    since greedy loops retry them each round.
//! 6. **Parallel candidate search** — [`EvalEngine::split_batch`]
//!    classifies cache hits serially, computes the missing splits in
//!    fixed-size chunks on the persistent worker pool (the kernel is
//!    pure), and inserts results serially in request order, so every
//!    counter and every returned child is identical for every thread
//!    count.
//!
//! The engine counts distances computed, cache hits, and cache bypasses,
//! plus splits computed, split-cache hits, rows scanned, and histograms
//! built ([`EngineStats`]); algorithms surface the counters through
//! [`crate::report::AuditResult::engine`] and the CLI audit report.
//! Every cached or incremental result stays within 1e-9 of the naive
//! [`crate::AuditContext::unfairness`] on identical inputs.

use crate::context::AuditContext;
use crate::error::AuditError;
use crate::partition::Partition;
use crate::pool::WorkerPool;
use crate::scratch::with_scratch;
use crate::unfairness::{DistanceOracle, PairwiseAverager, PAIR_CHUNK, PRUNE_MARGIN, UNKEYED_BIT};
use fairjob_hist::{BinSpec, Histogram, ScratchStats};
use fairjob_store::{Predicate, RowSet};
use std::borrow::Borrow;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// The shared children of one materialised split: the engine hands the
/// same `Arc`s to every algorithm that asks, so a split is materialised
/// (rows walked, histograms built) at most once per engine lifetime.
pub type SplitChildren = Arc<Vec<Arc<Partition>>>;

/// Facts about one row at a point in time, as predicates and histograms
/// see it: the row's categorical codes (indexed by schema attribute id;
/// only splittable attributes are meaningful) and the bin index of its
/// score.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowFacts {
    /// `codes[attr]` = dictionary code of attribute `attr` at this row.
    pub codes: Vec<u32>,
    /// Histogram bin of the row's score.
    pub bin: u32,
}

/// One changed row of an epoch delta. `before == None` means the row
/// was added within the epoch; `after == None` means it was removed.
/// A row touched several times in one epoch must be reported once, with
/// `before` its state at epoch start and `after` at epoch end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowChange {
    /// The row id (stable across the stream view's lifetime).
    pub row: u32,
    /// State at epoch start (`None` for rows added this epoch).
    pub before: Option<RowFacts>,
    /// State at epoch end (`None` for rows removed this epoch).
    pub after: Option<RowFacts>,
}

/// Does `pred` match a row in state `facts`? A missing state (the row
/// does not exist on that side of the epoch) matches nothing.
fn matches_facts(pred: &Predicate, facts: Option<&RowFacts>) -> bool {
    let Some(facts) = facts else { return false };
    pred.constraints()
        .iter()
        .all(|c| facts.codes.get(c.attr).copied() == Some(c.code))
}

/// What [`EngineCaches::invalidate`] did to a warm cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvalidationReport {
    /// Memoised distances dropped (a dirty or unknown endpoint).
    pub distances_evicted: usize,
    /// Memoised distances kept warm.
    pub distances_retained: usize,
    /// Split entries dropped (unknown parent, dirty negative entry, or
    /// an unpatchable inconsistency).
    pub splits_evicted: usize,
    /// Split entries whose children were patched in place to reflect
    /// the epoch's row changes (bit-identical to a recompute).
    pub splits_patched: usize,
    /// Split entries kept untouched (clean parent).
    pub splits_retained: usize,
}

/// Default cap on each cache's entry count.
const DEFAULT_CACHE_CAPACITY: usize = 8_000_000;

/// Fixed chunk size (in split requests) for candidate-split batches
/// dispatched to the worker pool. Independent of the thread count, so
/// the `pool_tasks` counter — and the serial request-order insertion
/// downstream — are identical no matter how many workers run.
const SPLIT_CHUNK: usize = 8;

/// The engine's cache state, detached from any engine lifetime so it
/// can survive across epochs of a streaming audit: the EMD memo, the
/// split cache, and a fingerprint → predicate registry that lets
/// [`EngineCaches::invalidate`] map changed rows to affected entries.
///
/// Both caches are bounded (`capacity` entries each) with generation-
/// based eviction: when a cache fills, entries not touched-by-insert
/// since the previous sweep are dropped in one pass — a deterministic
/// two-generation FIFO, so counters stay thread-count independent.
#[derive(Debug)]
pub struct EngineCaches {
    /// Distance memo: ordered fingerprint pair → (distance, generation).
    memo: HashMap<(u128, u128), (f64, u32)>,
    /// Materialised splits: (parent fingerprint, attribute) →
    /// (children or `None` for non-viable, generation).
    splits: HashMap<(u128, usize), (Option<SplitChildren>, u32)>,
    /// Every fingerprint that may appear in a cache key, with the
    /// predicate it stands for. Fingerprints missing here are evicted
    /// conservatively on invalidation.
    registry: HashMap<u128, Predicate>,
    memo_generation: u32,
    split_generation: u32,
    capacity: usize,
}

/// Drop stale generations from `map` once it reaches `capacity`.
/// Returns the number of entries evicted.
fn sweep<K: std::hash::Hash + Eq, V>(
    map: &mut HashMap<K, (V, u32)>,
    generation: &mut u32,
    capacity: usize,
) -> u64 {
    if map.len() < capacity {
        return 0;
    }
    let current = *generation;
    let before = map.len();
    map.retain(|_, (_, g)| *g == current);
    *generation = generation.wrapping_add(1);
    let mut evicted = (before - map.len()) as u64;
    if map.len() >= capacity {
        // Everything was current-generation: fall back to a full clear.
        evicted += map.len() as u64;
        map.clear();
    }
    evicted
}

impl Default for EngineCaches {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineCaches {
    /// Empty caches with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// Empty caches capped at `capacity` entries per cache (clamped
    /// to ≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        EngineCaches {
            memo: HashMap::new(),
            splits: HashMap::new(),
            registry: HashMap::new(),
            memo_generation: 0,
            split_generation: 0,
            capacity: capacity.max(1),
        }
    }

    /// Number of memoised distances.
    pub fn distances(&self) -> usize {
        self.memo.len()
    }

    /// Number of cached split entries (positive and negative).
    pub fn splits(&self) -> usize {
        self.splits.len()
    }

    fn register(&mut self, fp: u128, pred: &Predicate) {
        if self.registry.len() >= self.capacity {
            // A full registry makes every fingerprint unknown at the
            // next invalidation — conservative, never wrong.
            self.registry.clear();
        }
        self.registry.entry(fp).or_insert_with(|| pred.clone());
    }

    fn get_distance(&self, key: (u128, u128)) -> Option<f64> {
        self.memo.get(&key).map(|&(d, _)| d)
    }

    fn insert_distance(&mut self, key: (u128, u128), d: f64) -> u64 {
        let evicted = sweep(&mut self.memo, &mut self.memo_generation, self.capacity);
        self.memo.insert(key, (d, self.memo_generation));
        evicted
    }

    fn get_split(&self, key: (u128, usize)) -> Option<Option<SplitChildren>> {
        self.splits.get(&key).map(|(e, _)| e.clone())
    }

    fn insert_split(&mut self, key: (u128, usize), entry: Option<SplitChildren>) -> u64 {
        let evicted = sweep(&mut self.splits, &mut self.split_generation, self.capacity);
        self.splits.insert(key, (entry, self.split_generation));
        evicted
    }

    /// Selective invalidation after an epoch of row changes: keep every
    /// entry whose partitions the changes cannot have touched, patch
    /// cached split children whose parent is dirty (bit-identical to a
    /// recompute — integer bin arithmetic on exact f64 counts), and
    /// evict only what cannot be salvaged (distances with a dirty
    /// endpoint, dirty negative split entries, unknown fingerprints).
    ///
    /// `spec` and `min_partition_size` must match the audit context the
    /// cache will be used with next (they decide patched histogram
    /// layout and split viability).
    pub fn invalidate(
        &mut self,
        changes: &[RowChange],
        spec: &BinSpec,
        min_partition_size: usize,
    ) -> InvalidationReport {
        let mut report = InvalidationReport::default();
        if changes.is_empty() {
            report.distances_retained = self.memo.len();
            report.splits_retained = self.splits.len();
            return report;
        }
        // 1. Dirty fingerprints: predicates matching any changed row's
        //    before- or after-state. The always-true predicate (the
        //    root) matches every change.
        let mut dirty: HashSet<u128> = HashSet::new();
        for (&fp, pred) in &self.registry {
            if changes.iter().any(|c| {
                matches_facts(pred, c.before.as_ref()) || matches_facts(pred, c.after.as_ref())
            }) {
                dirty.insert(fp);
            }
        }
        // 2. Distance memo: drop pairs with a dirty or unknown endpoint.
        let registry = &self.registry;
        let before = self.memo.len();
        self.memo.retain(|(a, b), _| {
            registry.contains_key(a)
                && registry.contains_key(b)
                && !dirty.contains(a)
                && !dirty.contains(b)
        });
        report.distances_evicted = before - self.memo.len();
        report.distances_retained = self.memo.len();
        // 3. Split cache: retain clean entries, patch dirty positive
        //    entries, evict the rest.
        let min_partition_size = min_partition_size.max(1);
        let old = std::mem::take(&mut self.splits);
        let mut new_children: Vec<(u128, Predicate)> = Vec::new();
        for ((pfp, attr), (entry, generation)) in old {
            let Some(parent) = self.registry.get(&pfp) else {
                report.splits_evicted += 1;
                continue;
            };
            if !dirty.contains(&pfp) {
                self.splits.insert((pfp, attr), (entry, generation));
                report.splits_retained += 1;
                continue;
            }
            let patched = entry.as_ref().and_then(|kids| {
                patch_children(parent, attr, kids, changes, spec, min_partition_size)
            });
            match patched {
                // Dirty negative entries can't be patched (nothing was
                // materialised), and inconsistent patches fall back to
                // eviction — a later miss recomputes from scratch.
                None => report.splits_evicted += 1,
                Some(patched_entry) => {
                    if let Some(kids) = &patched_entry {
                        for kid in kids.iter() {
                            new_children.push((kid.predicate.fingerprint(), kid.predicate.clone()));
                        }
                    }
                    self.splits.insert((pfp, attr), (patched_entry, generation));
                    report.splits_patched += 1;
                }
            }
        }
        for (fp, pred) in new_children {
            self.registry.entry(fp).or_insert(pred);
        }
        report
    }
}

/// Patch one cached split's children to reflect `changes`: rows leaving
/// the parent are removed from the child of their old code (bin count
/// decremented), rows entering are added to the child of their new code
/// (created if missing), emptied children are dropped, and viability is
/// re-checked under the same rules as [`AuditContext::split`]. All
/// arithmetic is exact (integer-valued f64 counts), so the result is
/// bit-identical to re-running the split kernel on the updated parent.
///
/// Returns `None` when the cached state is inconsistent with the
/// changes (caller evicts), `Some(None)` when the patched split is no
/// longer viable, `Some(Some(kids))` otherwise. Children are fresh
/// `Arc`s — cached values shared with earlier snapshots are never
/// mutated.
fn patch_children(
    parent: &Predicate,
    attr: usize,
    kids: &SplitChildren,
    changes: &[RowChange],
    spec: &BinSpec,
    min_partition_size: usize,
) -> Option<Option<SplitChildren>> {
    let mut by_code: BTreeMap<u32, (RowSet, Vec<f64>)> = BTreeMap::new();
    for kid in kids.iter() {
        let code = kid
            .predicate
            .constraints()
            .iter()
            .find(|c| c.attr == attr)?
            .code;
        by_code.insert(code, (kid.rows.clone(), kid.histogram.counts().to_vec()));
    }
    for change in changes {
        if let Some(state) = &change.before {
            if matches_facts(parent, Some(state)) {
                let code = state.codes.get(attr).copied()?;
                let (rows, counts) = by_code.get_mut(&code)?;
                if !rows.remove(change.row) {
                    return None;
                }
                let bin = state.bin as usize;
                if bin >= counts.len() || counts[bin] < 1.0 {
                    return None;
                }
                counts[bin] -= 1.0;
            }
        }
        if let Some(state) = &change.after {
            if matches_facts(parent, Some(state)) {
                let code = state.codes.get(attr).copied()?;
                let bin = state.bin as usize;
                if bin >= spec.len() {
                    return None;
                }
                let (rows, counts) = by_code
                    .entry(code)
                    .or_insert_with(|| (RowSet::empty(), vec![0.0; spec.len()]));
                if !rows.insert(change.row) {
                    return None;
                }
                counts[bin] += 1.0;
            }
        }
    }
    by_code.retain(|_, (rows, _)| !rows.is_empty());
    if by_code.len() <= 1
        || by_code
            .values()
            .any(|(rows, _)| rows.len() < min_partition_size)
    {
        return Some(None);
    }
    Some(Some(Arc::new(
        by_code
            .into_iter()
            .map(|(code, (rows, counts))| {
                Arc::new(Partition {
                    predicate: parent.and(attr, code),
                    histogram: Histogram::from_counts(spec.clone(), counts),
                    rows,
                })
            })
            .collect(),
    )))
}

/// Counter snapshot of an engine's work (all monotonically increasing
/// over the engine's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Distances actually computed (cache misses + bypasses).
    pub distances_computed: u64,
    /// Distance lookups served from the memo cache.
    pub cache_hits: u64,
    /// Distance computations that bypassed the cache because at least
    /// one histogram carried no partition fingerprint.
    pub cache_bypasses: u64,
    /// Splits materialised through the single-pass kernel (split-cache
    /// misses; includes non-viable attempts, which are negatively
    /// cached).
    pub splits_computed: u64,
    /// Split requests served from the split cache without touching a
    /// single row.
    pub split_cache_hits: u64,
    /// Rows walked by the split kernel (the parent partition's size, per
    /// computed split).
    pub rows_scanned: u64,
    /// Child histograms built by the split kernel.
    pub histograms_built: u64,
    /// Distance-memo entries dropped by generation-based eviction when
    /// the cache hit its capacity.
    pub cache_evictions: u64,
    /// Split-cache entries dropped by generation-based eviction when
    /// the cache hit its capacity.
    pub split_evictions: u64,
    /// Candidate pairs settled by the bound screen alone — exact solves
    /// the branch-and-bound pruning skipped.
    pub bounds_screened: u64,
    /// Distances computed while scoring candidates exactly (the
    /// survivors of the bound screen; a subset of `distances_computed`).
    pub exact_solves: u64,
    /// Chunks dispatched through the persistent worker pool (counted
    /// even when executed inline at one thread, so the counter is
    /// thread-count independent).
    pub pool_tasks: u64,
    /// Exact solves whose ground matrix was served from a cache tier
    /// (scratch-local slot or the process-wide ground cache) instead of
    /// being rebuilt. Zero for closed-form distances, which never build
    /// a ground matrix.
    pub ground_cache_hits: u64,
    /// Exact solves that reused a persistent solver workspace instead
    /// of allocating a fresh solver (solves beyond the first in their
    /// batch chunk).
    pub scratch_reuses: u64,
    /// Exact flow solves warm-started from the previous pair's round-1
    /// Dijkstra (consecutive chunk pairs sharing a support set).
    pub warm_starts: u64,
    /// Per-shard kernel executions dispatched through the sharded
    /// split/classify path (0 with `shards = off`). **Layout-dependent**:
    /// scales with the shard count, so it is excluded from the
    /// layout-independence parity the other counters guarantee; it is
    /// still thread-count independent. Unlike the engine-local counters
    /// above, the shard counters are **context-cumulative**: they live on
    /// the [`crate::AuditContext`] (shard work starts at context build,
    /// before any engine exists) and cover everything sharded on that
    /// context up to the `stats()` call.
    pub shard_tasks: u64,
    /// Rows pushed through the sharded classify/split kernels (0 with
    /// `shards = off`; otherwise independent of both shard count and
    /// thread count, but still layout-dependent in the on/off sense).
    /// Context-cumulative, like [`Self::shard_tasks`].
    pub rows_classified_parallel: u64,
    /// Page requests served from the paged store's buffer cache (0 for
    /// in-memory contexts). Like the shard counters, the page counters
    /// are context-cumulative and **layout-dependent**: they vary with
    /// the `--mem-budget` cache size and page layout, never with the
    /// audit's results.
    pub page_hits: u64,
    /// Page requests that went to disk (context-cumulative).
    pub page_misses: u64,
    /// Cached pages evicted to respect the memory budget
    /// (context-cumulative).
    pub page_evictions: u64,
    /// Pages scans skipped via zone maps or candidate pruning without
    /// reading them (context-cumulative; `pages_skipped +
    /// pages_scanned` over one full-column scan equals that column's
    /// page count).
    pub pages_skipped: u64,
    /// Pages scans actually consumed, cache hit or miss alike
    /// (context-cumulative).
    pub pages_scanned: u64,
}

impl EngineStats {
    /// Total distance lookups the engine answered.
    pub fn lookups(&self) -> u64 {
        self.distances_computed + self.cache_hits
    }

    /// Total split requests the engine answered.
    pub fn split_lookups(&self) -> u64 {
        self.splits_computed + self.split_cache_hits
    }

    /// Accumulate another run's counters into this one — the
    /// aggregation a resident server's `METRICS` endpoint reports
    /// across every audit and epoch it has executed.
    pub fn merge(&mut self, other: &EngineStats) {
        self.distances_computed += other.distances_computed;
        self.cache_hits += other.cache_hits;
        self.cache_bypasses += other.cache_bypasses;
        self.splits_computed += other.splits_computed;
        self.split_cache_hits += other.split_cache_hits;
        self.rows_scanned += other.rows_scanned;
        self.histograms_built += other.histograms_built;
        self.cache_evictions += other.cache_evictions;
        self.split_evictions += other.split_evictions;
        self.bounds_screened += other.bounds_screened;
        self.exact_solves += other.exact_solves;
        self.pool_tasks += other.pool_tasks;
        self.ground_cache_hits += other.ground_cache_hits;
        self.scratch_reuses += other.scratch_reuses;
        self.warm_starts += other.warm_starts;
        self.shard_tasks += other.shard_tasks;
        self.rows_classified_parallel += other.rows_classified_parallel;
        self.page_hits += other.page_hits;
        self.page_misses += other.page_misses;
        self.page_evictions += other.page_evictions;
        self.pages_skipped += other.pages_skipped;
        self.pages_scanned += other.pages_scanned;
    }

    /// The ordered `(name, value)` view of every counter, the single
    /// source of truth for anything that renders stats (reports, serve
    /// responses, `EXPLAIN ANALYZE`). Order is the field order above.
    /// The exhaustive destructuring makes this function — and through
    /// it every renderer — fail to compile when a counter is added to
    /// the struct but not listed here.
    pub fn as_pairs(&self) -> [(&'static str, u64); 22] {
        let EngineStats {
            distances_computed,
            cache_hits,
            cache_bypasses,
            splits_computed,
            split_cache_hits,
            rows_scanned,
            histograms_built,
            cache_evictions,
            split_evictions,
            bounds_screened,
            exact_solves,
            pool_tasks,
            ground_cache_hits,
            scratch_reuses,
            warm_starts,
            shard_tasks,
            rows_classified_parallel,
            page_hits,
            page_misses,
            page_evictions,
            pages_skipped,
            pages_scanned,
        } = *self;
        [
            ("distances_computed", distances_computed),
            ("cache_hits", cache_hits),
            ("cache_bypasses", cache_bypasses),
            ("splits_computed", splits_computed),
            ("split_cache_hits", split_cache_hits),
            ("rows_scanned", rows_scanned),
            ("histograms_built", histograms_built),
            ("cache_evictions", cache_evictions),
            ("split_evictions", split_evictions),
            ("bounds_screened", bounds_screened),
            ("exact_solves", exact_solves),
            ("pool_tasks", pool_tasks),
            ("ground_cache_hits", ground_cache_hits),
            ("scratch_reuses", scratch_reuses),
            ("warm_starts", warm_starts),
            ("shard_tasks", shard_tasks),
            ("rows_classified_parallel", rows_classified_parallel),
            ("page_hits", page_hits),
            ("page_misses", page_misses),
            ("page_evictions", page_evictions),
            ("pages_skipped", pages_skipped),
            ("pages_scanned", pages_scanned),
        ]
    }
}

/// The shared evaluation engine: a fingerprint-keyed distance memo
/// cache over one [`AuditContext`], plus the cached/incremental/parallel
/// evaluation paths built on it. Create one per algorithm run and route
/// every unfairness query through it.
pub struct EvalEngine<'c, 'a> {
    ctx: &'c AuditContext<'a>,
    /// Memo cache, split cache, and fingerprint registry — detachable
    /// state ([`EngineCaches`]) so streaming audits can carry it across
    /// engine lifetimes (seeded via
    /// [`AuditContext::seed_engine_caches`], returned on drop).
    caches: RefCell<EngineCaches>,
    /// True when the caches were adopted from the context; only then
    /// are they handed back on drop (engines built cold stay
    /// independent, preserving per-run counter semantics).
    adopted: bool,
    distances_computed: Cell<u64>,
    cache_hits: Cell<u64>,
    cache_bypasses: Cell<u64>,
    splits_computed: Cell<u64>,
    split_cache_hits: Cell<u64>,
    rows_scanned: Cell<u64>,
    histograms_built: Cell<u64>,
    cache_evictions: Cell<u64>,
    split_evictions: Cell<u64>,
    bounds_screened: Cell<u64>,
    exact_solves: Cell<u64>,
    pool_tasks: Cell<u64>,
    ground_cache_hits: Cell<u64>,
    scratch_reuses: Cell<u64>,
    warm_starts: Cell<u64>,
    parallel_threshold: usize,
    threads: usize,
}

impl Drop for EvalEngine<'_, '_> {
    fn drop(&mut self) {
        if self.adopted {
            self.ctx
                .store_engine_caches(std::mem::take(&mut *self.caches.borrow_mut()));
        }
    }
}

impl<'c, 'a> EvalEngine<'c, 'a> {
    /// An engine over `ctx` with default tuning: parallel evaluation
    /// above 256 live partitions, worker threads from the context's
    /// `threads` knob (default: up to 8, from the machine's available
    /// parallelism), caches capped at 8 M entries each. When the
    /// context carries seeded caches ([`AuditContext::seed_engine_caches`])
    /// they are adopted warm and handed back when the engine drops.
    pub fn new(ctx: &'c AuditContext<'a>) -> Self {
        let threads = ctx
            .threads()
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map_or(1, |n| n.get())
                    .min(8)
            })
            .max(1);
        let (caches, adopted) = match ctx.take_engine_caches() {
            Some(seeded) => (seeded, true),
            None => (EngineCaches::new(), false),
        };
        EvalEngine {
            ctx,
            caches: RefCell::new(caches),
            adopted,
            distances_computed: Cell::new(0),
            cache_hits: Cell::new(0),
            cache_bypasses: Cell::new(0),
            splits_computed: Cell::new(0),
            split_cache_hits: Cell::new(0),
            rows_scanned: Cell::new(0),
            histograms_built: Cell::new(0),
            cache_evictions: Cell::new(0),
            split_evictions: Cell::new(0),
            bounds_screened: Cell::new(0),
            exact_solves: Cell::new(0),
            pool_tasks: Cell::new(0),
            ground_cache_hits: Cell::new(0),
            scratch_reuses: Cell::new(0),
            warm_starts: Cell::new(0),
            parallel_threshold: 256,
            threads,
        }
    }

    /// Cap each cache (distance memo, split cache) at `capacity`
    /// entries; overflow triggers generation-based eviction, counted in
    /// [`EngineStats::cache_evictions`] / [`EngineStats::split_evictions`].
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        self.caches.borrow_mut().capacity = capacity.max(1);
        self
    }

    /// Minimum number of live partitions in a full evaluation before
    /// the parallel path kicks in (set `usize::MAX` to disable it).
    pub fn with_parallel_threshold(mut self, partitions: usize) -> Self {
        self.parallel_threshold = partitions;
        self
    }

    /// Worker-thread count for the parallel path (clamped to ≥ 1). The
    /// result is identical for every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The audited context this engine evaluates against.
    pub fn ctx(&self) -> &'c AuditContext<'a> {
        self.ctx
    }

    /// The cache key of a partition: its predicate's structural
    /// fingerprint (top bit clear, so it never collides with
    /// [`UNKEYED_BIT`]-marked averager keys).
    pub fn key(part: &Partition) -> u128 {
        part.predicate.fingerprint()
    }

    /// Current counter values.
    pub fn stats(&self) -> EngineStats {
        let pages = self.ctx.page_counters();
        EngineStats {
            distances_computed: self.distances_computed.get(),
            cache_hits: self.cache_hits.get(),
            cache_bypasses: self.cache_bypasses.get(),
            splits_computed: self.splits_computed.get(),
            split_cache_hits: self.split_cache_hits.get(),
            rows_scanned: self.rows_scanned.get(),
            histograms_built: self.histograms_built.get(),
            cache_evictions: self.cache_evictions.get(),
            split_evictions: self.split_evictions.get(),
            bounds_screened: self.bounds_screened.get(),
            exact_solves: self.exact_solves.get(),
            pool_tasks: self.pool_tasks.get(),
            ground_cache_hits: self.ground_cache_hits.get(),
            scratch_reuses: self.scratch_reuses.get(),
            warm_starts: self.warm_starts.get(),
            shard_tasks: self.ctx.shard_tasks(),
            rows_classified_parallel: self.ctx.rows_classified_parallel(),
            page_hits: pages.hits,
            page_misses: pages.misses,
            page_evictions: pages.evictions,
            pages_skipped: pages.pages_skipped,
            pages_scanned: pages.pages_scanned,
        }
    }

    fn bump(counter: &Cell<u64>) {
        counter.set(counter.get() + 1);
    }

    fn note_screened(&self, pairs: u64) {
        self.bounds_screened.set(self.bounds_screened.get() + pairs);
    }

    fn note_exact_solves(&self, solves: u64) {
        self.exact_solves.set(self.exact_solves.get() + solves);
    }

    fn note_pool_tasks(&self, chunks: u64) {
        self.pool_tasks.set(self.pool_tasks.get() + chunks);
    }

    fn note_scratch(&self, s: ScratchStats) {
        self.ground_cache_hits
            .set(self.ground_cache_hits.get() + s.ground_cache_hits);
        self.scratch_reuses
            .set(self.scratch_reuses.get() + s.scratch_reuses);
        self.warm_starts.set(self.warm_starts.get() + s.warm_starts);
    }

    /// One serial exact distance on this thread's persistent scratch.
    /// Each call is its own chunk (`begin_chunk`), so the counters it
    /// yields never depend on what previously ran on this thread —
    /// identical for every thread count and call interleaving.
    fn scratch_distance(&self, a: &Histogram, b: &Histogram) -> Result<f64, AuditError> {
        let (d, stats) = with_scratch(|scratch| {
            scratch.begin_chunk();
            let d = self.ctx.distance().distance_with(a, b, scratch);
            (d, scratch.take_stats())
        });
        self.note_scratch(stats);
        Ok(d?)
    }

    /// An upper bound on the distance between two keyed histograms,
    /// without computing it: a warm memo entry answers exactly (second
    /// element `true`), otherwise the distance's bound provider answers
    /// (`false`). `None` means neither is available and the caller must
    /// fall back to exact scoring. Probes never touch the lookup
    /// counters — a bound pass is not a distance lookup.
    fn pair_upper(
        &self,
        key_a: u128,
        a: &Histogram,
        key_b: u128,
        b: &Histogram,
    ) -> Option<(f64, bool)> {
        if (key_a | key_b) & UNKEYED_BIT == 0 {
            let key = if key_a <= key_b {
                (key_a, key_b)
            } else {
                (key_b, key_a)
            };
            if let Some(d) = self.caches.borrow().get_distance(key) {
                return Some((d, true));
            }
        }
        self.ctx.distance().bounds(a, b).map(|bd| (bd.upper, false))
    }

    /// Record a partition's predicate in the cache registry so
    /// selective invalidation can later map changed rows to its cache
    /// entries. Returns the fingerprint.
    fn register(&self, part: &Partition) -> u128 {
        let fp = Self::key(part);
        self.caches.borrow_mut().register(fp, &part.predicate);
        fp
    }

    fn insert_cache(&self, key: (u128, u128), d: f64) {
        let evicted = self.caches.borrow_mut().insert_distance(key, d);
        self.cache_evictions
            .set(self.cache_evictions.get() + evicted);
    }

    /// Memoised distance between two keyed histograms; bypasses the
    /// cache (but still computes) when either key is unkeyed.
    fn cached_distance(
        &self,
        key_a: u128,
        a: &Histogram,
        key_b: u128,
        b: &Histogram,
    ) -> Result<f64, AuditError> {
        if (key_a | key_b) & UNKEYED_BIT != 0 {
            Self::bump(&self.cache_bypasses);
            Self::bump(&self.distances_computed);
            return self.scratch_distance(a, b);
        }
        let key = if key_a <= key_b {
            (key_a, key_b)
        } else {
            (key_b, key_a)
        };
        if let Some(d) = self.caches.borrow().get_distance(key) {
            Self::bump(&self.cache_hits);
            return Ok(d);
        }
        let d = self.scratch_distance(a, b)?;
        Self::bump(&self.distances_computed);
        self.insert_cache(key, d);
        Ok(d)
    }

    /// Memoised distance between two partitions' histograms.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance.
    pub fn pair_distance(&self, a: &Partition, b: &Partition) -> Result<f64, AuditError> {
        let key_a = self.register(a);
        let key_b = self.register(b);
        self.cached_distance(key_a, &a.histogram, key_b, &b.histogram)
    }

    /// Materialise the split of `part` by `attr`, served from the split
    /// cache when this (parent, attribute) pair was split before —
    /// including negatively: a split the context refused is remembered
    /// as `None` and never re-attempted. Cache misses run the
    /// single-pass kernel ([`AuditContext::split`]).
    pub fn split(&self, part: &Partition, attr: usize) -> Option<SplitChildren> {
        self.split_batch(&[(part, attr)])
            .pop()
            .expect("one request, one result")
    }

    /// The deterministic parallel candidate search: answer a batch of
    /// split requests at once. Cache hits are classified serially;
    /// misses run the split kernel in fixed-size chunks on the
    /// persistent worker pool (the kernel is pure — it only reads the
    /// context); results and counters are then recorded serially in
    /// request order. Returned children, counters, and cache state are
    /// identical for every thread count.
    pub fn split_batch(&self, requests: &[(&Partition, usize)]) -> Vec<Option<SplitChildren>> {
        let mut results: Vec<Option<Option<SplitChildren>>> = vec![None; requests.len()];
        let mut misses: Vec<usize> = Vec::new();
        {
            let caches = self.caches.borrow();
            for (at, &(part, attr)) in requests.iter().enumerate() {
                // `constrains` is a cheap predicate check, not a split:
                // answered inline, neither cached nor counted.
                if part.predicate.constrains(attr) {
                    results[at] = Some(None);
                    continue;
                }
                match caches.get_split((Self::key(part), attr)) {
                    Some(cached) => {
                        Self::bump(&self.split_cache_hits);
                        results[at] = Some(cached);
                    }
                    None => misses.push(at),
                }
            }
        }
        if !misses.is_empty() {
            let chunks: Vec<&[usize]> = misses.chunks(SPLIT_CHUNK).collect();
            self.note_pool_tasks(chunks.len() as u64);
            let ctx = self.ctx;
            let computed: Vec<Option<Vec<Partition>>> = WorkerPool::global()
                .run_chunks(self.threads, chunks.len(), |c| {
                    chunks[c]
                        .iter()
                        .map(|&at| {
                            let (part, attr) = requests[at];
                            ctx.split(part, attr)
                        })
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect();
            let mut caches = self.caches.borrow_mut();
            for (&at, children) in misses.iter().zip(computed) {
                let (part, attr) = requests[at];
                Self::bump(&self.splits_computed);
                self.rows_scanned
                    .set(self.rows_scanned.get() + part.rows.len() as u64);
                let entry: Option<SplitChildren> = children.map(|kids| {
                    self.histograms_built
                        .set(self.histograms_built.get() + kids.len() as u64);
                    Arc::new(kids.into_iter().map(Arc::new).collect::<Vec<_>>())
                });
                let fp = Self::key(part);
                caches.register(fp, &part.predicate);
                if let Some(kids) = &entry {
                    for kid in kids.iter() {
                        caches.register(kid.predicate.fingerprint(), &kid.predicate);
                    }
                }
                let evicted = caches.insert_split((fp, attr), entry.clone());
                self.split_evictions
                    .set(self.split_evictions.get() + evicted);
                results[at] = Some(entry);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every request resolved"))
            .collect()
    }

    /// Split every partition of `parts` by `attr` through the cache,
    /// keeping unsplittable partitions whole (shared, not cloned) — the
    /// engine-side counterpart of the algorithms' `split_all` helper.
    pub fn split_all(&self, parts: &[Arc<Partition>], attr: usize) -> Vec<Arc<Partition>> {
        let requests: Vec<(&Partition, usize)> = parts.iter().map(|p| (p.as_ref(), attr)).collect();
        let results = self.split_batch(&requests);
        let mut out = Vec::new();
        for (part, children) in parts.iter().zip(results) {
            match children {
                Some(kids) => out.extend(kids.iter().cloned()),
                None => out.push(Arc::clone(part)),
            }
        }
        out
    }

    /// Cached full evaluation of `unfairness(parts, f)` — identical to
    /// [`AuditContext::unfairness`] (pair order, skip rules, and final
    /// division match exactly; only the distance computations are
    /// memoised). Above the parallel threshold the misses are computed
    /// on worker threads.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance, including
    /// errors raised inside parallel workers.
    pub fn unfairness<P: Borrow<Partition>>(&self, parts: &[P]) -> Result<f64, AuditError> {
        let refs: Vec<&Partition> = parts.iter().map(Borrow::borrow).collect();
        self.unfairness_refs(&refs)
    }

    /// Cached evaluation over the union of two partition groups, without
    /// cloning either (the borrow-based replacement for the audit
    /// context's clone-everything `unfairness_union`).
    ///
    /// # Errors
    ///
    /// As for [`EvalEngine::unfairness`].
    pub fn unfairness_union<P: Borrow<Partition>, Q: Borrow<Partition>>(
        &self,
        group: &[P],
        siblings: &[Q],
    ) -> Result<f64, AuditError> {
        let refs: Vec<&Partition> = group
            .iter()
            .map(Borrow::borrow)
            .chain(siblings.iter().map(Borrow::borrow))
            .collect();
        self.unfairness_refs(&refs)
    }

    /// Cached evaluation over cross pairs only (`group` × `siblings`),
    /// mirroring [`AuditContext::unfairness_cross`].
    ///
    /// # Errors
    ///
    /// As for [`EvalEngine::unfairness`].
    pub fn unfairness_cross<P: Borrow<Partition>, Q: Borrow<Partition>>(
        &self,
        group: &[P],
        siblings: &[Q],
    ) -> Result<f64, AuditError> {
        let ga: Vec<&Partition> = group
            .iter()
            .map(Borrow::borrow)
            .filter(|p| !p.is_empty())
            .collect();
        let gb: Vec<&Partition> = siblings
            .iter()
            .map(Borrow::borrow)
            .filter(|p| !p.is_empty())
            .collect();
        if ga.is_empty() || gb.is_empty() {
            return Ok(0.0);
        }
        let mut sum = 0.0;
        for a in &ga {
            for b in &gb {
                sum += self.pair_distance(a, b)?;
            }
        }
        Ok(sum / (ga.len() * gb.len()) as f64)
    }

    fn unfairness_refs(&self, parts: &[&Partition]) -> Result<f64, AuditError> {
        let live: Vec<&Partition> = parts.iter().copied().filter(|p| !p.is_empty()).collect();
        let n = live.len();
        if n < 2 {
            return Ok(0.0);
        }
        let pairs = n * (n - 1) / 2;
        let keys: Vec<u128> = live.iter().map(|p| self.register(p)).collect();
        // Note: no thread-count condition — at one thread the batched
        // path runs its chunks inline, so counters (`pool_tasks`
        // included) are identical for every thread count.
        if n >= self.parallel_threshold {
            return self.unfairness_parallel(&live, &keys, pairs);
        }
        let mut sum = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                sum +=
                    self.cached_distance(keys[i], &live[i].histogram, keys[j], &live[j].histogram)?;
            }
        }
        Ok(sum / pairs as f64)
    }

    /// The parallel full evaluation: serial hit/miss classification,
    /// miss computation in fixed-size chunks on the persistent worker
    /// pool, then a serial sum in (i, j) pair order so the
    /// floating-point result is thread-count independent.
    fn unfairness_parallel(
        &self,
        live: &[&Partition],
        keys: &[u128],
        pairs: usize,
    ) -> Result<f64, AuditError> {
        let n = live.len();
        let mut vals: Vec<f64> = Vec::with_capacity(pairs);
        // (position in `vals`, i, j) of each pair missing from the cache.
        let mut misses: Vec<(usize, usize, usize)> = Vec::new();
        {
            let caches = self.caches.borrow();
            let mut hits = 0u64;
            for i in 0..n {
                for j in i + 1..n {
                    let key = if keys[i] <= keys[j] {
                        (keys[i], keys[j])
                    } else {
                        (keys[j], keys[i])
                    };
                    match caches.get_distance(key) {
                        Some(d) => {
                            vals.push(d);
                            hits += 1;
                        }
                        None => {
                            misses.push((vals.len(), i, j));
                            vals.push(f64::NAN);
                        }
                    }
                }
            }
            self.cache_hits.set(self.cache_hits.get() + hits);
        }
        if !misses.is_empty() {
            let chunk_count = misses.len().div_ceil(PAIR_CHUNK);
            self.note_pool_tasks(chunk_count as u64);
            let distance = self.ctx.distance();
            // Build the shared ground matrix once, serially, so no chunk
            // races to construct it and `ground_cache_hits` is identical
            // for every thread count.
            distance.prime(&live[misses[0].1].histogram)?;
            let results: Vec<Result<(Vec<f64>, ScratchStats), AuditError>> = WorkerPool::global()
                .run_chunks(self.threads, chunk_count, |c| {
                    let lo = c * PAIR_CHUNK;
                    let hi = (lo + PAIR_CHUNK).min(misses.len());
                    with_scratch(|scratch| {
                        scratch.begin_chunk();
                        let vals: Result<Vec<f64>, AuditError> = misses[lo..hi]
                            .iter()
                            .map(|&(_, i, j)| {
                                distance
                                    .distance_with(&live[i].histogram, &live[j].histogram, scratch)
                                    .map_err(AuditError::from)
                            })
                            .collect();
                        vals.map(|v| (v, scratch.take_stats()))
                    })
                });
            let mut computed: Vec<f64> = Vec::with_capacity(misses.len());
            let mut solver = ScratchStats::default();
            for r in results {
                let (vals, stats) = r?;
                computed.extend(vals);
                solver.merge(stats);
            }
            self.note_scratch(solver);
            self.distances_computed
                .set(self.distances_computed.get() + computed.len() as u64);
            {
                let mut caches = self.caches.borrow_mut();
                let mut evicted = 0u64;
                for (&(at, i, j), &d) in misses.iter().zip(&computed) {
                    vals[at] = d;
                    let key = if keys[i] <= keys[j] {
                        (keys[i], keys[j])
                    } else {
                        (keys[j], keys[i])
                    };
                    evicted += caches.insert_distance(key, d);
                }
                self.cache_evictions
                    .set(self.cache_evictions.get() + evicted);
            }
        }
        let mut sum = 0.0;
        for v in &vals {
            sum += v;
        }
        Ok(sum / pairs as f64)
    }
}

impl DistanceOracle for EvalEngine<'_, '_> {
    fn keyed_distance(
        &self,
        key_a: u128,
        a: &Histogram,
        key_b: u128,
        b: &Histogram,
    ) -> Result<f64, AuditError> {
        self.cached_distance(key_a, a, key_b, b)
    }
}

/// Delta evaluation of candidate splits over one partitioning.
///
/// Seeded once per greedy round with the current partitioning (all pair
/// distances already cached from the previous round, so seeding computes
/// nothing new after round one), it answers "what would the average
/// pairwise distance be if these partitions were replaced by their
/// children?" at O(k · changed) distance lookups, restoring its state
/// afterwards without recomputing a single distance.
pub struct IncrementalEval<'e, 'c, 'a> {
    engine: &'e EvalEngine<'c, 'a>,
    averager: PairwiseAverager<'e>,
    /// Averager slot of each seeded partition, by position in the seed
    /// slice ([`EMPTY_SLOT`] for empty partitions, which are excluded
    /// from the average exactly as in [`AuditContext::unfairness`]).
    slots: Vec<usize>,
}

/// Slot sentinel for seeded partitions that are empty (and therefore not
/// in the averager).
const EMPTY_SLOT: usize = usize::MAX;

/// Outcome of a bounded candidate scoring
/// ([`IncrementalEval::score_replacements_bounded`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CandidateScore {
    /// The candidate was scored exactly — bit for bit the value
    /// [`IncrementalEval::score_replacements`] would have returned.
    Exact(f64),
    /// The candidate was abandoned before any exact solve: its average
    /// provably cannot exceed `upper_bound`, which fell short of the
    /// caller's incumbent by more than
    /// [`crate::unfairness::PRUNE_MARGIN`], so it cannot have won.
    Pruned {
        /// The bound screen's upper bound on the candidate's average.
        upper_bound: f64,
    },
}

impl<'e, 'c, 'a> IncrementalEval<'e, 'c, 'a> {
    /// Seed the evaluator with the current partitioning. Empty
    /// partitions are skipped, matching the naive evaluation's filter.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance.
    pub fn new<P: Borrow<Partition>>(
        engine: &'e EvalEngine<'c, 'a>,
        parts: &[P],
    ) -> Result<Self, AuditError> {
        let mut averager = PairwiseAverager::keyed(engine);
        let mut slots = Vec::with_capacity(parts.len());
        for p in parts {
            let p = p.borrow();
            slots.push(if p.is_empty() {
                EMPTY_SLOT
            } else {
                averager.insert_keyed(engine.register(p), p.histogram.clone())?
            });
        }
        Ok(IncrementalEval {
            engine,
            averager,
            slots,
        })
    }

    /// Average pairwise distance of the seeded partitioning.
    pub fn average(&self) -> f64 {
        self.averager.average()
    }

    /// Score the hypothetical partitioning obtained by replacing each
    /// partition `index` (into the seed slice) with its `children`,
    /// then restore the seeded state. The restore performs no new
    /// distance computations — every distance it needs was computed (and
    /// cached) on the way in.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance.
    pub fn score_replacements<P: Borrow<Partition>>(
        &mut self,
        replacements: &[(usize, &[P])],
    ) -> Result<f64, AuditError> {
        match self.score_replacements_bounded(replacements, None)? {
            CandidateScore::Exact(value) => Ok(value),
            CandidateScore::Pruned { .. } => unreachable!("no incumbent was given"),
        }
    }

    /// [`IncrementalEval::score_replacements`] with branch-and-bound:
    /// given the incumbent best value, the candidate is first screened
    /// with an upper bound assembled from warm memo entries and the
    /// distance's cheap bounds — zero exact solves — and abandoned
    /// ([`CandidateScore::Pruned`]) when the bound plus
    /// [`crate::unfairness::PRUNE_MARGIN`] still falls short of the
    /// incumbent. A pruned candidate provably cannot have replaced the
    /// incumbent (replacement requires a strictly greater value), so
    /// searches built on this method return bit-identical winners and
    /// values. Candidates that survive the screen (or have no bound)
    /// are scored exactly, same as [`IncrementalEval::score_replacements`].
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance.
    pub fn score_replacements_bounded<P: Borrow<Partition>>(
        &mut self,
        replacements: &[(usize, &[P])],
        incumbent: Option<f64>,
    ) -> Result<CandidateScore, AuditError> {
        let mut removed: Vec<(usize, u128, Histogram)> = Vec::with_capacity(replacements.len());
        for &(index, _) in replacements {
            if self.slots[index] == EMPTY_SLOT {
                continue;
            }
            if let Some((key, hist)) = self.averager.remove(self.slots[index])? {
                removed.push((index, key, hist));
            }
        }
        if let Some(best) = incumbent {
            if let Some((upper_bound, screened)) = self.candidate_upper_bound(replacements) {
                if upper_bound + PRUNE_MARGIN < best {
                    self.engine.note_screened(screened);
                    for (index, key, hist) in removed {
                        self.slots[index] = self.averager.insert_keyed(key, hist)?;
                    }
                    return Ok(CandidateScore::Pruned { upper_bound });
                }
            }
        }
        let before = self.engine.stats().distances_computed;
        let mut child_slots: Vec<usize> = Vec::new();
        for &(_, children) in replacements {
            for child in children
                .iter()
                .map(Borrow::borrow)
                .filter(|c| !c.is_empty())
            {
                child_slots.push(
                    self.averager
                        .insert_keyed(self.engine.register(child), child.histogram.clone())?,
                );
            }
        }
        let value = self.averager.average();
        for slot in child_slots {
            self.averager.remove(slot)?;
        }
        for (index, key, hist) in removed {
            self.slots[index] = self.averager.insert_keyed(key, hist)?;
        }
        self.engine
            .note_exact_solves(self.engine.stats().distances_computed - before);
        Ok(CandidateScore::Exact(value))
    }

    /// Upper-bound the candidate average "replace these partitions by
    /// their children" from warm memo entries and cheap distance bounds
    /// alone — zero exact solves. Returns the bound plus the number of
    /// pairs settled by bounds rather than the memo (the exact solves a
    /// prune skips), or `None` when some needed pair has neither (the
    /// screen is inapplicable). Must be called with the replaced
    /// partitions already removed from the averager.
    fn candidate_upper_bound<P: Borrow<Partition>>(
        &self,
        replacements: &[(usize, &[P])],
    ) -> Option<(f64, u64)> {
        let children: Vec<(u128, &Histogram)> = replacements
            .iter()
            .flat_map(|&(_, kids)| kids.iter().map(Borrow::borrow))
            .filter(|c| !c.is_empty())
            .map(|c| (self.engine.register(c), &c.histogram))
            .collect();
        let total = self.averager.len() + children.len();
        if total < 2 {
            return Some((0.0, 0));
        }
        // The untouched pairs' sum is already maintained; only the
        // child × untouched and child × child pairs need bounding.
        let mut sum = self.averager.pair_sum();
        let mut screened = 0u64;
        for &(child_key, child) in &children {
            for (other_key, other) in self.averager.live_entries() {
                let (upper, warm) = self.engine.pair_upper(child_key, child, other_key, other)?;
                sum += upper;
                screened += u64::from(!warm);
            }
        }
        for (i, &(key_a, a)) in children.iter().enumerate() {
            for &(key_b, b) in &children[i + 1..] {
                let (upper, warm) = self.engine.pair_upper(key_a, a, key_b, b)?;
                sum += upper;
                screened += u64::from(!warm);
            }
        }
        let pairs = total * (total - 1) / 2;
        Some((sum / pairs as f64, screened))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use crate::context::AuditConfig;
    use fairjob_hist::distance::{DistanceError, HistogramDistance};
    use fairjob_marketplace::toy::toy_workers;
    use std::sync::Arc;

    fn toy_ctx<'a>(table: &'a fairjob_store::table::Table, scores: &'a [f64]) -> AuditContext<'a> {
        AuditContext::new(table, scores, AuditConfig::default()).unwrap()
    }

    /// Completeness contract for [`EngineStats`]: the full-field struct
    /// literal below fails to compile the moment a counter is added to
    /// the struct, forcing whoever adds it to also register it here —
    /// and the distinct per-field values then verify that `merge` and
    /// `as_pairs` each cover the new field (a counter dropped by `merge`
    /// fails the doubling check; one dropped or mismapped by `as_pairs`
    /// fails the name/value checks, which every renderer inherits).
    #[test]
    fn stats_merge_and_pairs_cover_every_field() {
        let a = EngineStats {
            distances_computed: 1,
            cache_hits: 2,
            cache_bypasses: 3,
            splits_computed: 4,
            split_cache_hits: 5,
            rows_scanned: 6,
            histograms_built: 7,
            cache_evictions: 8,
            split_evictions: 9,
            bounds_screened: 10,
            exact_solves: 11,
            pool_tasks: 12,
            ground_cache_hits: 13,
            scratch_reuses: 14,
            warm_starts: 15,
            shard_tasks: 16,
            rows_classified_parallel: 17,
            page_hits: 18,
            page_misses: 19,
            page_evictions: 20,
            pages_skipped: 21,
            pages_scanned: 22,
        };
        let pairs = a.as_pairs();
        // Every field value is distinct and present exactly once.
        let mut values: Vec<u64> = pairs.iter().map(|&(_, v)| v).collect();
        values.sort_unstable();
        assert_eq!(values, (1..=pairs.len() as u64).collect::<Vec<_>>());
        // Names are unique and non-empty.
        let mut names: Vec<&str> = pairs.iter().map(|&(n, _)| n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), pairs.len());
        assert!(names.iter().all(|n| !n.is_empty()));
        // Merging a stats value into itself doubles every counter.
        let mut merged = a;
        merged.merge(&a);
        for ((name, single), (_, double)) in pairs.iter().zip(merged.as_pairs().iter()) {
            assert_eq!(*double, single * 2, "merge dropped counter {name}");
        }
    }

    #[test]
    fn cached_evaluation_is_bit_identical_to_naive() {
        let (t, scores) = toy_workers();
        let ctx = toy_ctx(&t, &scores);
        let engine = EvalEngine::new(&ctx);
        let parts = ctx.split(&ctx.root(), 1).unwrap(); // 3 language groups
        let naive = ctx.unfairness(&parts).unwrap();
        assert_eq!(engine.unfairness(&parts).unwrap(), naive);
        let first = engine.stats();
        assert_eq!(first.distances_computed, 3);
        assert_eq!(first.cache_hits, 0);
        // Second evaluation of the same partitioning: all hits.
        assert_eq!(engine.unfairness(&parts).unwrap(), naive);
        let second = engine.stats();
        assert_eq!(second.distances_computed, 3);
        assert_eq!(second.cache_hits, 3);
        assert_eq!(second.cache_bypasses, 0);
    }

    #[test]
    fn union_and_cross_match_the_context() {
        let (t, scores) = toy_workers();
        let ctx = toy_ctx(&t, &scores);
        let engine = EvalEngine::new(&ctx);
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        let langs = ctx.split(&genders[0], 1).unwrap();
        let sibs = std::slice::from_ref(&genders[1]);
        assert_eq!(
            engine.unfairness_union(&langs, sibs).unwrap(),
            ctx.unfairness_union(&langs, sibs).unwrap()
        );
        assert_eq!(
            engine.unfairness_cross(&langs, sibs).unwrap(),
            ctx.unfairness_cross(&langs, sibs).unwrap()
        );
    }

    #[test]
    fn parallel_path_matches_serial_for_any_thread_count() {
        let (t, scores) = toy_workers();
        let ctx = toy_ctx(&t, &scores);
        let parts = crate::algorithms::all_attributes::AllAttributes
            .run(&ctx)
            .unwrap()
            .partitioning;
        let serial = EvalEngine::new(&ctx).with_parallel_threshold(usize::MAX);
        let expected = serial.unfairness(parts.partitions()).unwrap();
        assert_eq!(expected, ctx.unfairness(parts.partitions()).unwrap());
        for threads in [1, 2, 3, 7] {
            let parallel = EvalEngine::new(&ctx)
                .with_parallel_threshold(2)
                .with_threads(threads);
            // First pass: all misses go through workers. Bit-identical
            // because the final sum runs serially in pair order.
            assert_eq!(
                parallel.unfairness(parts.partitions()).unwrap(),
                expected,
                "{threads}"
            );
            // Second pass: all hits.
            assert_eq!(
                parallel.unfairness(parts.partitions()).unwrap(),
                expected,
                "{threads}"
            );
            let stats = parallel.stats();
            assert_eq!(stats.cache_hits, stats.distances_computed);
        }
    }

    /// A distance that always fails, for exercising worker error paths.
    struct AlwaysFails;

    impl HistogramDistance for AlwaysFails {
        fn distance(&self, _: &Histogram, _: &Histogram) -> Result<f64, DistanceError> {
            Err(DistanceError::EmptyHistogram)
        }
        fn name(&self) -> &'static str {
            "always-fails"
        }
    }

    #[test]
    fn distance_error_in_a_parallel_worker_propagates_as_audit_error() {
        let (t, scores) = toy_workers();
        let cfg = AuditConfig::with_distance(Arc::new(AlwaysFails));
        let ctx = AuditContext::new(&t, &scores, cfg).unwrap();
        let parts = ctx.split(&ctx.root(), 1).unwrap();
        let engine = EvalEngine::new(&ctx)
            .with_parallel_threshold(2)
            .with_threads(4);
        // Must come back as Err, not a worker panic.
        let err = engine.unfairness(&parts).unwrap_err();
        assert!(
            matches!(err, AuditError::Distance(DistanceError::EmptyHistogram)),
            "{err:?}"
        );
    }

    #[test]
    fn incremental_matches_naive_and_reverts_for_free() {
        let (t, scores) = toy_workers();
        let ctx = toy_ctx(&t, &scores);
        let engine = EvalEngine::new(&ctx);
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        let male_langs = ctx.split(&genders[0], 1).unwrap();
        let mut inc = IncrementalEval::new(&engine, &genders).unwrap();
        assert!((inc.average() - ctx.unfairness(&genders).unwrap()).abs() < 1e-12);

        // Score "replace Male by its language split" and compare with the
        // naive evaluation of the materialised partitioning.
        let mut replaced = male_langs.clone();
        replaced.push(genders[1].clone());
        let naive = ctx.unfairness(&replaced).unwrap();
        let score = inc.score_replacements(&[(0, &male_langs)]).unwrap();
        assert!((score - naive).abs() < 1e-9, "{score} vs {naive}");
        // The evaluator reverted to the seeded state…
        assert!((inc.average() - ctx.unfairness(&genders).unwrap()).abs() < 1e-12);
        // …and re-scoring the same replacement computes nothing new.
        let computed_before = engine.stats().distances_computed;
        let again = inc.score_replacements(&[(0, &male_langs)]).unwrap();
        assert_eq!(again, score);
        assert_eq!(engine.stats().distances_computed, computed_before);
    }

    #[test]
    fn bounded_scoring_prunes_hopeless_candidates_and_matches_exact() {
        let (t, scores) = toy_workers();
        let ctx = toy_ctx(&t, &scores);
        let engine = EvalEngine::new(&ctx);
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        let male_langs = ctx.split(&genders[0], 1).unwrap();
        let mut inc = IncrementalEval::new(&engine, &genders).unwrap();
        let exact = inc.score_replacements(&[(0, &male_langs)]).unwrap();
        // Beatable incumbent: the screen cannot prune, and the bounded
        // path returns the exact value, bit for bit.
        match inc
            .score_replacements_bounded(&[(0, &male_langs)], Some(0.0))
            .unwrap()
        {
            CandidateScore::Exact(v) => assert_eq!(v.to_bits(), exact.to_bits()),
            CandidateScore::Pruned { .. } => panic!("candidate beats a zero incumbent"),
        }
        // Unbeatable incumbent: pruned without a single new distance,
        // with the skipped pairs counted and the seeded state restored.
        let stats = engine.stats();
        match inc
            .score_replacements_bounded(&[(0, &male_langs)], Some(1e6))
            .unwrap()
        {
            CandidateScore::Pruned { upper_bound } => {
                assert!(upper_bound >= exact - 1e-9, "{upper_bound} < {exact}");
            }
            CandidateScore::Exact(_) => panic!("nothing beats an incumbent of 1e6"),
        }
        assert_eq!(engine.stats().distances_computed, stats.distances_computed);
        assert!(engine.stats().bounds_screened >= stats.bounds_screened);
        assert!((inc.average() - ctx.unfairness(&genders).unwrap()).abs() < 1e-12);
        // Scoring exactly again still matches the first run.
        let again = inc.score_replacements(&[(0, &male_langs)]).unwrap();
        assert_eq!(again.to_bits(), exact.to_bits());
    }

    #[test]
    fn split_cache_serves_repeat_requests_without_row_scans() {
        let (t, scores) = toy_workers();
        let ctx = toy_ctx(&t, &scores);
        let engine = EvalEngine::new(&ctx);
        let root = ctx.root();
        let first = engine.split(&root, 0).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.splits_computed, 1);
        assert_eq!(stats.split_cache_hits, 0);
        assert_eq!(stats.rows_scanned, root.len() as u64);
        assert_eq!(stats.histograms_built, first.len() as u64);
        // Same request again: served from the cache, same Arcs, no scan.
        let second = engine.split(&root, 0).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = engine.stats();
        assert_eq!(stats.splits_computed, 1);
        assert_eq!(stats.split_cache_hits, 1);
        assert_eq!(stats.rows_scanned, root.len() as u64);
        // The children match the context's direct split.
        let direct = ctx.split(&root, 0).unwrap();
        assert_eq!(first.len(), direct.len());
        for (cached, fresh) in first.iter().zip(&direct) {
            assert_eq!(cached.as_ref(), fresh);
        }
    }

    #[test]
    fn non_viable_splits_are_negatively_cached() {
        let (t, scores) = toy_workers();
        let cfg = AuditConfig {
            min_partition_size: 3,
            ..Default::default()
        };
        let ctx = AuditContext::new(&t, &scores, cfg).unwrap();
        let engine = EvalEngine::new(&ctx);
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        // Males split by language as 2+2+2: below the floor, non-viable.
        let males = genders.iter().find(|p| p.len() == 6).unwrap();
        assert!(engine.split(males, 1).is_none());
        assert_eq!(engine.stats().splits_computed, 1);
        // Retried (as every greedy round does): answered from the cache.
        assert!(engine.split(males, 1).is_none());
        let stats = engine.stats();
        assert_eq!(stats.splits_computed, 1);
        assert_eq!(stats.split_cache_hits, 1);
        // An attribute already constrained by the predicate is answered
        // inline without touching the cache or the counters.
        assert!(engine.split(males, 0).is_none());
        assert_eq!(engine.stats().split_lookups(), stats.split_lookups());
    }

    #[test]
    fn split_batch_is_thread_count_independent() {
        // Each thread count gets its own context: the shard counters are
        // context-cumulative, so sharing one context across engines would
        // conflate the runs being compared.
        let (t, scores) = toy_workers();
        let ref_ctx = toy_ctx(&t, &scores);
        let ref_root = ref_ctx.root();
        let reference = EvalEngine::new(&ref_ctx).with_threads(1);
        let requests: Vec<(&Partition, usize)> =
            vec![(&ref_root, 0), (&ref_root, 1), (&ref_root, 0)];
        let expected = reference.split_batch(&requests);
        let expected_stats = reference.stats();
        for threads in [2, 3, 8] {
            let ctx = toy_ctx(&t, &scores);
            let root = ctx.root();
            let requests: Vec<(&Partition, usize)> = vec![(&root, 0), (&root, 1), (&root, 0)];
            let engine = EvalEngine::new(&ctx).with_threads(threads);
            let got = engine.split_batch(&requests);
            assert_eq!(engine.stats(), expected_stats, "{threads} threads");
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                match (g, e) {
                    (Some(g), Some(e)) => {
                        assert_eq!(g.len(), e.len());
                        for (a, b) in g.iter().zip(e.iter()) {
                            assert_eq!(a.as_ref(), b.as_ref());
                        }
                    }
                    (None, None) => {}
                    _ => panic!("viability differs at {threads} threads"),
                }
            }
        }
    }

    #[test]
    fn split_all_keeps_unsplittable_partitions_whole() {
        let (t, scores) = toy_workers();
        let ctx = toy_ctx(&t, &scores);
        let engine = EvalEngine::new(&ctx);
        let genders: Vec<Arc<Partition>> = engine
            .split(&ctx.root(), 0)
            .unwrap()
            .iter()
            .cloned()
            .collect();
        let by_lang = engine.split_all(&genders, 1);
        // Both genders split into 3 languages each on the toy data.
        assert_eq!(by_lang.len(), 6);
        // Splitting again by the same attribute is a no-op: every child
        // is constrained, so the same Arcs come straight back.
        let again = engine.split_all(&by_lang, 1);
        assert_eq!(again.len(), by_lang.len());
        for (a, b) in again.iter().zip(&by_lang) {
            assert!(Arc::ptr_eq(a, b));
        }
    }

    #[test]
    fn unkeyed_histograms_bypass_the_cache() {
        let (t, scores) = toy_workers();
        let ctx = toy_ctx(&t, &scores);
        let engine = EvalEngine::new(&ctx);
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        let mut averager = PairwiseAverager::keyed(&engine);
        // Plain inserts carry no fingerprint, so the engine computes
        // without consulting or filling the cache.
        averager.insert(genders[0].histogram.clone()).unwrap();
        averager.insert(genders[1].histogram.clone()).unwrap();
        averager.insert(genders[1].histogram.clone()).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.cache_bypasses, 3);
        assert_eq!(stats.distances_computed, 3);
        assert_eq!(stats.cache_hits, 0);
    }
}
