//! The incremental unfairness evaluation engine.
//!
//! Every search algorithm repeatedly evaluates `unfairness(P, f)` —
//! the average pairwise histogram distance of Definition 2 — over
//! partitionings that differ from one another in only a few positions:
//! sibling candidate splits share every untouched partition, and
//! consecutive greedy rounds share everything except the partitions the
//! committed split replaced. Recomputing the full O(k²) distance matrix
//! per evaluation (the seed behaviour) therefore wastes almost all of
//! its work; on the paper's 7300-worker dataset the full partitioning
//! has ~1800 partitions → ~1.6 M pairs per evaluation.
//!
//! [`EvalEngine`] fixes this at three levels:
//!
//! 1. **Memo cache** — every computed distance is cached under the
//!    ordered pair of the partitions' predicate fingerprints
//!    ([`fairjob_store::Predicate::fingerprint`]). Fingerprints are
//!    structural, so the same subgroup reached through different split
//!    orders hits the same entry. Distances between partitions untouched
//!    by a candidate split are never recomputed — across sibling
//!    candidates *and* across rounds.
//! 2. **Delta evaluation** — [`IncrementalEval`] maintains a
//!    [`PairwiseAverager`] over the current partitioning and scores
//!    "replace partition p by its children" hypotheticals at
//!    O(k · changed) distances instead of O(k²), reverting afterwards at
//!    zero additional distance computations (the revert re-looks-up
//!    distances that were just cached).
//! 3. **Parallel path** — full evaluations over at least
//!    [`EvalEngine::with_parallel_threshold`] live partitions classify
//!    cache hits serially, compute the misses on scoped worker threads
//!    (the pattern of
//!    [`crate::unfairness::average_pairwise_parallel`]), and take the
//!    final sum serially in pair order so the result is independent of
//!    the thread count. A distance error in a worker propagates as
//!    [`AuditError::Distance`], not a panic.
//!
//! On top of the distance paths sits the **partition-materialisation
//! fast path**:
//!
//! 4. **Split cache** — [`EvalEngine::split`] materialises candidate
//!    splits through the single-pass kernel
//!    ([`AuditContext::split`]) and memoises the children under the
//!    parent's predicate fingerprint × attribute, sharing them as
//!    [`Arc<Partition>`]s ([`SplitChildren`]). Losing candidates —
//!    recomputed every greedy round by the seed — cost zero row scans
//!    after first touch. Non-viable splits are negatively cached too,
//!    since greedy loops retry them each round.
//! 5. **Parallel candidate search** — [`EvalEngine::split_batch`]
//!    classifies cache hits serially, computes the missing splits on
//!    scoped worker threads (the kernel is pure), and inserts results
//!    serially in request order, so every counter and every returned
//!    child is identical for every thread count.
//!
//! The engine counts distances computed, cache hits, and cache bypasses,
//! plus splits computed, split-cache hits, rows scanned, and histograms
//! built ([`EngineStats`]); algorithms surface the counters through
//! [`crate::report::AuditResult::engine`] and the CLI audit report.
//! Every cached or incremental result stays within 1e-9 of the naive
//! [`crate::AuditContext::unfairness`] on identical inputs.

use crate::context::AuditContext;
use crate::error::AuditError;
use crate::partition::Partition;
use crate::unfairness::{DistanceOracle, PairwiseAverager, UNKEYED_BIT};
use fairjob_hist::Histogram;
use std::borrow::Borrow;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

/// The shared children of one materialised split: the engine hands the
/// same `Arc`s to every algorithm that asks, so a split is materialised
/// (rows walked, histograms built) at most once per engine lifetime.
pub type SplitChildren = Arc<Vec<Arc<Partition>>>;

/// Counter snapshot of an engine's work (all monotonically increasing
/// over the engine's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Distances actually computed (cache misses + bypasses).
    pub distances_computed: u64,
    /// Distance lookups served from the memo cache.
    pub cache_hits: u64,
    /// Distance computations that bypassed the cache because at least
    /// one histogram carried no partition fingerprint.
    pub cache_bypasses: u64,
    /// Splits materialised through the single-pass kernel (split-cache
    /// misses; includes non-viable attempts, which are negatively
    /// cached).
    pub splits_computed: u64,
    /// Split requests served from the split cache without touching a
    /// single row.
    pub split_cache_hits: u64,
    /// Rows walked by the split kernel (the parent partition's size, per
    /// computed split).
    pub rows_scanned: u64,
    /// Child histograms built by the split kernel.
    pub histograms_built: u64,
}

impl EngineStats {
    /// Total distance lookups the engine answered.
    pub fn lookups(&self) -> u64 {
        self.distances_computed + self.cache_hits
    }

    /// Total split requests the engine answered.
    pub fn split_lookups(&self) -> u64 {
        self.splits_computed + self.split_cache_hits
    }
}

/// The shared evaluation engine: a fingerprint-keyed distance memo
/// cache over one [`AuditContext`], plus the cached/incremental/parallel
/// evaluation paths built on it. Create one per algorithm run and route
/// every unfairness query through it.
pub struct EvalEngine<'c, 'a> {
    ctx: &'c AuditContext<'a>,
    cache: RefCell<HashMap<(u128, u128), f64>>,
    /// Materialised splits keyed by parent fingerprint × attribute.
    /// `None` = the split was attempted and is not viable (negative
    /// cache — greedy loops retry losing attributes every round).
    split_cache: RefCell<HashMap<(u128, usize), Option<SplitChildren>>>,
    distances_computed: Cell<u64>,
    cache_hits: Cell<u64>,
    cache_bypasses: Cell<u64>,
    splits_computed: Cell<u64>,
    split_cache_hits: Cell<u64>,
    rows_scanned: Cell<u64>,
    histograms_built: Cell<u64>,
    parallel_threshold: usize,
    threads: usize,
    max_entries: usize,
}

impl<'c, 'a> EvalEngine<'c, 'a> {
    /// An engine over `ctx` with default tuning: parallel evaluation
    /// above 256 live partitions, worker threads from the context's
    /// `threads` knob (default: up to 8, from the machine's available
    /// parallelism), cache capped at 8 M entries.
    pub fn new(ctx: &'c AuditContext<'a>) -> Self {
        let threads = ctx
            .threads()
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map_or(1, |n| n.get())
                    .min(8)
            })
            .max(1);
        EvalEngine {
            ctx,
            cache: RefCell::new(HashMap::new()),
            split_cache: RefCell::new(HashMap::new()),
            distances_computed: Cell::new(0),
            cache_hits: Cell::new(0),
            cache_bypasses: Cell::new(0),
            splits_computed: Cell::new(0),
            split_cache_hits: Cell::new(0),
            rows_scanned: Cell::new(0),
            histograms_built: Cell::new(0),
            parallel_threshold: 256,
            threads,
            max_entries: 8_000_000,
        }
    }

    /// Minimum number of live partitions in a full evaluation before
    /// the parallel path kicks in (set `usize::MAX` to disable it).
    pub fn with_parallel_threshold(mut self, partitions: usize) -> Self {
        self.parallel_threshold = partitions;
        self
    }

    /// Worker-thread count for the parallel path (clamped to ≥ 1). The
    /// result is identical for every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The audited context this engine evaluates against.
    pub fn ctx(&self) -> &'c AuditContext<'a> {
        self.ctx
    }

    /// The cache key of a partition: its predicate's structural
    /// fingerprint (top bit clear, so it never collides with
    /// [`UNKEYED_BIT`]-marked averager keys).
    pub fn key(part: &Partition) -> u128 {
        part.predicate.fingerprint()
    }

    /// Current counter values.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            distances_computed: self.distances_computed.get(),
            cache_hits: self.cache_hits.get(),
            cache_bypasses: self.cache_bypasses.get(),
            splits_computed: self.splits_computed.get(),
            split_cache_hits: self.split_cache_hits.get(),
            rows_scanned: self.rows_scanned.get(),
            histograms_built: self.histograms_built.get(),
        }
    }

    fn bump(counter: &Cell<u64>) {
        counter.set(counter.get() + 1);
    }

    fn insert_cache(&self, key: (u128, u128), d: f64) {
        let mut cache = self.cache.borrow_mut();
        if cache.len() >= self.max_entries {
            cache.clear();
        }
        cache.insert(key, d);
    }

    /// Memoised distance between two keyed histograms; bypasses the
    /// cache (but still computes) when either key is unkeyed.
    fn cached_distance(
        &self,
        key_a: u128,
        a: &Histogram,
        key_b: u128,
        b: &Histogram,
    ) -> Result<f64, AuditError> {
        if (key_a | key_b) & UNKEYED_BIT != 0 {
            Self::bump(&self.cache_bypasses);
            Self::bump(&self.distances_computed);
            return Ok(self.ctx.distance().distance(a, b)?);
        }
        let key = if key_a <= key_b {
            (key_a, key_b)
        } else {
            (key_b, key_a)
        };
        if let Some(&d) = self.cache.borrow().get(&key) {
            Self::bump(&self.cache_hits);
            return Ok(d);
        }
        let d = self.ctx.distance().distance(a, b)?;
        Self::bump(&self.distances_computed);
        self.insert_cache(key, d);
        Ok(d)
    }

    /// Memoised distance between two partitions' histograms.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance.
    pub fn pair_distance(&self, a: &Partition, b: &Partition) -> Result<f64, AuditError> {
        self.cached_distance(Self::key(a), &a.histogram, Self::key(b), &b.histogram)
    }

    /// Materialise the split of `part` by `attr`, served from the split
    /// cache when this (parent, attribute) pair was split before —
    /// including negatively: a split the context refused is remembered
    /// as `None` and never re-attempted. Cache misses run the
    /// single-pass kernel ([`AuditContext::split`]).
    pub fn split(&self, part: &Partition, attr: usize) -> Option<SplitChildren> {
        self.split_batch(&[(part, attr)])
            .pop()
            .expect("one request, one result")
    }

    /// The deterministic parallel candidate search: answer a batch of
    /// split requests at once. Cache hits are classified serially;
    /// misses run the split kernel on scoped worker threads (the kernel
    /// is pure — it only reads the context); results and counters are
    /// then recorded serially in request order. Returned children,
    /// counters, and cache state are identical for every thread count.
    pub fn split_batch(&self, requests: &[(&Partition, usize)]) -> Vec<Option<SplitChildren>> {
        let mut results: Vec<Option<Option<SplitChildren>>> = vec![None; requests.len()];
        let mut misses: Vec<usize> = Vec::new();
        {
            let cache = self.split_cache.borrow();
            for (at, &(part, attr)) in requests.iter().enumerate() {
                // `constrains` is a cheap predicate check, not a split:
                // answered inline, neither cached nor counted.
                if part.predicate.constrains(attr) {
                    results[at] = Some(None);
                    continue;
                }
                match cache.get(&(Self::key(part), attr)) {
                    Some(cached) => {
                        Self::bump(&self.split_cache_hits);
                        results[at] = Some(cached.clone());
                    }
                    None => misses.push(at),
                }
            }
        }
        if !misses.is_empty() {
            let computed: Vec<Option<Vec<Partition>>> = if misses.len() > 1 && self.threads > 1 {
                let threads = self.threads.min(misses.len());
                let chunk_len = misses.len().div_ceil(threads);
                let ctx = self.ctx;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = misses
                        .chunks(chunk_len)
                        .map(|chunk| {
                            scope.spawn(move || {
                                chunk
                                    .iter()
                                    .map(|&at| {
                                        let (part, attr) = requests[at];
                                        ctx.split(part, attr)
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("split worker panicked"))
                        .collect()
                })
            } else {
                misses
                    .iter()
                    .map(|&at| {
                        let (part, attr) = requests[at];
                        self.ctx.split(part, attr)
                    })
                    .collect()
            };
            let mut cache = self.split_cache.borrow_mut();
            if cache.len() + misses.len() > self.max_entries {
                cache.clear();
            }
            for (&at, children) in misses.iter().zip(computed) {
                let (part, attr) = requests[at];
                Self::bump(&self.splits_computed);
                self.rows_scanned
                    .set(self.rows_scanned.get() + part.rows.len() as u64);
                let entry: Option<SplitChildren> = children.map(|kids| {
                    self.histograms_built
                        .set(self.histograms_built.get() + kids.len() as u64);
                    Arc::new(kids.into_iter().map(Arc::new).collect::<Vec<_>>())
                });
                cache.insert((Self::key(part), attr), entry.clone());
                results[at] = Some(entry);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every request resolved"))
            .collect()
    }

    /// Split every partition of `parts` by `attr` through the cache,
    /// keeping unsplittable partitions whole (shared, not cloned) — the
    /// engine-side counterpart of the algorithms' `split_all` helper.
    pub fn split_all(&self, parts: &[Arc<Partition>], attr: usize) -> Vec<Arc<Partition>> {
        let requests: Vec<(&Partition, usize)> = parts.iter().map(|p| (p.as_ref(), attr)).collect();
        let results = self.split_batch(&requests);
        let mut out = Vec::new();
        for (part, children) in parts.iter().zip(results) {
            match children {
                Some(kids) => out.extend(kids.iter().cloned()),
                None => out.push(Arc::clone(part)),
            }
        }
        out
    }

    /// Cached full evaluation of `unfairness(parts, f)` — identical to
    /// [`AuditContext::unfairness`] (pair order, skip rules, and final
    /// division match exactly; only the distance computations are
    /// memoised). Above the parallel threshold the misses are computed
    /// on worker threads.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance, including
    /// errors raised inside parallel workers.
    pub fn unfairness<P: Borrow<Partition>>(&self, parts: &[P]) -> Result<f64, AuditError> {
        let refs: Vec<&Partition> = parts.iter().map(Borrow::borrow).collect();
        self.unfairness_refs(&refs)
    }

    /// Cached evaluation over the union of two partition groups, without
    /// cloning either (the borrow-based replacement for the audit
    /// context's clone-everything `unfairness_union`).
    ///
    /// # Errors
    ///
    /// As for [`EvalEngine::unfairness`].
    pub fn unfairness_union<P: Borrow<Partition>, Q: Borrow<Partition>>(
        &self,
        group: &[P],
        siblings: &[Q],
    ) -> Result<f64, AuditError> {
        let refs: Vec<&Partition> = group
            .iter()
            .map(Borrow::borrow)
            .chain(siblings.iter().map(Borrow::borrow))
            .collect();
        self.unfairness_refs(&refs)
    }

    /// Cached evaluation over cross pairs only (`group` × `siblings`),
    /// mirroring [`AuditContext::unfairness_cross`].
    ///
    /// # Errors
    ///
    /// As for [`EvalEngine::unfairness`].
    pub fn unfairness_cross<P: Borrow<Partition>, Q: Borrow<Partition>>(
        &self,
        group: &[P],
        siblings: &[Q],
    ) -> Result<f64, AuditError> {
        let ga: Vec<&Partition> = group
            .iter()
            .map(Borrow::borrow)
            .filter(|p| !p.is_empty())
            .collect();
        let gb: Vec<&Partition> = siblings
            .iter()
            .map(Borrow::borrow)
            .filter(|p| !p.is_empty())
            .collect();
        if ga.is_empty() || gb.is_empty() {
            return Ok(0.0);
        }
        let mut sum = 0.0;
        for a in &ga {
            for b in &gb {
                sum += self.pair_distance(a, b)?;
            }
        }
        Ok(sum / (ga.len() * gb.len()) as f64)
    }

    fn unfairness_refs(&self, parts: &[&Partition]) -> Result<f64, AuditError> {
        let live: Vec<&Partition> = parts.iter().copied().filter(|p| !p.is_empty()).collect();
        let n = live.len();
        if n < 2 {
            return Ok(0.0);
        }
        let pairs = n * (n - 1) / 2;
        let keys: Vec<u128> = live.iter().map(|p| Self::key(p)).collect();
        if n >= self.parallel_threshold && self.threads > 1 {
            return self.unfairness_parallel(&live, &keys, pairs);
        }
        let mut sum = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                sum +=
                    self.cached_distance(keys[i], &live[i].histogram, keys[j], &live[j].histogram)?;
            }
        }
        Ok(sum / pairs as f64)
    }

    /// The parallel full evaluation: serial hit/miss classification,
    /// scoped-thread miss computation, then a serial sum in (i, j) pair
    /// order so the floating-point result is thread-count independent.
    fn unfairness_parallel(
        &self,
        live: &[&Partition],
        keys: &[u128],
        pairs: usize,
    ) -> Result<f64, AuditError> {
        let n = live.len();
        let mut vals: Vec<f64> = Vec::with_capacity(pairs);
        // (position in `vals`, i, j) of each pair missing from the cache.
        let mut misses: Vec<(usize, usize, usize)> = Vec::new();
        {
            let cache = self.cache.borrow();
            let mut hits = 0u64;
            for i in 0..n {
                for j in i + 1..n {
                    let key = if keys[i] <= keys[j] {
                        (keys[i], keys[j])
                    } else {
                        (keys[j], keys[i])
                    };
                    match cache.get(&key) {
                        Some(&d) => {
                            vals.push(d);
                            hits += 1;
                        }
                        None => {
                            misses.push((vals.len(), i, j));
                            vals.push(f64::NAN);
                        }
                    }
                }
            }
            self.cache_hits.set(self.cache_hits.get() + hits);
        }
        if !misses.is_empty() {
            let threads = self.threads.min(misses.len());
            let chunk_len = misses.len().div_ceil(threads);
            let distance = self.ctx.distance();
            let results: Vec<Result<Vec<f64>, AuditError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = misses
                    .chunks(chunk_len)
                    .map(|chunk| {
                        scope.spawn(move || {
                            chunk
                                .iter()
                                .map(|&(_, i, j)| {
                                    distance
                                        .distance(&live[i].histogram, &live[j].histogram)
                                        .map_err(AuditError::from)
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("unfairness worker panicked"))
                    .collect()
            });
            let mut computed: Vec<f64> = Vec::with_capacity(misses.len());
            for r in results {
                computed.extend(r?);
            }
            self.distances_computed
                .set(self.distances_computed.get() + computed.len() as u64);
            {
                let mut cache = self.cache.borrow_mut();
                if cache.len() + computed.len() > self.max_entries {
                    cache.clear();
                }
                for (&(at, i, j), &d) in misses.iter().zip(&computed) {
                    vals[at] = d;
                    let key = if keys[i] <= keys[j] {
                        (keys[i], keys[j])
                    } else {
                        (keys[j], keys[i])
                    };
                    cache.insert(key, d);
                }
            }
        }
        let mut sum = 0.0;
        for v in &vals {
            sum += v;
        }
        Ok(sum / pairs as f64)
    }
}

impl DistanceOracle for EvalEngine<'_, '_> {
    fn keyed_distance(
        &self,
        key_a: u128,
        a: &Histogram,
        key_b: u128,
        b: &Histogram,
    ) -> Result<f64, AuditError> {
        self.cached_distance(key_a, a, key_b, b)
    }
}

/// Delta evaluation of candidate splits over one partitioning.
///
/// Seeded once per greedy round with the current partitioning (all pair
/// distances already cached from the previous round, so seeding computes
/// nothing new after round one), it answers "what would the average
/// pairwise distance be if these partitions were replaced by their
/// children?" at O(k · changed) distance lookups, restoring its state
/// afterwards without recomputing a single distance.
pub struct IncrementalEval<'e, 'c, 'a> {
    engine: &'e EvalEngine<'c, 'a>,
    averager: PairwiseAverager<'e>,
    /// Averager slot of each seeded partition, by position in the seed
    /// slice ([`EMPTY_SLOT`] for empty partitions, which are excluded
    /// from the average exactly as in [`AuditContext::unfairness`]).
    slots: Vec<usize>,
}

/// Slot sentinel for seeded partitions that are empty (and therefore not
/// in the averager).
const EMPTY_SLOT: usize = usize::MAX;

impl<'e, 'c, 'a> IncrementalEval<'e, 'c, 'a> {
    /// Seed the evaluator with the current partitioning. Empty
    /// partitions are skipped, matching the naive evaluation's filter.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance.
    pub fn new<P: Borrow<Partition>>(
        engine: &'e EvalEngine<'c, 'a>,
        parts: &[P],
    ) -> Result<Self, AuditError> {
        let mut averager = PairwiseAverager::keyed(engine);
        let mut slots = Vec::with_capacity(parts.len());
        for p in parts {
            let p = p.borrow();
            slots.push(if p.is_empty() {
                EMPTY_SLOT
            } else {
                averager.insert_keyed(EvalEngine::key(p), p.histogram.clone())?
            });
        }
        Ok(IncrementalEval {
            engine,
            averager,
            slots,
        })
    }

    /// Average pairwise distance of the seeded partitioning.
    pub fn average(&self) -> f64 {
        self.averager.average()
    }

    /// Score the hypothetical partitioning obtained by replacing each
    /// partition `index` (into the seed slice) with its `children`,
    /// then restore the seeded state. The restore performs no new
    /// distance computations — every distance it needs was computed (and
    /// cached) on the way in.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance.
    pub fn score_replacements<P: Borrow<Partition>>(
        &mut self,
        replacements: &[(usize, &[P])],
    ) -> Result<f64, AuditError> {
        let mut removed: Vec<(usize, u128, Histogram)> = Vec::with_capacity(replacements.len());
        for &(index, _) in replacements {
            if self.slots[index] == EMPTY_SLOT {
                continue;
            }
            if let Some((key, hist)) = self.averager.remove(self.slots[index])? {
                removed.push((index, key, hist));
            }
        }
        let mut child_slots: Vec<usize> = Vec::new();
        for &(_, children) in replacements {
            for child in children
                .iter()
                .map(Borrow::borrow)
                .filter(|c| !c.is_empty())
            {
                child_slots.push(
                    self.averager
                        .insert_keyed(EvalEngine::key(child), child.histogram.clone())?,
                );
            }
        }
        let value = self.averager.average();
        for slot in child_slots {
            self.averager.remove(slot)?;
        }
        for (index, key, hist) in removed {
            self.slots[index] = self.averager.insert_keyed(key, hist)?;
        }
        let _ = self.engine;
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use crate::context::AuditConfig;
    use fairjob_hist::distance::{DistanceError, HistogramDistance};
    use fairjob_marketplace::toy::toy_workers;
    use std::sync::Arc;

    fn toy_ctx<'a>(table: &'a fairjob_store::table::Table, scores: &'a [f64]) -> AuditContext<'a> {
        AuditContext::new(table, scores, AuditConfig::default()).unwrap()
    }

    #[test]
    fn cached_evaluation_is_bit_identical_to_naive() {
        let (t, scores) = toy_workers();
        let ctx = toy_ctx(&t, &scores);
        let engine = EvalEngine::new(&ctx);
        let parts = ctx.split(&ctx.root(), 1).unwrap(); // 3 language groups
        let naive = ctx.unfairness(&parts).unwrap();
        assert_eq!(engine.unfairness(&parts).unwrap(), naive);
        let first = engine.stats();
        assert_eq!(first.distances_computed, 3);
        assert_eq!(first.cache_hits, 0);
        // Second evaluation of the same partitioning: all hits.
        assert_eq!(engine.unfairness(&parts).unwrap(), naive);
        let second = engine.stats();
        assert_eq!(second.distances_computed, 3);
        assert_eq!(second.cache_hits, 3);
        assert_eq!(second.cache_bypasses, 0);
    }

    #[test]
    fn union_and_cross_match_the_context() {
        let (t, scores) = toy_workers();
        let ctx = toy_ctx(&t, &scores);
        let engine = EvalEngine::new(&ctx);
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        let langs = ctx.split(&genders[0], 1).unwrap();
        let sibs = std::slice::from_ref(&genders[1]);
        assert_eq!(
            engine.unfairness_union(&langs, sibs).unwrap(),
            ctx.unfairness_union(&langs, sibs).unwrap()
        );
        assert_eq!(
            engine.unfairness_cross(&langs, sibs).unwrap(),
            ctx.unfairness_cross(&langs, sibs).unwrap()
        );
    }

    #[test]
    fn parallel_path_matches_serial_for_any_thread_count() {
        let (t, scores) = toy_workers();
        let ctx = toy_ctx(&t, &scores);
        let parts = crate::algorithms::all_attributes::AllAttributes
            .run(&ctx)
            .unwrap()
            .partitioning;
        let serial = EvalEngine::new(&ctx).with_parallel_threshold(usize::MAX);
        let expected = serial.unfairness(parts.partitions()).unwrap();
        assert_eq!(expected, ctx.unfairness(parts.partitions()).unwrap());
        for threads in [1, 2, 3, 7] {
            let parallel = EvalEngine::new(&ctx)
                .with_parallel_threshold(2)
                .with_threads(threads);
            // First pass: all misses go through workers. Bit-identical
            // because the final sum runs serially in pair order.
            assert_eq!(
                parallel.unfairness(parts.partitions()).unwrap(),
                expected,
                "{threads}"
            );
            // Second pass: all hits.
            assert_eq!(
                parallel.unfairness(parts.partitions()).unwrap(),
                expected,
                "{threads}"
            );
            let stats = parallel.stats();
            assert_eq!(stats.cache_hits, stats.distances_computed);
        }
    }

    /// A distance that always fails, for exercising worker error paths.
    struct AlwaysFails;

    impl HistogramDistance for AlwaysFails {
        fn distance(&self, _: &Histogram, _: &Histogram) -> Result<f64, DistanceError> {
            Err(DistanceError::EmptyHistogram)
        }
        fn name(&self) -> &'static str {
            "always-fails"
        }
    }

    #[test]
    fn distance_error_in_a_parallel_worker_propagates_as_audit_error() {
        let (t, scores) = toy_workers();
        let cfg = AuditConfig::with_distance(Arc::new(AlwaysFails));
        let ctx = AuditContext::new(&t, &scores, cfg).unwrap();
        let parts = ctx.split(&ctx.root(), 1).unwrap();
        let engine = EvalEngine::new(&ctx)
            .with_parallel_threshold(2)
            .with_threads(4);
        // Must come back as Err, not a worker panic.
        let err = engine.unfairness(&parts).unwrap_err();
        assert!(
            matches!(err, AuditError::Distance(DistanceError::EmptyHistogram)),
            "{err:?}"
        );
    }

    #[test]
    fn incremental_matches_naive_and_reverts_for_free() {
        let (t, scores) = toy_workers();
        let ctx = toy_ctx(&t, &scores);
        let engine = EvalEngine::new(&ctx);
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        let male_langs = ctx.split(&genders[0], 1).unwrap();
        let mut inc = IncrementalEval::new(&engine, &genders).unwrap();
        assert!((inc.average() - ctx.unfairness(&genders).unwrap()).abs() < 1e-12);

        // Score "replace Male by its language split" and compare with the
        // naive evaluation of the materialised partitioning.
        let mut replaced = male_langs.clone();
        replaced.push(genders[1].clone());
        let naive = ctx.unfairness(&replaced).unwrap();
        let score = inc.score_replacements(&[(0, &male_langs)]).unwrap();
        assert!((score - naive).abs() < 1e-9, "{score} vs {naive}");
        // The evaluator reverted to the seeded state…
        assert!((inc.average() - ctx.unfairness(&genders).unwrap()).abs() < 1e-12);
        // …and re-scoring the same replacement computes nothing new.
        let computed_before = engine.stats().distances_computed;
        let again = inc.score_replacements(&[(0, &male_langs)]).unwrap();
        assert_eq!(again, score);
        assert_eq!(engine.stats().distances_computed, computed_before);
    }

    #[test]
    fn split_cache_serves_repeat_requests_without_row_scans() {
        let (t, scores) = toy_workers();
        let ctx = toy_ctx(&t, &scores);
        let engine = EvalEngine::new(&ctx);
        let root = ctx.root();
        let first = engine.split(&root, 0).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.splits_computed, 1);
        assert_eq!(stats.split_cache_hits, 0);
        assert_eq!(stats.rows_scanned, root.len() as u64);
        assert_eq!(stats.histograms_built, first.len() as u64);
        // Same request again: served from the cache, same Arcs, no scan.
        let second = engine.split(&root, 0).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = engine.stats();
        assert_eq!(stats.splits_computed, 1);
        assert_eq!(stats.split_cache_hits, 1);
        assert_eq!(stats.rows_scanned, root.len() as u64);
        // The children match the context's direct split.
        let direct = ctx.split(&root, 0).unwrap();
        assert_eq!(first.len(), direct.len());
        for (cached, fresh) in first.iter().zip(&direct) {
            assert_eq!(cached.as_ref(), fresh);
        }
    }

    #[test]
    fn non_viable_splits_are_negatively_cached() {
        let (t, scores) = toy_workers();
        let cfg = AuditConfig {
            min_partition_size: 3,
            ..Default::default()
        };
        let ctx = AuditContext::new(&t, &scores, cfg).unwrap();
        let engine = EvalEngine::new(&ctx);
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        // Males split by language as 2+2+2: below the floor, non-viable.
        let males = genders.iter().find(|p| p.len() == 6).unwrap();
        assert!(engine.split(males, 1).is_none());
        assert_eq!(engine.stats().splits_computed, 1);
        // Retried (as every greedy round does): answered from the cache.
        assert!(engine.split(males, 1).is_none());
        let stats = engine.stats();
        assert_eq!(stats.splits_computed, 1);
        assert_eq!(stats.split_cache_hits, 1);
        // An attribute already constrained by the predicate is answered
        // inline without touching the cache or the counters.
        assert!(engine.split(males, 0).is_none());
        assert_eq!(engine.stats().split_lookups(), stats.split_lookups());
    }

    #[test]
    fn split_batch_is_thread_count_independent() {
        let (t, scores) = toy_workers();
        let ctx = toy_ctx(&t, &scores);
        let root = ctx.root();
        let reference = EvalEngine::new(&ctx).with_threads(1);
        let requests: Vec<(&Partition, usize)> = vec![(&root, 0), (&root, 1), (&root, 0)];
        let expected = reference.split_batch(&requests);
        let expected_stats = reference.stats();
        for threads in [2, 3, 8] {
            let engine = EvalEngine::new(&ctx).with_threads(threads);
            let got = engine.split_batch(&requests);
            assert_eq!(engine.stats(), expected_stats, "{threads} threads");
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                match (g, e) {
                    (Some(g), Some(e)) => {
                        assert_eq!(g.len(), e.len());
                        for (a, b) in g.iter().zip(e.iter()) {
                            assert_eq!(a.as_ref(), b.as_ref());
                        }
                    }
                    (None, None) => {}
                    _ => panic!("viability differs at {threads} threads"),
                }
            }
        }
    }

    #[test]
    fn split_all_keeps_unsplittable_partitions_whole() {
        let (t, scores) = toy_workers();
        let ctx = toy_ctx(&t, &scores);
        let engine = EvalEngine::new(&ctx);
        let genders: Vec<Arc<Partition>> = engine
            .split(&ctx.root(), 0)
            .unwrap()
            .iter()
            .cloned()
            .collect();
        let by_lang = engine.split_all(&genders, 1);
        // Both genders split into 3 languages each on the toy data.
        assert_eq!(by_lang.len(), 6);
        // Splitting again by the same attribute is a no-op: every child
        // is constrained, so the same Arcs come straight back.
        let again = engine.split_all(&by_lang, 1);
        assert_eq!(again.len(), by_lang.len());
        for (a, b) in again.iter().zip(&by_lang) {
            assert!(Arc::ptr_eq(a, b));
        }
    }

    #[test]
    fn unkeyed_histograms_bypass_the_cache() {
        let (t, scores) = toy_workers();
        let ctx = toy_ctx(&t, &scores);
        let engine = EvalEngine::new(&ctx);
        let genders = ctx.split(&ctx.root(), 0).unwrap();
        let mut averager = PairwiseAverager::keyed(&engine);
        // Plain inserts carry no fingerprint, so the engine computes
        // without consulting or filling the cache.
        averager.insert(genders[0].histogram.clone()).unwrap();
        averager.insert(genders[1].histogram.clone()).unwrap();
        averager.insert(genders[1].histogram.clone()).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.cache_bypasses, 3);
        assert_eq!(stats.distances_computed, 3);
        assert_eq!(stats.cache_hits, 0);
    }
}
