//! A persistent, lazily-spawned worker pool.
//!
//! Before this module, every parallel evaluation — candidate split
//! batches, parallel pairwise-EMD sums — paid for a fresh set of
//! `std::thread::scope` spawns, once per call, thousands of times per
//! audit and again every streaming epoch. The pool here is spawned once
//! (lazily, on the first parallel batch), parks between batches, and is
//! shared by every engine and every [`fairjob-stream`] epoch in the
//! process; [`WorkerPool::threads_spawned`] counts lifetime spawns so CI
//! can assert the "no per-call spawns" contract with a real counter.
//!
//! # Determinism
//!
//! The pool deliberately exposes *indexed* work only:
//! [`WorkerPool::run_chunks`] gives each chunk index its own result
//! slot, workers self-schedule chunk indices work-stealing style
//! (whoever is free claims the next index), and the caller reassembles
//! results in index order. Which worker ran which chunk varies run to
//! run; the returned `Vec` never does. Callers that need bit-identical
//! floating-point results across thread counts get them by reducing the
//! returned slots serially, in index order.
//!
//! # Panics
//!
//! A panic inside a chunk closure is caught on the worker, recorded,
//! and re-raised on the calling thread after the batch drains — the
//! same observable behaviour as `std::thread::scope`, without poisoning
//! the long-lived workers.
//!
//! Completion signalling is unwind-proof: each claimed invocation holds
//! a [`TicketGuard`] whose `Drop` marks the ticket finished and wakes
//! the submitter, so a panic anywhere on the worker's execution path —
//! the closure itself, a poisoned lock, even a panic payload whose own
//! `Drop` panics — can never leave [`WorkerPool::run`] waiting forever
//! on a ticket that will not complete. That matters doubly because the
//! submitter's stack frame owns the erased `*const dyn Fn`: a submitter
//! that returned early while a worker still ran would turn the pointer
//! into a dangling reference. Should a worker thread die outright
//! (double panic while unwinding), a scope guard hands its slot back so
//! the next batch respawns a replacement — [`WorkerPool::threads_spawned`]
//! keeps counting every spawn, replacements included, so the lifetime
//! counter stays honest.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Ceiling on global pool workers; matches the engine's default thread
/// cap so `available_parallelism` boxes never oversubscribe.
const MAX_GLOBAL_WORKERS: usize = 8;

/// One batch posted to the pool: a type-erased pointer to the caller's
/// work closure plus the rendezvous state the caller blocks on.
struct Job {
    /// `&(dyn Fn() + Sync)` borrowed from the submitting thread's
    /// stack, lifetime-erased. Only dereferenced while the submitting
    /// call frame is alive: claims happen under the queue lock, the
    /// submitter removes the job from the queue (stopping new claims)
    /// and then waits until `finished == taken` before returning.
    work: *const (dyn Fn() + Sync),
    /// Helper invocations still claimable by workers.
    tickets: usize,
    shared: Arc<JobShared>,
}

// SAFETY: `work` is only dereferenced under the protocol documented on
// the field — the pointee outlives every dereference — and the pointee
// is `Sync`, so concurrent invocation is allowed.
unsafe impl Send for Job {}

#[derive(Default)]
struct JobShared {
    state: Mutex<JobState>,
    done: Condvar,
}

#[derive(Default)]
struct JobState {
    taken: usize,
    finished: usize,
    panicked: bool,
}

/// A claimed worker invocation. Dropping the guard — normally or while
/// unwinding — marks the ticket finished and wakes the submitter; a
/// guard dropped before [`TicketGuard::complete`] records the job as
/// panicked. This is the deadlock fix: completion no longer depends on
/// the worker's happy path reaching the bookkeeping code.
struct TicketGuard {
    shared: Arc<JobShared>,
    completed: bool,
}

impl TicketGuard {
    fn complete(&mut self) {
        self.completed = true;
    }
}

impl Drop for TicketGuard {
    fn drop(&mut self) {
        let mut state = lock_ignore_poison(&self.shared.state);
        state.finished += 1;
        if !self.completed {
            state.panicked = true;
        }
        drop(state);
        self.shared.done.notify_all();
    }
}

/// Lock a mutex whose protected data stays valid across a panic (plain
/// counters and queues here — no invariant is half-updated when an
/// unwind happens outside the critical section). Poison must not turn
/// into a second panic on the completion path, or the submitter waits
/// forever.
fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

struct PoolInner {
    queue: Mutex<Vec<Job>>,
    available: Condvar,
    /// Workers currently alive. Decremented by a worker's scope guard
    /// if its thread dies (it can only die to a double panic while
    /// unwinding); [`WorkerPool::ensure_spawned`] compares against this,
    /// so the next batch replaces the casualty instead of silently
    /// running under-provisioned forever.
    live: Mutex<usize>,
}

/// Scope guard on each worker thread: gives the worker's slot back on
/// thread death so `ensure_spawned` can account for (and replace) it.
struct WorkerSlot {
    inner: Arc<PoolInner>,
}

impl Drop for WorkerSlot {
    fn drop(&mut self) {
        *lock_ignore_poison(&self.inner.live) -= 1;
    }
}

/// The persistent pool. Use [`WorkerPool::global`] rather than
/// constructing one per call site — sharing is the whole point.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    max_workers: usize,
    /// Lifetime spawn counter (original spawns + replacements for dead
    /// workers), readable without a lock.
    threads_spawned: AtomicUsize,
}

impl WorkerPool {
    /// A pool that will lazily spawn at most `max_workers` workers.
    pub fn new(max_workers: usize) -> Self {
        WorkerPool {
            inner: Arc::new(PoolInner {
                queue: Mutex::new(Vec::new()),
                available: Condvar::new(),
                live: Mutex::new(0),
            }),
            max_workers,
            threads_spawned: AtomicUsize::new(0),
        }
    }

    /// The process-wide shared pool, sized to the machine (capped at
    /// 8 workers, like the engine's default thread count). Workers are
    /// only spawned once a batch actually asks for helpers.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            // The submitting thread participates too, so keep one core
            // for it.
            WorkerPool::new(cores.saturating_sub(1).min(MAX_GLOBAL_WORKERS))
        })
    }

    /// Workers ever spawned by this pool. Stays flat across batches —
    /// the counter CI uses to assert that per-call thread spawning is
    /// gone.
    pub fn threads_spawned(&self) -> usize {
        self.threads_spawned.load(Ordering::Relaxed)
    }

    /// Maximum number of helper workers this pool will ever run.
    pub fn max_workers(&self) -> usize {
        self.max_workers
    }

    fn ensure_spawned(&self, wanted: usize) {
        let wanted = wanted.min(self.max_workers);
        let mut live = lock_ignore_poison(&self.inner.live);
        while *live < wanted {
            let inner = Arc::clone(&self.inner);
            let serial = self.threads_spawned.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name(format!("fairjob-pool-{serial}"))
                .spawn(move || {
                    // Returns the slot (decrements `live`) if this
                    // thread ever dies, so it gets replaced.
                    let _slot = WorkerSlot {
                        inner: Arc::clone(&inner),
                    };
                    worker_loop(&inner);
                })
                .expect("spawn pool worker");
            *live += 1;
        }
    }

    /// Run `work` on the calling thread *and* up to `helpers` pool
    /// workers concurrently, returning once every started invocation
    /// has finished. `work` must partition its own input (e.g. by
    /// claiming indices from an atomic counter); extra invocations that
    /// find nothing to claim simply return.
    pub fn run(&self, helpers: usize, work: &(dyn Fn() + Sync)) {
        let helpers = helpers.min(self.max_workers);
        let shared = Arc::new(JobShared::default());
        if helpers > 0 {
            self.ensure_spawned(helpers);
            // SAFETY: erases the borrow's lifetime so the job can sit in
            // the 'static queue; `Job::work` documents why the pointer
            // is never dereferenced after this call returns.
            let work: *const (dyn Fn() + Sync) =
                unsafe { std::mem::transmute(work as *const (dyn Fn() + Sync + '_)) };
            lock_ignore_poison(&self.inner.queue).push(Job {
                work,
                tickets: helpers,
                shared: Arc::clone(&shared),
            });
            self.inner.available.notify_all();
        }
        let caller = catch_unwind(AssertUnwindSafe(&work));
        if helpers > 0 {
            // Remove any unclaimed tickets — no new claims can start
            // once the job is off the queue — then wait out the claimed
            // invocations. Every claimed ticket is finished by a
            // `TicketGuard` even if the worker unwinds, so this wait
            // always terminates.
            lock_ignore_poison(&self.inner.queue).retain(|job| !Arc::ptr_eq(&job.shared, &shared));
            let mut state = lock_ignore_poison(&shared.state);
            while state.finished < state.taken {
                state = shared
                    .done
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if state.panicked && caller.is_ok() {
                drop(state);
                panic!("worker pool task panicked");
            }
        }
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
    }

    /// Evaluate `f(0..chunks)` with up to `parallelism` concurrent
    /// threads (the caller plus pool helpers) and return the results in
    /// chunk order. `parallelism <= 1` runs everything inline on the
    /// caller — same results, no synchronisation.
    pub fn run_chunks<T, F>(&self, parallelism: usize, chunks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if chunks == 0 {
            return Vec::new();
        }
        let parallelism = parallelism.max(1).min(chunks);
        if parallelism == 1 {
            return (0..chunks).map(f).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= chunks {
                break;
            }
            let value = f(i);
            *slots[i].lock().expect("pool result slot") = Some(value);
        };
        self.run(parallelism - 1, &work);
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("pool result slot")
                    .expect("every chunk completed")
            })
            .collect()
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let (work, mut guard) = {
            let mut queue = lock_ignore_poison(&inner.queue);
            loop {
                if let Some(pos) = queue.iter().position(|job| job.tickets > 0) {
                    let job = &mut queue[pos];
                    job.tickets -= 1;
                    lock_ignore_poison(&job.shared.state).taken += 1;
                    // The guard is armed here, under the queue lock —
                    // from this point on the ticket is finished (and
                    // the submitter woken) no matter how this
                    // invocation ends.
                    let guard = TicketGuard {
                        shared: Arc::clone(&job.shared),
                        completed: false,
                    };
                    let claimed = (job.work, guard);
                    if job.tickets == 0 {
                        queue.remove(pos);
                    }
                    break claimed;
                }
                queue = inner
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // SAFETY: the claim above happened under the queue lock, before
        // the submitter could remove the job, so the submitter is still
        // blocked in `run` and the pointee is alive (see `Job::work`).
        // The submitter cannot stop waiting early: its wait condition
        // is `finished == taken`, and this invocation's `finished`
        // increment only happens in the guard drop below, after the
        // last dereference of `work`.
        let work = unsafe { &*work };
        // Run the closure AND dispose of any panic payload inside the
        // same catch: a payload whose own `Drop` panics must not unwind
        // through the loop and kill the worker.
        let ok = catch_unwind(AssertUnwindSafe(|| {
            let outcome = catch_unwind(AssertUnwindSafe(work));
            outcome.is_ok()
        }))
        .unwrap_or(false);
        if ok {
            guard.complete();
        }
        drop(guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_chunks_returns_results_in_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run_chunks(4, 100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn inline_path_matches_parallel_path() {
        let pool = WorkerPool::new(4);
        let serial = pool.run_chunks(1, 37, |i| (i as f64).sqrt());
        let parallel = pool.run_chunks(4, 37, |i| (i as f64).sqrt());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn workers_are_reused_across_batches() {
        let pool = WorkerPool::new(3);
        for _ in 0..50 {
            let _ = pool.run_chunks(4, 16, |i| i + 1);
        }
        assert!(
            pool.threads_spawned() <= 3,
            "pool spawned {} threads for 50 batches",
            pool.threads_spawned()
        );
    }

    #[test]
    fn zero_helpers_runs_inline_without_spawning() {
        let pool = WorkerPool::new(0);
        let out = pool.run_chunks(8, 5, |i| i);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(pool.threads_spawned(), 0);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_chunks(3, 64, |i| {
                if i == 40 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(result.is_err());
        // The pool survives the panic and keeps serving batches.
        let out = pool.run_chunks(3, 8, |i| i * 2);
        assert_eq!(out[7], 14);
    }

    #[test]
    fn global_pool_is_shared_and_capped() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.max_workers() <= MAX_GLOBAL_WORKERS);
    }

    /// The deadlock regression: a job that panics on a pool worker (and
    /// only there) used to leave `finished < taken` forever, hanging
    /// the submitting thread. `run` must now return (by panicking) well
    /// within the timeout, and the pool must keep serving afterwards.
    #[test]
    fn panicking_worker_job_does_not_deadlock_run() {
        use std::sync::atomic::AtomicBool;
        use std::sync::mpsc;
        use std::time::{Duration, Instant};

        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let pool = WorkerPool::new(2);
            let caller = std::thread::current().id();
            let worker_panicked = AtomicBool::new(false);
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.run(2, &|| {
                    if std::thread::current().id() != caller {
                        worker_panicked.store(true, Ordering::SeqCst);
                        panic!("deliberate worker panic");
                    }
                    // Caller invocation: hold the batch open until a
                    // worker has actually claimed a ticket and blown
                    // up, so the panic provably happened off-caller.
                    let start = Instant::now();
                    while !worker_panicked.load(Ordering::SeqCst)
                        && start.elapsed() < Duration::from_secs(10)
                    {
                        std::thread::yield_now();
                    }
                })
            }));
            assert!(
                worker_panicked.load(Ordering::SeqCst),
                "test never exercised the worker path"
            );
            // The pool is still alive and usable after the panic.
            let out = pool.run_chunks(3, 8, |i| i + 1);
            tx.send((result.is_err(), out)).ok();
        });
        let (propagated, out) = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("WorkerPool::run deadlocked on a panicking worker job");
        assert!(propagated, "worker panic must propagate to the caller");
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    /// A panic on the *calling* invocation resumes on the caller — the
    /// `std::thread::scope`-equivalent contract, spelled as the
    /// `#[should_panic]` face of the regression above.
    #[test]
    #[should_panic(expected = "caller boom")]
    fn panicking_caller_job_resumes_on_caller() {
        let pool = WorkerPool::new(1);
        pool.run(1, &|| {
            panic!("caller boom");
        });
    }

    /// A panic payload whose own `Drop` panics must not kill the worker
    /// or hang the submitter.
    #[test]
    fn panicking_payload_drop_is_contained() {
        use std::sync::mpsc;
        use std::time::Duration;

        struct Grenade;
        impl Drop for Grenade {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    return; // avoid double-panic aborts while unwinding
                }
                panic!("payload drop panic");
            }
        }

        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let pool = WorkerPool::new(2);
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.run_chunks(3, 32, |i| {
                    if i % 7 == 3 {
                        std::panic::panic_any(Grenade);
                    }
                    i
                })
            }));
            assert!(result.is_err());
            // Dispose of the caught grenade under its own catch — its
            // drop panics too.
            let _ = catch_unwind(AssertUnwindSafe(move || drop(result)));
            // Workers survived (or were replaced); the pool still runs.
            let out = pool.run_chunks(3, 4, |i| i * 3);
            tx.send(out).ok();
        });
        let out = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("pool hung after a panicking panic payload");
        assert_eq!(out, vec![0, 3, 6, 9]);
    }
}
