//! A persistent, lazily-spawned worker pool.
//!
//! Before this module, every parallel evaluation — candidate split
//! batches, parallel pairwise-EMD sums — paid for a fresh set of
//! `std::thread::scope` spawns, once per call, thousands of times per
//! audit and again every streaming epoch. The pool here is spawned once
//! (lazily, on the first parallel batch), parks between batches, and is
//! shared by every engine and every [`fairjob-stream`] epoch in the
//! process; [`WorkerPool::threads_spawned`] counts lifetime spawns so CI
//! can assert the "no per-call spawns" contract with a real counter.
//!
//! # Determinism
//!
//! The pool deliberately exposes *indexed* work only:
//! [`WorkerPool::run_chunks`] gives each chunk index its own result
//! slot, workers self-schedule chunk indices work-stealing style
//! (whoever is free claims the next index), and the caller reassembles
//! results in index order. Which worker ran which chunk varies run to
//! run; the returned `Vec` never does. Callers that need bit-identical
//! floating-point results across thread counts get them by reducing the
//! returned slots serially, in index order.
//!
//! # Panics
//!
//! A panic inside a chunk closure is caught on the worker, recorded,
//! and re-raised on the calling thread after the batch drains — the
//! same observable behaviour as `std::thread::scope`, without poisoning
//! the long-lived workers.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Ceiling on global pool workers; matches the engine's default thread
/// cap so `available_parallelism` boxes never oversubscribe.
const MAX_GLOBAL_WORKERS: usize = 8;

/// One batch posted to the pool: a type-erased pointer to the caller's
/// work closure plus the rendezvous state the caller blocks on.
struct Job {
    /// `&(dyn Fn() + Sync)` borrowed from the submitting thread's
    /// stack, lifetime-erased. Only dereferenced while the submitting
    /// call frame is alive: claims happen under the queue lock, the
    /// submitter removes the job from the queue (stopping new claims)
    /// and then waits until `finished == taken` before returning.
    work: *const (dyn Fn() + Sync),
    /// Helper invocations still claimable by workers.
    tickets: usize,
    shared: Arc<JobShared>,
}

// SAFETY: `work` is only dereferenced under the protocol documented on
// the field — the pointee outlives every dereference — and the pointee
// is `Sync`, so concurrent invocation is allowed.
unsafe impl Send for Job {}

#[derive(Default)]
struct JobShared {
    state: Mutex<JobState>,
    done: Condvar,
}

#[derive(Default)]
struct JobState {
    taken: usize,
    finished: usize,
    panicked: bool,
}

struct PoolInner {
    queue: Mutex<Vec<Job>>,
    available: Condvar,
}

/// The persistent pool. Use [`WorkerPool::global`] rather than
/// constructing one per call site — sharing is the whole point.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    max_workers: usize,
    /// Guards spawning; holds the number of workers spawned so far.
    spawn: Mutex<usize>,
    /// Lifetime spawn counter, readable without the lock.
    threads_spawned: AtomicUsize,
}

impl WorkerPool {
    /// A pool that will lazily spawn at most `max_workers` workers.
    pub fn new(max_workers: usize) -> Self {
        WorkerPool {
            inner: Arc::new(PoolInner {
                queue: Mutex::new(Vec::new()),
                available: Condvar::new(),
            }),
            max_workers,
            spawn: Mutex::new(0),
            threads_spawned: AtomicUsize::new(0),
        }
    }

    /// The process-wide shared pool, sized to the machine (capped at
    /// 8 workers, like the engine's default thread count). Workers are
    /// only spawned once a batch actually asks for helpers.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            // The submitting thread participates too, so keep one core
            // for it.
            WorkerPool::new(cores.saturating_sub(1).min(MAX_GLOBAL_WORKERS))
        })
    }

    /// Workers ever spawned by this pool. Stays flat across batches —
    /// the counter CI uses to assert that per-call thread spawning is
    /// gone.
    pub fn threads_spawned(&self) -> usize {
        self.threads_spawned.load(Ordering::Relaxed)
    }

    /// Maximum number of helper workers this pool will ever run.
    pub fn max_workers(&self) -> usize {
        self.max_workers
    }

    fn ensure_spawned(&self, wanted: usize) {
        let wanted = wanted.min(self.max_workers);
        let mut spawned = self.spawn.lock().expect("pool spawn lock");
        while *spawned < wanted {
            let inner = Arc::clone(&self.inner);
            std::thread::Builder::new()
                .name(format!("fairjob-pool-{spawned}"))
                .spawn(move || worker_loop(&inner))
                .expect("spawn pool worker");
            *spawned += 1;
            self.threads_spawned.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Run `work` on the calling thread *and* up to `helpers` pool
    /// workers concurrently, returning once every started invocation
    /// has finished. `work` must partition its own input (e.g. by
    /// claiming indices from an atomic counter); extra invocations that
    /// find nothing to claim simply return.
    pub fn run(&self, helpers: usize, work: &(dyn Fn() + Sync)) {
        let helpers = helpers.min(self.max_workers);
        let shared = Arc::new(JobShared::default());
        if helpers > 0 {
            self.ensure_spawned(helpers);
            // SAFETY: erases the borrow's lifetime so the job can sit in
            // the 'static queue; `Job::work` documents why the pointer
            // is never dereferenced after this call returns.
            let work: *const (dyn Fn() + Sync) =
                unsafe { std::mem::transmute(work as *const (dyn Fn() + Sync + '_)) };
            self.inner.queue.lock().expect("pool queue").push(Job {
                work,
                tickets: helpers,
                shared: Arc::clone(&shared),
            });
            self.inner.available.notify_all();
        }
        let caller = catch_unwind(AssertUnwindSafe(&work));
        if helpers > 0 {
            // Remove any unclaimed tickets — no new claims can start
            // once the job is off the queue — then wait out the claimed
            // invocations.
            self.inner
                .queue
                .lock()
                .expect("pool queue")
                .retain(|job| !Arc::ptr_eq(&job.shared, &shared));
            let mut state = shared.state.lock().expect("pool job state");
            while state.finished < state.taken {
                state = shared.done.wait(state).expect("pool job state");
            }
            if state.panicked && caller.is_ok() {
                drop(state);
                panic!("worker pool task panicked");
            }
        }
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
    }

    /// Evaluate `f(0..chunks)` with up to `parallelism` concurrent
    /// threads (the caller plus pool helpers) and return the results in
    /// chunk order. `parallelism <= 1` runs everything inline on the
    /// caller — same results, no synchronisation.
    pub fn run_chunks<T, F>(&self, parallelism: usize, chunks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if chunks == 0 {
            return Vec::new();
        }
        let parallelism = parallelism.max(1).min(chunks);
        if parallelism == 1 {
            return (0..chunks).map(f).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= chunks {
                break;
            }
            let value = f(i);
            *slots[i].lock().expect("pool result slot") = Some(value);
        };
        self.run(parallelism - 1, &work);
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("pool result slot")
                    .expect("every chunk completed")
            })
            .collect()
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let (work, shared) = {
            let mut queue = inner.queue.lock().expect("pool queue");
            loop {
                if let Some(pos) = queue.iter().position(|job| job.tickets > 0) {
                    let job = &mut queue[pos];
                    job.tickets -= 1;
                    job.shared.state.lock().expect("pool job state").taken += 1;
                    let claimed = (job.work, Arc::clone(&job.shared));
                    if job.tickets == 0 {
                        queue.remove(pos);
                    }
                    break claimed;
                }
                queue = inner.available.wait(queue).expect("pool queue");
            }
        };
        // SAFETY: the claim above happened under the queue lock, before
        // the submitter could remove the job, so the submitter is still
        // blocked in `run` and the pointee is alive (see `Job::work`).
        let work = unsafe { &*work };
        let outcome = catch_unwind(AssertUnwindSafe(work));
        let mut state = shared.state.lock().expect("pool job state");
        state.finished += 1;
        if outcome.is_err() {
            state.panicked = true;
        }
        drop(state);
        shared.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_chunks_returns_results_in_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run_chunks(4, 100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn inline_path_matches_parallel_path() {
        let pool = WorkerPool::new(4);
        let serial = pool.run_chunks(1, 37, |i| (i as f64).sqrt());
        let parallel = pool.run_chunks(4, 37, |i| (i as f64).sqrt());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn workers_are_reused_across_batches() {
        let pool = WorkerPool::new(3);
        for _ in 0..50 {
            let _ = pool.run_chunks(4, 16, |i| i + 1);
        }
        assert!(
            pool.threads_spawned() <= 3,
            "pool spawned {} threads for 50 batches",
            pool.threads_spawned()
        );
    }

    #[test]
    fn zero_helpers_runs_inline_without_spawning() {
        let pool = WorkerPool::new(0);
        let out = pool.run_chunks(8, 5, |i| i);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(pool.threads_spawned(), 0);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_chunks(3, 64, |i| {
                if i == 40 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(result.is_err());
        // The pool survives the panic and keeps serving batches.
        let out = pool.run_chunks(3, 8, |i| i * 2);
        assert_eq!(out[7], 14);
    }

    #[test]
    fn global_pool_is_shared_and_capped() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.max_workers() <= MAX_GLOBAL_WORKERS);
    }
}
