//! Joint (two-function) audits (extension).
//!
//! The `hist::hist2d` example shows that a group can be treated fairly
//! by each scoring function *separately* while the joint distribution
//! differs completely (e.g. never strong on both tasks at once). This
//! module lifts the most-unfair-partitioning search to that joint view:
//! each partition is represented by the **2-D histogram** of its members'
//! `(score_a, score_b)` pairs and compared with the cityblock-ground
//! EMD, and a balanced-style greedy searches the attribute-subset space.
//!
//! The 2-D EMD needs the exact transportation solver (no closed form),
//! so joint audits are ~100× more expensive per pair than the 1-D audit;
//! the greedy here evaluates O(attributes²) candidate partitionings,
//! which stays interactive for the paper-scale populations.

use crate::error::AuditError;
use fairjob_hist::hist2d::{emd_2d, Histogram2d};
use fairjob_hist::BinSpec;
use fairjob_store::index::IndexSet;
use fairjob_store::{Predicate, RowSet, Table};
use std::time::{Duration, Instant};

/// One group in a joint audit.
#[derive(Debug, Clone)]
pub struct JointPartition {
    /// Defining constraints.
    pub predicate: Predicate,
    /// Member rows.
    pub rows: RowSet,
    /// Joint histogram of the members' two scores.
    pub histogram: Histogram2d,
}

impl JointPartition {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Result of a joint audit.
#[derive(Debug, Clone)]
pub struct JointAuditResult {
    /// The most-unfair partitioning found (greedy over attribute
    /// subsets).
    pub partitions: Vec<JointPartition>,
    /// Average pairwise 2-D EMD of that partitioning.
    pub unfairness: f64,
    /// Attributes split on (schema indexes, sorted).
    pub attributes_used: Vec<usize>,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// The joint-audit evaluation context: two row-aligned score vectors.
pub struct JointAuditContext<'a> {
    table: &'a Table,
    scores_a: &'a [f64],
    scores_b: &'a [f64],
    spec: BinSpec,
    attributes: Vec<usize>,
    indexes: IndexSet,
    /// Precomputed per-axis bin indices (`bin_a[row]` = the x-axis bin
    /// of the row's first score), so the 2-D histogram path bumps cells
    /// directly instead of re-binning floats per partition.
    bin_a: Vec<u32>,
    bin_b: Vec<u32>,
}

impl<'a> JointAuditContext<'a> {
    /// Validate and build. Both score vectors must be row-aligned with
    /// `table` and lie in `[0, 1]`; `bins` is the per-axis bin count
    /// (the joint grid has `bins²` cells — keep it modest, the default
    /// audit uses 8).
    ///
    /// # Errors
    ///
    /// The same validation failures as [`crate::AuditContext::new`].
    pub fn new(
        table: &'a Table,
        scores_a: &'a [f64],
        scores_b: &'a [f64],
        bins: usize,
    ) -> Result<Self, AuditError> {
        if table.is_empty() {
            return Err(AuditError::EmptyTable);
        }
        for scores in [scores_a, scores_b] {
            if scores.len() != table.len() {
                return Err(AuditError::ScoreLength {
                    rows: table.len(),
                    scores: scores.len(),
                });
            }
            for (row, &s) in scores.iter().enumerate() {
                if !s.is_finite() || !(0.0..=1.0).contains(&s) {
                    return Err(AuditError::BadScore { row, value: s });
                }
            }
        }
        let spec =
            BinSpec::equal_width(0.0, 1.0, bins).map_err(|e| AuditError::Bins(e.to_string()))?;
        let attributes = table.schema().splittable();
        if attributes.is_empty() {
            return Err(AuditError::NoAttributes);
        }
        let indexes = IndexSet::build(table)?;
        let bin_a: Vec<u32> = scores_a.iter().map(|&s| spec.bin_index(s) as u32).collect();
        let bin_b: Vec<u32> = scores_b.iter().map(|&s| spec.bin_index(s) as u32).collect();
        Ok(JointAuditContext {
            table,
            scores_a,
            scores_b,
            spec,
            attributes,
            indexes,
            bin_a,
            bin_b,
        })
    }

    /// The audited table.
    pub fn table(&self) -> &Table {
        self.table
    }

    /// The first per-row score vector (x axis of the joint grid).
    pub fn scores_a(&self) -> &[f64] {
        self.scores_a
    }

    /// The second per-row score vector (y axis of the joint grid).
    pub fn scores_b(&self) -> &[f64] {
        self.scores_b
    }

    /// Joint histogram of a row set, built from the precomputed per-axis
    /// bin indices (no per-row float binning).
    pub fn histogram(&self, rows: &RowSet) -> Histogram2d {
        let mut h = Histogram2d::empty(self.spec.clone(), self.spec.clone());
        for row in rows.iter() {
            h.add_cell(self.bin_a[row] as usize, self.bin_b[row] as usize);
        }
        h
    }

    fn partition(&self, predicate: Predicate, rows: RowSet) -> JointPartition {
        let histogram = self.histogram(&rows);
        JointPartition {
            predicate,
            rows,
            histogram,
        }
    }

    /// Average pairwise 2-D EMD over non-empty partitions.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the solver.
    pub fn unfairness(&self, parts: &[JointPartition]) -> Result<f64, AuditError> {
        let live: Vec<&JointPartition> = parts.iter().filter(|p| !p.is_empty()).collect();
        if live.len() < 2 {
            return Ok(0.0);
        }
        let mut sum = 0.0;
        let mut pairs = 0usize;
        for i in 0..live.len() {
            for j in i + 1..live.len() {
                sum += emd_2d(&live[i].histogram, &live[j].histogram)?;
                pairs += 1;
            }
        }
        Ok(sum / pairs as f64)
    }

    fn split_all(&self, parts: &[JointPartition], attr: usize) -> Vec<JointPartition> {
        let mut out = Vec::with_capacity(parts.len() * 2);
        for p in parts {
            let splittable = !p.predicate.constrains(attr);
            let groups = if splittable {
                self.indexes
                    .get(attr)
                    .map(|idx| idx.split(&p.rows))
                    .unwrap_or_default()
            } else {
                Vec::new()
            };
            if groups.len() <= 1 {
                out.push(p.clone());
            } else {
                for (code, rows) in groups {
                    out.push(self.partition(p.predicate.and(attr, code), rows));
                }
            }
        }
        out
    }

    /// Balanced-style greedy joint audit: repeatedly split every
    /// partition on the attribute that maximises the joint unfairness,
    /// stopping when no attribute strictly improves it.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the solver.
    pub fn balanced_greedy(&self) -> Result<JointAuditResult, AuditError> {
        let start = Instant::now();
        let mut current = vec![self.partition(Predicate::always(), RowSet::all(self.table.len()))];
        let mut current_value = 0.0;
        let mut remaining: Vec<usize> = self.attributes.clone();
        loop {
            let mut best: Option<(usize, Vec<JointPartition>, f64)> = None;
            for &a in &remaining {
                let candidate = self.split_all(&current, a);
                if candidate.len() == current.len() {
                    continue;
                }
                let value = self.unfairness(&candidate)?;
                if best.as_ref().is_none_or(|(_, _, b)| value > *b) {
                    best = Some((a, candidate, value));
                }
            }
            let Some((a, candidate, value)) = best else {
                break;
            };
            if value <= current_value + 1e-15 {
                break;
            }
            remaining.retain(|&x| x != a);
            current = candidate;
            current_value = value;
        }
        let mut attributes_used: Vec<usize> = current
            .iter()
            .flat_map(|p| p.predicate.constraints().iter().map(|c| c.attr))
            .collect();
        attributes_used.sort_unstable();
        attributes_used.dedup();
        Ok(JointAuditResult {
            partitions: current,
            unfairness: current_value,
            attributes_used,
            elapsed: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairjob_marketplace::{bucketise_numeric_protected, generate_uniform};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Scores where gender determines the joint structure (diagonal vs
    /// anti-diagonal) but both marginals are identical across genders.
    fn joint_biased_population() -> (fairjob_store::Table, Vec<f64>, Vec<f64>) {
        let mut workers = generate_uniform(600, 71);
        bucketise_numeric_protected(&mut workers).unwrap();
        let gender = workers.schema().index_of("gender").unwrap();
        let codes = workers.column(gender).as_categorical().unwrap().to_vec();
        let mut rng = StdRng::seed_from_u64(5);
        let mut a = Vec::with_capacity(workers.len());
        let mut b = Vec::with_capacity(workers.len());
        for &code in &codes {
            let base: f64 = rng.gen();
            a.push(base);
            b.push(if code == 0 { base } else { 1.0 - base });
        }
        (workers, a, b)
    }

    #[test]
    fn joint_audit_finds_marginal_invisible_bias() {
        let (workers, a, b) = joint_biased_population();
        // 1-D audits of either function restricted to gender: ~nothing.
        let cfg = crate::AuditConfig {
            attributes: Some(vec!["gender".into()]),
            ..Default::default()
        };
        let ctx1 = crate::AuditContext::new(&workers, &a, cfg).unwrap();
        let genders = ctx1.split(&ctx1.root(), 0).unwrap();
        let marginal = ctx1.unfairness(&genders).unwrap();
        assert!(marginal < 0.05, "marginals should look fair: {marginal}");

        // The joint audit localises the bias on gender with a large gap.
        let jctx = JointAuditContext::new(&workers, &a, &b, 8).unwrap();
        let result = jctx.balanced_greedy().unwrap();
        let gender = workers.schema().index_of("gender").unwrap();
        assert!(
            result.attributes_used.contains(&gender),
            "joint audit should split on gender: {:?}",
            result.attributes_used
        );
        assert!(
            result.unfairness > 10.0 * marginal.max(0.01),
            "joint {} vs marginal {marginal}",
            result.unfairness
        );
    }

    #[test]
    fn validation() {
        let (workers, a, b) = joint_biased_population();
        assert!(matches!(
            JointAuditContext::new(&workers, &a[..5], &b, 8),
            Err(AuditError::ScoreLength { .. })
        ));
        let mut bad = a.clone();
        bad[0] = 2.0;
        assert!(matches!(
            JointAuditContext::new(&workers, &bad, &b, 8),
            Err(AuditError::BadScore { .. })
        ));
        assert!(matches!(
            JointAuditContext::new(&workers, &a, &b, 0),
            Err(AuditError::Bins(_))
        ));
    }

    #[test]
    fn single_partition_unfairness_is_zero() {
        let (workers, a, b) = joint_biased_population();
        let jctx = JointAuditContext::new(&workers, &a, &b, 6).unwrap();
        let root = jctx.partition(Predicate::always(), RowSet::all(workers.len()));
        assert_eq!(jctx.unfairness(&[root]).unwrap(), 0.0);
    }

    #[test]
    fn unbiased_scores_show_only_noise_on_gender() {
        // Both functions identical and independent of gender: the
        // gender split's joint unfairness is sampling noise, far below
        // the designed diagonal/anti-diagonal case (~1.0).
        let mut workers = generate_uniform(400, 72);
        bucketise_numeric_protected(&mut workers).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let a: Vec<f64> = (0..workers.len()).map(|_| rng.gen()).collect();
        let jctx = JointAuditContext::new(&workers, &a, &a, 6).unwrap();
        let gender = workers.schema().index_of("gender").unwrap();
        let root = jctx.partition(Predicate::always(), RowSet::all(workers.len()));
        let genders = jctx.split_all(&[root], gender);
        assert_eq!(genders.len(), 2);
        let noise = jctx.unfairness(&genders).unwrap();
        assert!(
            noise < 0.15,
            "gender split of unbiased joint scores: {noise}"
        );

        // The designed case on the same population for contrast.
        let codes = workers.column(gender).as_categorical().unwrap().to_vec();
        let b: Vec<f64> = codes
            .iter()
            .zip(&a)
            .map(|(&c, &x)| if c == 0 { x } else { 1.0 - x })
            .collect();
        let jctx2 = JointAuditContext::new(&workers, &a, &b, 6).unwrap();
        let root2 = jctx2.partition(Predicate::always(), RowSet::all(workers.len()));
        let genders2 = jctx2.split_all(&[root2], gender);
        let designed = jctx2.unfairness(&genders2).unwrap();
        assert!(
            designed > 5.0 * noise,
            "designed {designed} vs noise {noise}"
        );
    }
}
