//! Average-pairwise-distance computations (Definition 2) over partition
//! histograms, including the pairwise matrix used by reports and a
//! threaded variant for large partitionings.

use crate::error::AuditError;
use crate::partition::Partition;
use fairjob_hist::{Histogram, HistogramDistance};

/// Average pairwise distance over a slice of histograms (empty
/// histograms are skipped; fewer than two non-empty → 0).
///
/// # Errors
///
/// [`AuditError::Distance`] from the underlying distance.
pub fn average_pairwise(
    histograms: &[&Histogram],
    distance: &dyn HistogramDistance,
) -> Result<f64, AuditError> {
    let live: Vec<&&Histogram> = histograms.iter().filter(|h| !h.is_empty()).collect();
    if live.len() < 2 {
        return Ok(0.0);
    }
    let mut sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..live.len() {
        for j in i + 1..live.len() {
            sum += distance.distance(live[i], live[j])?;
            pairs += 1;
        }
    }
    Ok(sum / pairs as f64)
}

/// The full pairwise distance matrix between partitions (symmetric, zero
/// diagonal). Entry `(i, j)` involving an empty partition is 0.
///
/// # Errors
///
/// [`AuditError::Distance`] from the underlying distance.
pub fn pairwise_matrix(
    parts: &[Partition],
    distance: &dyn HistogramDistance,
) -> Result<Vec<Vec<f64>>, AuditError> {
    let n = parts.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            if parts[i].is_empty() || parts[j].is_empty() {
                continue;
            }
            let d = distance.distance(&parts[i].histogram, &parts[j].histogram)?;
            m[i][j] = d;
            m[j][i] = d;
        }
    }
    Ok(m)
}

/// Threaded average pairwise distance: splits the pair index space over
/// `threads` OS threads. Exactly equal to [`average_pairwise`]; pays off
/// once partition counts reach the high hundreds (the full partitioning
/// of the 7300-worker dataset has ~1800 partitions → ~1.6 M pairs).
///
/// # Errors
///
/// [`AuditError::Distance`] from the underlying distance.
pub fn average_pairwise_parallel(
    histograms: &[&Histogram],
    distance: &dyn HistogramDistance,
    threads: usize,
) -> Result<f64, AuditError> {
    let live: Vec<&Histogram> = histograms
        .iter()
        .filter(|h| !h.is_empty())
        .copied()
        .collect();
    let n = live.len();
    if n < 2 {
        return Ok(0.0);
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return average_pairwise(histograms, distance);
    }
    let results: Vec<Result<f64, AuditError>> = std::thread::scope(|scope| {
        let live = &live;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    // Strided rows: thread t handles rows t, t+threads, ...
                    let mut sum = 0.0;
                    let mut i = t;
                    while i < n {
                        for j in i + 1..n {
                            sum += distance.distance(live[i], live[j])?;
                        }
                        i += threads;
                    }
                    Ok(sum)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut total = 0.0;
    for r in results {
        total += r?;
    }
    let pairs = n * (n - 1) / 2;
    Ok(total / pairs as f64)
}

/// Keyed distance lookup used by [`PairwiseAverager`] when driven by the
/// evaluation engine ([`crate::engine::EvalEngine`]): keys identify the
/// histograms' partitions so repeated pairs can be served from a memo
/// cache instead of recomputed.
pub trait DistanceOracle {
    /// Distance between two histograms identified by cache keys. Keys
    /// carrying [`UNKEYED_BIT`] must bypass any cache.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance.
    fn keyed_distance(
        &self,
        key_a: u128,
        a: &Histogram,
        key_b: u128,
        b: &Histogram,
    ) -> Result<f64, AuditError>;
}

/// Sentinel bit marking keys the averager assigned itself to histograms
/// inserted without a partition fingerprint ([`Predicate::fingerprint`]
/// keeps this bit clear). Oracles bypass their cache for such pairs.
///
/// [`Predicate::fingerprint`]: fairjob_store::Predicate::fingerprint
pub const UNKEYED_BIT: u128 = 1 << 127;

/// How the averager resolves distances: a plain distance (every call
/// computes) or a keyed oracle (calls may be served from a cache).
enum Oracle<'d> {
    Plain(&'d dyn HistogramDistance),
    Keyed(&'d dyn DistanceOracle),
}

fn oracle_distance(
    oracle: &Oracle<'_>,
    key_a: u128,
    a: &Histogram,
    key_b: u128,
    b: &Histogram,
) -> Result<f64, AuditError> {
    match oracle {
        Oracle::Plain(d) => Ok(d.distance(a, b)?),
        Oracle::Keyed(o) => o.keyed_distance(key_a, a, key_b, b),
    }
}

/// Neumaier-compensated add: `sum += x` keeping the low-order bits lost
/// to rounding in `comp`.
fn neumaier_add(sum: &mut f64, comp: &mut f64, x: f64) {
    let t = *sum + x;
    *comp += if sum.abs() >= x.abs() {
        (*sum - t) + x
    } else {
        (x - t) + *sum
    };
    *sum = t;
}

/// Recompute the pairwise sum exactly every this many insert/remove
/// operations. Bounds drift without changing asymptotics: the rebuild is
/// O(k²) distance *lookups* (cache hits under a keyed oracle), amortised
/// to O(k²/4096) per operation.
const REBUILD_EVERY: usize = 4096;

/// Incremental average-pairwise-distance maintenance.
///
/// Search procedures repeatedly ask "what is the average pairwise
/// distance if partition *p* were replaced by its children?" — a full
/// recomputation costs O(k²) distances while the delta touches only the
/// pairs involving *p* and its children. `PairwiseAverager` maintains
/// the pairwise sum under insertions and removals at O(k) distances per
/// operation.
///
/// The pairwise sum uses Neumaier-compensated summation plus a periodic
/// exact rebuild, keeping the incremental value within 1e-9 of a batch
/// computation over thousands of insert/remove cycles (load-bearing for
/// the evaluation engine's delta scoring).
///
/// Freed slot ids are reused by later inserts, so `remove` is only
/// idempotent until the next insert.
pub struct PairwiseAverager<'d> {
    oracle: Oracle<'d>,
    /// Live `(key, histogram)` entries by slot; removed slots are `None`.
    slots: Vec<Option<(u128, Histogram)>>,
    /// Slot ids freed by `remove`, reused by later inserts so the slots
    /// vector does not grow under score/revert cycles.
    free: Vec<usize>,
    live: usize,
    pair_sum: f64,
    comp: f64,
    ops_since_rebuild: usize,
    next_unkeyed: u64,
}

impl<'d> PairwiseAverager<'d> {
    /// An empty averager over the given distance (every pair computed).
    pub fn new(distance: &'d dyn HistogramDistance) -> Self {
        Self::with_oracle(Oracle::Plain(distance))
    }

    /// An empty averager resolving distances through a keyed oracle
    /// (pairs of keyed histograms may be served from the oracle's cache).
    pub fn keyed(oracle: &'d dyn DistanceOracle) -> Self {
        Self::with_oracle(Oracle::Keyed(oracle))
    }

    fn with_oracle(oracle: Oracle<'d>) -> Self {
        PairwiseAverager {
            oracle,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            pair_sum: 0.0,
            comp: 0.0,
            ops_since_rebuild: 0,
            next_unkeyed: 0,
        }
    }

    /// Seed with an initial set of histograms.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance.
    pub fn with_histograms(
        distance: &'d dyn HistogramDistance,
        histograms: impl IntoIterator<Item = Histogram>,
    ) -> Result<Self, AuditError> {
        let mut this = PairwiseAverager::new(distance);
        for h in histograms {
            this.insert(h)?;
        }
        Ok(this)
    }

    /// Number of live histograms.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live histograms remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a histogram without a cache key (pairs involving it are
    /// always computed, never cached), returning its slot id. Empty
    /// histograms are accepted but contribute nothing (mirroring
    /// [`average_pairwise`]'s skip rule).
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance.
    pub fn insert(&mut self, histogram: Histogram) -> Result<usize, AuditError> {
        let key = UNKEYED_BIT | u128::from(self.next_unkeyed);
        self.next_unkeyed += 1;
        self.insert_keyed(key, histogram)
    }

    /// Insert a histogram under a cache key (a partition fingerprint, or
    /// a key previously returned by [`PairwiseAverager::remove`]),
    /// returning its slot id.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance.
    pub fn insert_keyed(&mut self, key: u128, histogram: Histogram) -> Result<usize, AuditError> {
        if !histogram.is_empty() {
            let mut delta = 0.0;
            let mut delta_comp = 0.0;
            for (other_key, other) in self.slots.iter().flatten() {
                if !other.is_empty() {
                    let d = oracle_distance(&self.oracle, key, &histogram, *other_key, other)?;
                    neumaier_add(&mut delta, &mut delta_comp, d);
                }
            }
            neumaier_add(&mut self.pair_sum, &mut self.comp, delta + delta_comp);
            self.live += 1;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some((key, histogram));
                slot
            }
            None => {
                self.slots.push(Some((key, histogram)));
                self.slots.len() - 1
            }
        };
        self.maybe_rebuild()?;
        Ok(slot)
    }

    /// Remove the histogram at `slot`, returning its key and histogram
    /// (`None` if the slot was already removed). The freed slot id is
    /// reused by later inserts.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance.
    pub fn remove(&mut self, slot: usize) -> Result<Option<(u128, Histogram)>, AuditError> {
        let Some((key, victim)) = self.slots.get_mut(slot).and_then(Option::take) else {
            return Ok(None);
        };
        self.free.push(slot);
        if victim.is_empty() {
            return Ok(Some((key, victim)));
        }
        let mut delta = 0.0;
        let mut delta_comp = 0.0;
        for (other_key, other) in self.slots.iter().flatten() {
            if !other.is_empty() {
                let d = oracle_distance(&self.oracle, key, &victim, *other_key, other)?;
                neumaier_add(&mut delta, &mut delta_comp, d);
            }
        }
        neumaier_add(&mut self.pair_sum, &mut self.comp, -(delta + delta_comp));
        self.live -= 1;
        self.maybe_rebuild()?;
        Ok(Some((key, victim)))
    }

    fn maybe_rebuild(&mut self) -> Result<(), AuditError> {
        self.ops_since_rebuild += 1;
        if self.ops_since_rebuild < REBUILD_EVERY {
            return Ok(());
        }
        let (sum, comp) = {
            let live: Vec<(u128, &Histogram)> = self
                .slots
                .iter()
                .flatten()
                .filter(|(_, h)| !h.is_empty())
                .map(|(k, h)| (*k, h))
                .collect();
            let mut sum = 0.0;
            let mut comp = 0.0;
            for i in 0..live.len() {
                for j in i + 1..live.len() {
                    let d =
                        oracle_distance(&self.oracle, live[i].0, live[i].1, live[j].0, live[j].1)?;
                    neumaier_add(&mut sum, &mut comp, d);
                }
            }
            (sum, comp)
        };
        self.pair_sum = sum;
        self.comp = comp;
        self.ops_since_rebuild = 0;
        Ok(())
    }

    /// Current average pairwise distance (0 with fewer than two live
    /// histograms).
    pub fn average(&self) -> f64 {
        if self.live < 2 {
            return 0.0;
        }
        let pairs = self.live * (self.live - 1) / 2;
        (self.pair_sum + self.comp) / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairjob_hist::distance::Emd1d;
    use fairjob_hist::BinSpec;

    fn h(values: &[f64]) -> Histogram {
        Histogram::from_values(
            BinSpec::equal_width(0.0, 1.0, 10).unwrap(),
            values.iter().copied(),
        )
    }

    #[test]
    fn averages_all_pairs() {
        let (a, b, c) = (h(&[0.05]), h(&[0.55]), h(&[0.95]));
        // EMDs: a-b 0.5, a-c 0.9, b-c 0.4 -> avg 0.6.
        let avg = average_pairwise(&[&a, &b, &c], &Emd1d).unwrap();
        assert!((avg - 0.6).abs() < 1e-9);
    }

    #[test]
    fn empty_histograms_are_skipped() {
        let (a, b) = (h(&[0.05]), h(&[0.95]));
        let e = Histogram::empty(BinSpec::equal_width(0.0, 1.0, 10).unwrap());
        let avg = average_pairwise(&[&a, &e, &b], &Emd1d).unwrap();
        assert!((avg - 0.9).abs() < 1e-9);
        assert_eq!(average_pairwise(&[&a, &e], &Emd1d).unwrap(), 0.0);
    }

    #[test]
    fn fewer_than_two_is_zero() {
        let a = h(&[0.5]);
        assert_eq!(average_pairwise(&[&a], &Emd1d).unwrap(), 0.0);
        assert_eq!(average_pairwise(&[], &Emd1d).unwrap(), 0.0);
    }

    #[test]
    fn parallel_matches_serial() {
        let hists: Vec<Histogram> = (0..25)
            .map(|i| h(&[i as f64 / 25.0, (i as f64 / 25.0 + 0.3).min(1.0)]))
            .collect();
        let refs: Vec<&Histogram> = hists.iter().collect();
        let serial = average_pairwise(&refs, &Emd1d).unwrap();
        for threads in [1, 2, 4, 7, 32] {
            let par = average_pairwise_parallel(&refs, &Emd1d, threads).unwrap();
            assert!((serial - par).abs() < 1e-12, "threads={threads}");
        }
    }

    #[test]
    fn averager_matches_batch_computation() {
        let values = [0.05, 0.15, 0.35, 0.55, 0.75, 0.95];
        let hists: Vec<Histogram> = values
            .iter()
            .map(|&v| h(&[v, (v + 0.2).min(1.0)]))
            .collect();
        let refs: Vec<&Histogram> = hists.iter().collect();
        let batch = average_pairwise(&refs, &Emd1d).unwrap();
        let avg = PairwiseAverager::with_histograms(&Emd1d, hists.clone()).unwrap();
        assert!((avg.average() - batch).abs() < 1e-12);
        assert_eq!(avg.len(), 6);
    }

    #[test]
    fn averager_replace_one_by_children() {
        // Replace slot 0 by two "children" and compare with a batch
        // computation over the final set.
        let hists: Vec<Histogram> = [0.1, 0.5, 0.9].iter().map(|&v| h(&[v])).collect();
        let mut avg = PairwiseAverager::with_histograms(&Emd1d, hists).unwrap();
        avg.remove(0).unwrap();
        avg.insert(h(&[0.05])).unwrap();
        avg.insert(h(&[0.15])).unwrap();
        let final_set = [h(&[0.5]), h(&[0.9]), h(&[0.05]), h(&[0.15])];
        let refs: Vec<&Histogram> = final_set.iter().collect();
        let batch = average_pairwise(&refs, &Emd1d).unwrap();
        assert!((avg.average() - batch).abs() < 1e-12);
    }

    #[test]
    fn averager_handles_empty_histograms_and_double_remove() {
        let spec = BinSpec::equal_width(0.0, 1.0, 10).unwrap();
        let mut avg = PairwiseAverager::new(&Emd1d);
        let empty_slot = avg.insert(Histogram::empty(spec)).unwrap();
        avg.insert(h(&[0.1])).unwrap();
        avg.insert(h(&[0.9])).unwrap();
        assert_eq!(avg.len(), 2, "empty histogram does not count");
        assert!((avg.average() - 0.8).abs() < 1e-9);
        avg.remove(empty_slot).unwrap();
        avg.remove(empty_slot).unwrap(); // idempotent
        assert!((avg.average() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn averager_degenerate_sizes() {
        let mut avg = PairwiseAverager::new(&Emd1d);
        assert!(avg.is_empty());
        assert_eq!(avg.average(), 0.0);
        let slot = avg.insert(h(&[0.4])).unwrap();
        assert_eq!(avg.average(), 0.0);
        avg.remove(slot).unwrap();
        assert_eq!(avg.average(), 0.0);
        assert!(avg.is_empty());
    }

    #[test]
    fn averager_stays_exact_over_thousands_of_cycles() {
        // Churn one averager through thousands of insert/remove cycles
        // (crossing several exact-rebuild boundaries) and require the
        // incremental average to stay within 1e-9 of a fresh batch
        // computation. The old implementation drifted and masked it
        // with `.max(0.0)`.
        let fresh = |cycle: usize| {
            h(&[
                (cycle % 97) as f64 / 97.0,
                ((cycle % 53) as f64 / 53.0 + 0.1).min(1.0),
            ])
        };
        let base: Vec<Histogram> = (0..12)
            .map(|i| h(&[i as f64 / 12.0, ((i as f64 + 3.0) / 12.0).min(1.0)]))
            .collect();
        let mut avg = PairwiseAverager::with_histograms(&Emd1d, base.clone()).unwrap();
        let mut slots: Vec<usize> = (0..base.len()).collect();
        let mut finals: Vec<Histogram> = base.clone();
        for cycle in 0..5000usize {
            let victim = cycle % base.len();
            avg.remove(slots[victim]).unwrap();
            slots[victim] = avg.insert(fresh(cycle)).unwrap();
            finals[victim] = fresh(cycle);
        }
        let refs: Vec<&Histogram> = finals.iter().collect();
        let batch = average_pairwise(&refs, &Emd1d).unwrap();
        assert!(
            (avg.average() - batch).abs() < 1e-9,
            "incremental {} vs batch {} after 5000 cycles",
            avg.average(),
            batch
        );
        assert_eq!(avg.len(), base.len());
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut avg = PairwiseAverager::new(&Emd1d);
        let a = avg.insert(h(&[0.1])).unwrap();
        let _b = avg.insert(h(&[0.5])).unwrap();
        let (_, hist) = avg.remove(a).unwrap().expect("slot was live");
        assert_eq!(hist.total(), 1.0);
        assert!(avg.remove(a).unwrap().is_none(), "second remove is a no-op");
        let c = avg.insert(h(&[0.9])).unwrap();
        assert_eq!(c, a, "freed slot id is reused");
        assert!((avg.average() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn matrix_is_symmetric_zero_diagonal() {
        use fairjob_store::{Predicate, RowSet};
        let parts: Vec<Partition> = [0.05, 0.55, 0.95]
            .iter()
            .enumerate()
            .map(|(i, &v)| Partition {
                predicate: Predicate::always(),
                rows: RowSet::from_rows(vec![i as u32]),
                histogram: h(&[v]),
            })
            .collect();
        let m = pairwise_matrix(&parts, &Emd1d).unwrap();
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, &value) in row.iter().enumerate() {
                assert_eq!(value, m[j][i]);
            }
        }
        assert!((m[0][2] - 0.9).abs() < 1e-9);
    }
}
