//! Average-pairwise-distance computations (Definition 2) over partition
//! histograms: the serial reference, the bound-pruned batch kernel
//! ([`pairwise_emd_batch`]), the pairwise matrix used by reports, and
//! the incremental [`PairwiseAverager`].

use crate::error::AuditError;
use crate::partition::Partition;
use crate::pool::WorkerPool;
use crate::scratch::with_scratch;
use fairjob_hist::{Histogram, HistogramDistance, ScratchStats};

/// Floating-point slack added to every bound-vs-incumbent comparison
/// before pruning. Pruning only ever *skips work whose outcome is
/// already decided*: a candidate is abandoned only when its upper bound
/// plus this margin is still below the incumbent, and the margin is
/// orders of magnitude above the accumulated rounding error of an
/// average over `< 2^32` pairs of values in `[0, 1]` (~1e-10), so a
/// pruned candidate can never have won and results stay bit-identical
/// to the unpruned search.
pub const PRUNE_MARGIN: f64 = 1e-7;

/// Fixed chunk size (in pairs) for batched exact solves. Independent of
/// the thread count, so chunk counts — and therefore the `pool_tasks`
/// counter and the serial chunk-order reduction — are identical no
/// matter how many workers execute the chunks.
pub(crate) const PAIR_CHUNK: usize = 1024;

/// What the screen pass decided about one pair. Computed independently
/// per pair (parallelisable) and merged serially in pair order, so the
/// screen's accumulations are bit-identical for every thread count.
#[derive(Clone, Copy)]
enum ScreenVerdict {
    /// The bound is exact: this value IS the distance.
    Exact(f64),
    /// Inexact bound: the pair must be solved; carry its upper bound.
    Bounded(f64),
    /// No bound available: the pair must be solved blind.
    Unbounded,
}

/// Screen one pair. Pure per-pair work — the only screen state
/// (`upper_sum`, `misses`, `all_bounded`) is accumulated by the caller
/// in serial pair order, which is what keeps the parallel screen
/// bit-identical to the serial one.
fn screen_pair(distance: &dyn HistogramDistance, a: &Histogram, b: &Histogram) -> ScreenVerdict {
    match distance.bounds(a, b) {
        Some(bd) if bd.exact => ScreenVerdict::Exact(bd.lower),
        Some(bd) => ScreenVerdict::Bounded(bd.upper),
        None => ScreenVerdict::Unbounded,
    }
}

/// Counters from one [`pairwise_emd_batch`] evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Candidate pairs laid out in the arena.
    pub pairs: u64,
    /// Pairs settled by the bound screen alone (no exact solver ran).
    pub bounds_screened: u64,
    /// Pairs that survived the screen and paid an exact solve.
    pub exact_solves: u64,
    /// Chunks dispatched through the worker-pool scheduler (counted
    /// even when executed inline at parallelism 1, so the counter is
    /// thread-count independent).
    pub pool_tasks: u64,
    /// Exact solves whose ground matrix came from a cache tier (the
    /// scratch-local slot or the process-wide ground cache). With a
    /// primed distance this equals `exact_solves` — no worker ever
    /// rebuilds a ground matrix.
    pub ground_cache_hits: u64,
    /// Exact solves beyond the first in their chunk — each one reused
    /// the worker's persistent solver workspace instead of allocating.
    pub scratch_reuses: u64,
    /// Exact flow solves that warm-started from the previous pair's
    /// round-1 Dijkstra (consecutive pairs sharing a support set).
    pub warm_starts: u64,
}

/// Result of one [`pairwise_emd_batch`] evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchValue {
    /// The exact average pairwise distance — bit-identical to
    /// [`average_pairwise`] over the same histograms whenever the
    /// distance's exact bounds are (they are for `Emd1d`).
    Average(f64),
    /// The batch was abandoned: its average provably cannot exceed this
    /// upper bound, which fell short of the caller's incumbent. No
    /// exact solves were spent.
    Abandoned(f64),
}

/// Value plus counters from one [`pairwise_emd_batch`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchOutcome {
    /// The average, or the upper bound it was abandoned at.
    pub value: BatchValue,
    /// What the funnel did to get there.
    pub stats: BatchStats,
}

/// Bound-pruned, batched pairwise-distance kernel.
///
/// Lays out every candidate pair in one flat structure-of-arrays arena
/// (row-major upper triangle — the serial evaluation order), screens
/// the arena with the distance's cheap bounds
/// ([`HistogramDistance::bounds`], fed by each histogram's cached
/// prefix CDF), and runs exact solves only on the survivors, in
/// fixed-size chunks on the persistent worker pool. The final reduction
/// is serial in pair order, so the result is bit-identical across
/// thread counts — and bit-identical to [`average_pairwise`] whenever
/// the screened values are (exact bounds reproduce `Emd1d` bit for
/// bit; distances without bounds simply have every pair solved).
///
/// With `abandon_below = Some(best)`, the kernel additionally gives up
/// on the whole batch — before any exact solve — when every pair had a
/// bound and the average of the upper bounds plus [`PRUNE_MARGIN`]
/// still falls below `best`. That is the branch-and-bound step of the
/// candidate search: an abandoned candidate provably cannot beat the
/// incumbent.
///
/// # Errors
///
/// [`AuditError::Distance`] from the underlying distance.
pub fn pairwise_emd_batch(
    histograms: &[&Histogram],
    distance: &dyn HistogramDistance,
    threads: usize,
    abandon_below: Option<f64>,
) -> Result<BatchOutcome, AuditError> {
    let mut stats = BatchStats::default();
    let live: Vec<&Histogram> = histograms
        .iter()
        .filter(|h| !h.is_empty())
        .copied()
        .collect();
    let n = live.len();
    if n < 2 {
        return Ok(BatchOutcome {
            value: BatchValue::Average(0.0),
            stats,
        });
    }
    let pair_count = n * (n - 1) / 2;
    let mut pair_i: Vec<u32> = Vec::with_capacity(pair_count);
    let mut pair_j: Vec<u32> = Vec::with_capacity(pair_count);
    for i in 0..n {
        for j in i + 1..n {
            pair_i.push(i as u32);
            pair_j.push(j as u32);
        }
    }
    stats.pairs = pair_count as u64;

    // Screen pass: settle what the cached-CDF bounds can, keep an upper
    // bound on the whole sum, and collect the survivors. Per-pair
    // verdicts are independent, so batches larger than one chunk compute
    // them on the worker pool; the accumulation below is always serial
    // in pair order, making the screen bit-identical across thread
    // counts (and to the single-threaded loop it replaced). The chunk
    // count depends only on the pair count, so `pool_tasks` stays
    // thread-count independent.
    let verdicts: Vec<ScreenVerdict> = if pair_count > PAIR_CHUNK {
        let n_chunks = pair_count.div_ceil(PAIR_CHUNK);
        stats.pool_tasks += n_chunks as u64;
        let chunked: Vec<Vec<ScreenVerdict>> =
            WorkerPool::global().run_chunks(threads.max(1), n_chunks, |c| {
                let lo = c * PAIR_CHUNK;
                let hi = (lo + PAIR_CHUNK).min(pair_count);
                (lo..hi)
                    .map(|k| {
                        let (a, b) = (live[pair_i[k] as usize], live[pair_j[k] as usize]);
                        screen_pair(distance, a, b)
                    })
                    .collect()
            });
        chunked.into_iter().flatten().collect()
    } else {
        (0..pair_count)
            .map(|k| {
                let (a, b) = (live[pair_i[k] as usize], live[pair_j[k] as usize]);
                screen_pair(distance, a, b)
            })
            .collect()
    };
    let mut vals: Vec<f64> = vec![f64::NAN; pair_count];
    let mut misses: Vec<usize> = Vec::new();
    let mut upper_sum = 0.0;
    let mut all_bounded = true;
    for (k, verdict) in verdicts.into_iter().enumerate() {
        match verdict {
            ScreenVerdict::Exact(d) => {
                vals[k] = d;
                upper_sum += d;
            }
            ScreenVerdict::Bounded(upper) => {
                misses.push(k);
                upper_sum += upper;
            }
            ScreenVerdict::Unbounded => {
                misses.push(k);
                all_bounded = false;
            }
        }
    }

    if let Some(best) = abandon_below {
        if all_bounded {
            let upper_avg = upper_sum / pair_count as f64;
            if upper_avg + PRUNE_MARGIN < best {
                stats.bounds_screened = pair_count as u64;
                return Ok(BatchOutcome {
                    value: BatchValue::Abandoned(upper_avg),
                    stats,
                });
            }
        }
    }
    stats.bounds_screened = (pair_count - misses.len()) as u64;
    stats.exact_solves = misses.len() as u64;

    // Exact solves on the survivors through the persistent pool. Prime
    // the distance's shared ground cache once, serially, so the workers
    // below only ever *hit* the cache — the build never races and the
    // hit counters stay independent of the thread schedule.
    if !misses.is_empty() {
        distance.prime(live[pair_i[misses[0]] as usize])?;
        let chunks: Vec<&[usize]> = misses.chunks(PAIR_CHUNK).collect();
        stats.pool_tasks += chunks.len() as u64;
        let results: Vec<Result<(Vec<f64>, ScratchStats), AuditError>> = WorkerPool::global()
            .run_chunks(threads.max(1), chunks.len(), |c| {
                with_scratch(|scratch| {
                    scratch.begin_chunk();
                    let chunk_vals: Result<Vec<f64>, AuditError> = chunks[c]
                        .iter()
                        .map(|&k| {
                            let (a, b) = (live[pair_i[k] as usize], live[pair_j[k] as usize]);
                            distance
                                .distance_with(a, b, scratch)
                                .map_err(AuditError::from)
                        })
                        .collect();
                    chunk_vals.map(|v| (v, scratch.take_stats()))
                })
            });
        let mut solver = ScratchStats::default();
        for (chunk, result) in chunks.iter().zip(results) {
            let (chunk_vals, chunk_stats) = result?;
            solver.merge(chunk_stats);
            for (&k, d) in chunk.iter().zip(chunk_vals) {
                vals[k] = d;
            }
        }
        stats.ground_cache_hits = solver.ground_cache_hits;
        stats.scratch_reuses = solver.scratch_reuses;
        stats.warm_starts = solver.warm_starts;
    }

    // Serial reduce in pair order.
    let mut sum = 0.0;
    for &v in &vals {
        sum += v;
    }
    Ok(BatchOutcome {
        value: BatchValue::Average(sum / pair_count as f64),
        stats,
    })
}

/// Average pairwise distance over a slice of histograms (empty
/// histograms are skipped; fewer than two non-empty → 0).
///
/// # Errors
///
/// [`AuditError::Distance`] from the underlying distance.
pub fn average_pairwise(
    histograms: &[&Histogram],
    distance: &dyn HistogramDistance,
) -> Result<f64, AuditError> {
    let live: Vec<&&Histogram> = histograms.iter().filter(|h| !h.is_empty()).collect();
    if live.len() < 2 {
        return Ok(0.0);
    }
    let mut sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..live.len() {
        for j in i + 1..live.len() {
            sum += distance.distance(live[i], live[j])?;
            pairs += 1;
        }
    }
    Ok(sum / pairs as f64)
}

/// The full pairwise distance matrix between partitions (symmetric, zero
/// diagonal). Entry `(i, j)` involving an empty partition is 0.
///
/// Each unordered pair is computed once, on the strict upper triangle,
/// and mirrored; liveness is resolved once per partition up front
/// instead of twice per pair, and dead rows short-circuit their whole
/// row of pair checks.
///
/// # Errors
///
/// [`AuditError::Distance`] from the underlying distance.
pub fn pairwise_matrix(
    parts: &[Partition],
    distance: &dyn HistogramDistance,
) -> Result<Vec<Vec<f64>>, AuditError> {
    let n = parts.len();
    let live: Vec<bool> = parts.iter().map(|p| !p.is_empty()).collect();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        if !live[i] {
            continue;
        }
        for j in i + 1..n {
            if !live[j] {
                continue;
            }
            let d = distance.distance(&parts[i].histogram, &parts[j].histogram)?;
            m[i][j] = d;
            m[j][i] = d;
        }
    }
    Ok(m)
}

/// Threaded average pairwise distance over the persistent worker pool.
/// Bit-identical to [`average_pairwise`] for every thread count (the
/// batch kernel reduces serially in pair order); pays off once
/// partition counts reach the high hundreds (the full partitioning of
/// the 7300-worker dataset has ~1800 partitions → ~1.6 M pairs).
///
/// # Errors
///
/// [`AuditError::Distance`] from the underlying distance.
pub fn average_pairwise_parallel(
    histograms: &[&Histogram],
    distance: &dyn HistogramDistance,
    threads: usize,
) -> Result<f64, AuditError> {
    match pairwise_emd_batch(histograms, distance, threads, None)?.value {
        BatchValue::Average(value) => Ok(value),
        BatchValue::Abandoned(_) => unreachable!("no abandon threshold was set"),
    }
}

/// Keyed distance lookup used by [`PairwiseAverager`] when driven by the
/// evaluation engine ([`crate::engine::EvalEngine`]): keys identify the
/// histograms' partitions so repeated pairs can be served from a memo
/// cache instead of recomputed.
pub trait DistanceOracle {
    /// Distance between two histograms identified by cache keys. Keys
    /// carrying [`UNKEYED_BIT`] must bypass any cache.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance.
    fn keyed_distance(
        &self,
        key_a: u128,
        a: &Histogram,
        key_b: u128,
        b: &Histogram,
    ) -> Result<f64, AuditError>;
}

/// Sentinel bit marking keys the averager assigned itself to histograms
/// inserted without a partition fingerprint ([`Predicate::fingerprint`]
/// keeps this bit clear). Oracles bypass their cache for such pairs.
///
/// [`Predicate::fingerprint`]: fairjob_store::Predicate::fingerprint
pub const UNKEYED_BIT: u128 = 1 << 127;

/// How the averager resolves distances: a plain distance (every call
/// computes) or a keyed oracle (calls may be served from a cache).
enum Oracle<'d> {
    Plain(&'d dyn HistogramDistance),
    Keyed(&'d dyn DistanceOracle),
}

fn oracle_distance(
    oracle: &Oracle<'_>,
    key_a: u128,
    a: &Histogram,
    key_b: u128,
    b: &Histogram,
) -> Result<f64, AuditError> {
    match oracle {
        Oracle::Plain(d) => Ok(d.distance(a, b)?),
        Oracle::Keyed(o) => o.keyed_distance(key_a, a, key_b, b),
    }
}

/// Neumaier-compensated add: `sum += x` keeping the low-order bits lost
/// to rounding in `comp`.
fn neumaier_add(sum: &mut f64, comp: &mut f64, x: f64) {
    let t = *sum + x;
    *comp += if sum.abs() >= x.abs() {
        (*sum - t) + x
    } else {
        (x - t) + *sum
    };
    *sum = t;
}

/// Recompute the pairwise sum exactly every this many insert/remove
/// operations. Bounds drift without changing asymptotics: the rebuild is
/// O(k²) distance *lookups* (cache hits under a keyed oracle), amortised
/// to O(k²/4096) per operation.
const REBUILD_EVERY: usize = 4096;

/// Incremental average-pairwise-distance maintenance.
///
/// Search procedures repeatedly ask "what is the average pairwise
/// distance if partition *p* were replaced by its children?" — a full
/// recomputation costs O(k²) distances while the delta touches only the
/// pairs involving *p* and its children. `PairwiseAverager` maintains
/// the pairwise sum under insertions and removals at O(k) distances per
/// operation.
///
/// The pairwise sum uses Neumaier-compensated summation plus a periodic
/// exact rebuild, keeping the incremental value within 1e-9 of a batch
/// computation over thousands of insert/remove cycles (load-bearing for
/// the evaluation engine's delta scoring).
///
/// Freed slot ids are reused by later inserts, so `remove` is only
/// idempotent until the next insert.
pub struct PairwiseAverager<'d> {
    oracle: Oracle<'d>,
    /// Live `(key, histogram)` entries by slot; removed slots are `None`.
    slots: Vec<Option<(u128, Histogram)>>,
    /// Slot ids freed by `remove`, reused by later inserts so the slots
    /// vector does not grow under score/revert cycles.
    free: Vec<usize>,
    live: usize,
    pair_sum: f64,
    comp: f64,
    ops_since_rebuild: usize,
    next_unkeyed: u64,
}

impl<'d> PairwiseAverager<'d> {
    /// An empty averager over the given distance (every pair computed).
    pub fn new(distance: &'d dyn HistogramDistance) -> Self {
        Self::with_oracle(Oracle::Plain(distance))
    }

    /// An empty averager resolving distances through a keyed oracle
    /// (pairs of keyed histograms may be served from the oracle's cache).
    pub fn keyed(oracle: &'d dyn DistanceOracle) -> Self {
        Self::with_oracle(Oracle::Keyed(oracle))
    }

    fn with_oracle(oracle: Oracle<'d>) -> Self {
        PairwiseAverager {
            oracle,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            pair_sum: 0.0,
            comp: 0.0,
            ops_since_rebuild: 0,
            next_unkeyed: 0,
        }
    }

    /// Seed with an initial set of histograms.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance.
    pub fn with_histograms(
        distance: &'d dyn HistogramDistance,
        histograms: impl IntoIterator<Item = Histogram>,
    ) -> Result<Self, AuditError> {
        let mut this = PairwiseAverager::new(distance);
        for h in histograms {
            this.insert(h)?;
        }
        Ok(this)
    }

    /// Number of live histograms.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live histograms remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a histogram without a cache key (pairs involving it are
    /// always computed, never cached), returning its slot id. Empty
    /// histograms are accepted but contribute nothing (mirroring
    /// [`average_pairwise`]'s skip rule).
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance.
    pub fn insert(&mut self, histogram: Histogram) -> Result<usize, AuditError> {
        let key = UNKEYED_BIT | u128::from(self.next_unkeyed);
        self.next_unkeyed += 1;
        self.insert_keyed(key, histogram)
    }

    /// Insert a histogram under a cache key (a partition fingerprint, or
    /// a key previously returned by [`PairwiseAverager::remove`]),
    /// returning its slot id.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance.
    pub fn insert_keyed(&mut self, key: u128, histogram: Histogram) -> Result<usize, AuditError> {
        if !histogram.is_empty() {
            let mut delta = 0.0;
            let mut delta_comp = 0.0;
            for (other_key, other) in self.slots.iter().flatten() {
                if !other.is_empty() {
                    let d = oracle_distance(&self.oracle, key, &histogram, *other_key, other)?;
                    neumaier_add(&mut delta, &mut delta_comp, d);
                }
            }
            neumaier_add(&mut self.pair_sum, &mut self.comp, delta + delta_comp);
            self.live += 1;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some((key, histogram));
                slot
            }
            None => {
                self.slots.push(Some((key, histogram)));
                self.slots.len() - 1
            }
        };
        self.maybe_rebuild()?;
        Ok(slot)
    }

    /// Remove the histogram at `slot`, returning its key and histogram
    /// (`None` if the slot was already removed). The freed slot id is
    /// reused by later inserts.
    ///
    /// # Errors
    ///
    /// [`AuditError::Distance`] from the underlying distance.
    pub fn remove(&mut self, slot: usize) -> Result<Option<(u128, Histogram)>, AuditError> {
        let Some((key, victim)) = self.slots.get_mut(slot).and_then(Option::take) else {
            return Ok(None);
        };
        self.free.push(slot);
        if victim.is_empty() {
            return Ok(Some((key, victim)));
        }
        let mut delta = 0.0;
        let mut delta_comp = 0.0;
        for (other_key, other) in self.slots.iter().flatten() {
            if !other.is_empty() {
                let d = oracle_distance(&self.oracle, key, &victim, *other_key, other)?;
                neumaier_add(&mut delta, &mut delta_comp, d);
            }
        }
        neumaier_add(&mut self.pair_sum, &mut self.comp, -(delta + delta_comp));
        self.live -= 1;
        self.maybe_rebuild()?;
        Ok(Some((key, victim)))
    }

    fn maybe_rebuild(&mut self) -> Result<(), AuditError> {
        self.ops_since_rebuild += 1;
        if self.ops_since_rebuild < REBUILD_EVERY {
            return Ok(());
        }
        let (sum, comp) = {
            let live: Vec<(u128, &Histogram)> = self
                .slots
                .iter()
                .flatten()
                .filter(|(_, h)| !h.is_empty())
                .map(|(k, h)| (*k, h))
                .collect();
            let mut sum = 0.0;
            let mut comp = 0.0;
            for i in 0..live.len() {
                for j in i + 1..live.len() {
                    let d =
                        oracle_distance(&self.oracle, live[i].0, live[i].1, live[j].0, live[j].1)?;
                    neumaier_add(&mut sum, &mut comp, d);
                }
            }
            (sum, comp)
        };
        self.pair_sum = sum;
        self.comp = comp;
        self.ops_since_rebuild = 0;
        Ok(())
    }

    /// Current average pairwise distance (0 with fewer than two live
    /// histograms).
    pub fn average(&self) -> f64 {
        if self.live < 2 {
            return 0.0;
        }
        let pairs = self.live * (self.live - 1) / 2;
        (self.pair_sum + self.comp) / pairs as f64
    }

    /// The (compensated) pairwise distance sum over live entries — the
    /// numerator of [`PairwiseAverager::average`]. Used by the
    /// branch-and-bound scorer to extend the current sum with bounds on
    /// hypothetical new pairs.
    pub fn pair_sum(&self) -> f64 {
        self.pair_sum + self.comp
    }

    /// Iterate the live `(key, histogram)` entries in slot order.
    pub fn live_entries(&self) -> impl Iterator<Item = (u128, &Histogram)> {
        self.slots
            .iter()
            .flatten()
            .filter(|(_, h)| !h.is_empty())
            .map(|(k, h)| (*k, h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairjob_hist::distance::Emd1d;
    use fairjob_hist::BinSpec;

    fn h(values: &[f64]) -> Histogram {
        Histogram::from_values(
            BinSpec::equal_width(0.0, 1.0, 10).unwrap(),
            values.iter().copied(),
        )
    }

    #[test]
    fn averages_all_pairs() {
        let (a, b, c) = (h(&[0.05]), h(&[0.55]), h(&[0.95]));
        // EMDs: a-b 0.5, a-c 0.9, b-c 0.4 -> avg 0.6.
        let avg = average_pairwise(&[&a, &b, &c], &Emd1d).unwrap();
        assert!((avg - 0.6).abs() < 1e-9);
    }

    #[test]
    fn empty_histograms_are_skipped() {
        let (a, b) = (h(&[0.05]), h(&[0.95]));
        let e = Histogram::empty(BinSpec::equal_width(0.0, 1.0, 10).unwrap());
        let avg = average_pairwise(&[&a, &e, &b], &Emd1d).unwrap();
        assert!((avg - 0.9).abs() < 1e-9);
        assert_eq!(average_pairwise(&[&a, &e], &Emd1d).unwrap(), 0.0);
    }

    #[test]
    fn fewer_than_two_is_zero() {
        let a = h(&[0.5]);
        assert_eq!(average_pairwise(&[&a], &Emd1d).unwrap(), 0.0);
        assert_eq!(average_pairwise(&[], &Emd1d).unwrap(), 0.0);
    }

    #[test]
    fn parallel_matches_serial() {
        let hists: Vec<Histogram> = (0..25)
            .map(|i| h(&[i as f64 / 25.0, (i as f64 / 25.0 + 0.3).min(1.0)]))
            .collect();
        let refs: Vec<&Histogram> = hists.iter().collect();
        let serial = average_pairwise(&refs, &Emd1d).unwrap();
        for threads in [1, 2, 4, 7, 32] {
            let par = average_pairwise_parallel(&refs, &Emd1d, threads).unwrap();
            assert_eq!(
                serial.to_bits(),
                par.to_bits(),
                "threads={threads}: serial {serial} vs parallel {par}"
            );
        }
    }

    #[test]
    fn batch_kernel_screens_emd_pairs_without_solving() {
        let hists: Vec<Histogram> = (0..12)
            .map(|i| h(&[i as f64 / 12.0, (i as f64 / 12.0 + 0.2).min(1.0)]))
            .collect();
        let refs: Vec<&Histogram> = hists.iter().collect();
        let serial = average_pairwise(&refs, &Emd1d).unwrap();
        let out = pairwise_emd_batch(&refs, &Emd1d, 2, None).unwrap();
        assert_eq!(out.value, BatchValue::Average(serial));
        assert_eq!(out.stats.pairs, 66);
        // Emd1d has exact bounds, so the screen settles every pair.
        assert_eq!(out.stats.bounds_screened, 66);
        assert_eq!(out.stats.exact_solves, 0);
        assert_eq!(out.stats.pool_tasks, 0);
    }

    #[test]
    fn batch_kernel_solves_unbounded_distances_exactly() {
        use fairjob_hist::distance::TotalVariation;
        let hists: Vec<Histogram> = (0..10).map(|i| h(&[i as f64 / 10.0])).collect();
        let refs: Vec<&Histogram> = hists.iter().collect();
        let serial = average_pairwise(&refs, &TotalVariation).unwrap();
        for threads in [1usize, 3] {
            let out = pairwise_emd_batch(&refs, &TotalVariation, threads, None).unwrap();
            // TotalVariation offers no bounds: every pair is solved, and
            // the chunk count is thread-independent.
            assert_eq!(out.value, BatchValue::Average(serial), "threads={threads}");
            assert_eq!(out.stats.bounds_screened, 0);
            assert_eq!(out.stats.exact_solves, 45);
            assert_eq!(out.stats.pool_tasks, 1);
        }
    }

    #[test]
    fn batch_kernel_parallel_screen_is_bit_identical() {
        // 48 histograms -> 1128 pairs > PAIR_CHUNK, so the screen phase
        // itself goes through the worker pool; the result must stay
        // bit-identical to the serial reference for every thread count,
        // and the screen chunk count must be thread-independent.
        let hists: Vec<Histogram> = (0..48)
            .map(|i| h(&[i as f64 / 48.0, (i as f64 / 48.0 + 0.25).min(1.0)]))
            .collect();
        let refs: Vec<&Histogram> = hists.iter().collect();
        let serial = average_pairwise(&refs, &Emd1d).unwrap();
        let pairs: usize = 48 * 47 / 2;
        let screen_chunks = pairs.div_ceil(PAIR_CHUNK) as u64;
        for threads in [1usize, 2, 7] {
            let out = pairwise_emd_batch(&refs, &Emd1d, threads, None).unwrap();
            assert_eq!(out.value, BatchValue::Average(serial), "threads={threads}");
            assert_eq!(out.stats.pairs, pairs as u64);
            assert_eq!(out.stats.bounds_screened, pairs as u64);
            assert_eq!(out.stats.exact_solves, 0);
            assert_eq!(out.stats.pool_tasks, screen_chunks, "threads={threads}");
        }
    }

    #[test]
    fn batch_kernel_abandons_hopeless_candidates() {
        let spread: Vec<Histogram> = vec![h(&[0.05]), h(&[0.95]), h(&[0.5])];
        let tight: Vec<Histogram> = vec![h(&[0.48]), h(&[0.52]), h(&[0.5])];
        let spread_refs: Vec<&Histogram> = spread.iter().collect();
        let tight_refs: Vec<&Histogram> = tight.iter().collect();
        let incumbent = average_pairwise(&spread_refs, &Emd1d).unwrap();
        let out = pairwise_emd_batch(&tight_refs, &Emd1d, 1, Some(incumbent)).unwrap();
        let BatchValue::Abandoned(upper) = out.value else {
            panic!("tight candidate should be abandoned, got {:?}", out.value);
        };
        assert!(upper < incumbent);
        assert_eq!(out.stats.bounds_screened, out.stats.pairs);
        assert_eq!(out.stats.exact_solves, 0);
        // The incumbent itself must never be abandoned against its own
        // value (the upper bound equals the average for exact bounds).
        let again = pairwise_emd_batch(&spread_refs, &Emd1d, 1, Some(incumbent)).unwrap();
        assert_eq!(again.value, BatchValue::Average(incumbent));
    }

    #[test]
    fn averager_exposes_sum_and_live_entries() {
        let hists: Vec<Histogram> = [0.1, 0.5, 0.9].iter().map(|&v| h(&[v])).collect();
        let avg = PairwiseAverager::with_histograms(&Emd1d, hists).unwrap();
        let pairs = 3.0;
        assert!((avg.pair_sum() / pairs - avg.average()).abs() < 1e-15);
        assert_eq!(avg.live_entries().count(), 3);
        assert!(avg.live_entries().all(|(k, _)| k & UNKEYED_BIT != 0));
    }

    #[test]
    fn averager_matches_batch_computation() {
        let values = [0.05, 0.15, 0.35, 0.55, 0.75, 0.95];
        let hists: Vec<Histogram> = values
            .iter()
            .map(|&v| h(&[v, (v + 0.2).min(1.0)]))
            .collect();
        let refs: Vec<&Histogram> = hists.iter().collect();
        let batch = average_pairwise(&refs, &Emd1d).unwrap();
        let avg = PairwiseAverager::with_histograms(&Emd1d, hists.clone()).unwrap();
        assert!((avg.average() - batch).abs() < 1e-12);
        assert_eq!(avg.len(), 6);
    }

    #[test]
    fn averager_replace_one_by_children() {
        // Replace slot 0 by two "children" and compare with a batch
        // computation over the final set.
        let hists: Vec<Histogram> = [0.1, 0.5, 0.9].iter().map(|&v| h(&[v])).collect();
        let mut avg = PairwiseAverager::with_histograms(&Emd1d, hists).unwrap();
        avg.remove(0).unwrap();
        avg.insert(h(&[0.05])).unwrap();
        avg.insert(h(&[0.15])).unwrap();
        let final_set = [h(&[0.5]), h(&[0.9]), h(&[0.05]), h(&[0.15])];
        let refs: Vec<&Histogram> = final_set.iter().collect();
        let batch = average_pairwise(&refs, &Emd1d).unwrap();
        assert!((avg.average() - batch).abs() < 1e-12);
    }

    #[test]
    fn averager_handles_empty_histograms_and_double_remove() {
        let spec = BinSpec::equal_width(0.0, 1.0, 10).unwrap();
        let mut avg = PairwiseAverager::new(&Emd1d);
        let empty_slot = avg.insert(Histogram::empty(spec)).unwrap();
        avg.insert(h(&[0.1])).unwrap();
        avg.insert(h(&[0.9])).unwrap();
        assert_eq!(avg.len(), 2, "empty histogram does not count");
        assert!((avg.average() - 0.8).abs() < 1e-9);
        avg.remove(empty_slot).unwrap();
        avg.remove(empty_slot).unwrap(); // idempotent
        assert!((avg.average() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn averager_degenerate_sizes() {
        let mut avg = PairwiseAverager::new(&Emd1d);
        assert!(avg.is_empty());
        assert_eq!(avg.average(), 0.0);
        let slot = avg.insert(h(&[0.4])).unwrap();
        assert_eq!(avg.average(), 0.0);
        avg.remove(slot).unwrap();
        assert_eq!(avg.average(), 0.0);
        assert!(avg.is_empty());
    }

    #[test]
    fn averager_stays_exact_over_thousands_of_cycles() {
        // Churn one averager through thousands of insert/remove cycles
        // (crossing several exact-rebuild boundaries) and require the
        // incremental average to stay within 1e-9 of a fresh batch
        // computation. The old implementation drifted and masked it
        // with `.max(0.0)`.
        let fresh = |cycle: usize| {
            h(&[
                (cycle % 97) as f64 / 97.0,
                ((cycle % 53) as f64 / 53.0 + 0.1).min(1.0),
            ])
        };
        let base: Vec<Histogram> = (0..12)
            .map(|i| h(&[i as f64 / 12.0, ((i as f64 + 3.0) / 12.0).min(1.0)]))
            .collect();
        let mut avg = PairwiseAverager::with_histograms(&Emd1d, base.clone()).unwrap();
        let mut slots: Vec<usize> = (0..base.len()).collect();
        let mut finals: Vec<Histogram> = base.clone();
        for cycle in 0..5000usize {
            let victim = cycle % base.len();
            avg.remove(slots[victim]).unwrap();
            slots[victim] = avg.insert(fresh(cycle)).unwrap();
            finals[victim] = fresh(cycle);
        }
        let refs: Vec<&Histogram> = finals.iter().collect();
        let batch = average_pairwise(&refs, &Emd1d).unwrap();
        assert!(
            (avg.average() - batch).abs() < 1e-9,
            "incremental {} vs batch {} after 5000 cycles",
            avg.average(),
            batch
        );
        assert_eq!(avg.len(), base.len());
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut avg = PairwiseAverager::new(&Emd1d);
        let a = avg.insert(h(&[0.1])).unwrap();
        let _b = avg.insert(h(&[0.5])).unwrap();
        let (_, hist) = avg.remove(a).unwrap().expect("slot was live");
        assert_eq!(hist.total(), 1.0);
        assert!(avg.remove(a).unwrap().is_none(), "second remove is a no-op");
        let c = avg.insert(h(&[0.9])).unwrap();
        assert_eq!(c, a, "freed slot id is reused");
        assert!((avg.average() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn matrix_is_symmetric_zero_diagonal() {
        use fairjob_store::{Predicate, RowSet};
        let parts: Vec<Partition> = [0.05, 0.55, 0.95]
            .iter()
            .enumerate()
            .map(|(i, &v)| Partition {
                predicate: Predicate::always(),
                rows: RowSet::from_rows(vec![i as u32]),
                histogram: h(&[v]),
            })
            .collect();
        let m = pairwise_matrix(&parts, &Emd1d).unwrap();
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, &value) in row.iter().enumerate() {
                assert_eq!(value, m[j][i]);
            }
        }
        assert!((m[0][2] - 0.9).abs() < 1e-9);
    }

    #[test]
    fn matrix_parity_with_per_entry_reference() {
        use fairjob_store::{Predicate, RowSet};
        // Mix of live and empty partitions so both skip paths fire.
        let hists = [
            h(&[0.05, 0.1]),
            h(&[]),
            h(&[0.55]),
            h(&[0.95, 0.9, 0.85]),
            h(&[]),
            h(&[0.3, 0.7]),
        ];
        let parts: Vec<Partition> = hists
            .iter()
            .enumerate()
            .map(|(i, hist)| {
                let rows = if hist.total() == 0.0 {
                    Vec::new()
                } else {
                    vec![i as u32]
                };
                Partition {
                    predicate: Predicate::always(),
                    rows: RowSet::from_rows(rows),
                    histogram: hist.clone(),
                }
            })
            .collect();
        let n = parts.len();
        // Reference: the pre-deduplication behaviour — every ordered
        // entry resolved independently, both liveness checks per pair.
        let mut reference = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j || parts[i].is_empty() || parts[j].is_empty() {
                    continue;
                }
                reference[i][j] = Emd1d
                    .distance(&parts[i].histogram, &parts[j].histogram)
                    .unwrap();
            }
        }
        let m = pairwise_matrix(&parts, &Emd1d).unwrap();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    m[i][j].to_bits(),
                    reference[i][j].to_bits(),
                    "entry ({i}, {j}) diverged: {} vs {}",
                    m[i][j],
                    reference[i][j]
                );
            }
        }
    }
}
