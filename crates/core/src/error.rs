//! Error type for the audit layer.

use std::fmt;

/// Errors raised while configuring or running an audit.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditError {
    /// The score vector length differs from the table length.
    ScoreLength {
        /// Number of rows in the table.
        rows: usize,
        /// Number of scores supplied.
        scores: usize,
    },
    /// A score is NaN/infinite or outside `[0, 1]`.
    BadScore {
        /// Row of the offending score.
        row: usize,
        /// The offending value.
        value: f64,
    },
    /// The audit was configured with no splittable attributes.
    NoAttributes,
    /// A configured attribute name is unknown or not categorical
    /// protected.
    BadAttribute {
        /// The attribute name.
        name: String,
        /// Why it cannot be used.
        reason: &'static str,
    },
    /// The table has no rows.
    EmptyTable,
    /// Underlying store failure.
    Store(fairjob_store::StoreError),
    /// Underlying histogram-distance failure.
    Distance(fairjob_hist::DistanceError),
    /// Histogram bin construction failed.
    Bins(String),
    /// Exhaustive search exceeded its enumeration budget.
    BudgetExceeded {
        /// The configured budget (number of candidate partitionings).
        budget: usize,
    },
    /// The operation needs in-memory table data (raw columns or the raw
    /// score vector) that a paged out-of-core context does not hold.
    OutOfCore {
        /// What was attempted.
        what: &'static str,
    },
    /// Reading the paged store failed (I/O or a corrupt page file).
    Paged(String),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::ScoreLength { rows, scores } => {
                write!(f, "table has {rows} rows but {scores} scores were supplied")
            }
            AuditError::BadScore { row, value } => {
                write!(f, "score {value} at row {row} is not in [0, 1]")
            }
            AuditError::NoAttributes => write!(f, "no splittable protected attributes"),
            AuditError::BadAttribute { name, reason } => {
                write!(f, "attribute `{name}` cannot be audited: {reason}")
            }
            AuditError::EmptyTable => write!(f, "worker table is empty"),
            AuditError::Store(e) => write!(f, "store: {e}"),
            AuditError::Distance(e) => write!(f, "distance: {e}"),
            AuditError::Bins(reason) => write!(f, "bins: {reason}"),
            AuditError::BudgetExceeded { budget } => {
                write!(
                    f,
                    "exhaustive search exceeded its budget of {budget} partitionings"
                )
            }
            AuditError::OutOfCore { what } => {
                write!(
                    f,
                    "{what} needs in-memory data; materialize the paged store first \
                     (e.g. restart from the snapshot without --mem-budget)"
                )
            }
            AuditError::Paged(reason) => write!(f, "paged store: {reason}"),
        }
    }
}

impl std::error::Error for AuditError {}

impl From<fairjob_store::StoreError> for AuditError {
    fn from(e: fairjob_store::StoreError) -> Self {
        AuditError::Store(e)
    }
}

impl From<fairjob_hist::DistanceError> for AuditError {
    fn from(e: fairjob_hist::DistanceError) -> Self {
        AuditError::Distance(e)
    }
}

impl From<fairjob_store::paged::PagedError> for AuditError {
    fn from(e: fairjob_store::paged::PagedError) -> Self {
        AuditError::Paged(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AuditError::ScoreLength {
            rows: 10,
            scores: 9,
        };
        assert!(e.to_string().contains("10") && e.to_string().contains('9'));
        let e = AuditError::BudgetExceeded { budget: 100 };
        assert!(e.to_string().contains("100"));
    }
}
