//! Parity guarantees for the evaluation engine: every cached,
//! incremental, or parallel unfairness value must stay within 1e-9 of
//! the naive O(k²) evaluation it replaces — across random populations,
//! scoring functions, and every algorithm of the paper's comparison.

use fairjob_core::algorithms::Algorithm;
use fairjob_core::algorithms::{balanced::Balanced, beam::Beam, lookahead::Lookahead};
use fairjob_core::algorithms::{paper_algorithms, unbalanced::Unbalanced, AttributeChoice};
use fairjob_core::{AuditConfig, AuditContext, EvalEngine, IncrementalEval};
use fairjob_hist::distance::Emd1d;
use fairjob_hist::{DistanceError, Histogram, HistogramDistance};
use fairjob_marketplace::scoring::{LinearScore, RuleBasedScore, ScoringFunction};
use fairjob_marketplace::{bucketise_numeric_protected, generate_uniform};
use proptest::prelude::*;
use std::sync::Arc;

const TOLERANCE: f64 = 1e-9;

/// `Emd1d` stripped of its bound provider: identical distances, but the
/// branch-and-bound screen can never fire, so every candidate is scored
/// exactly. Used to prove pruning never changes a search result.
#[derive(Debug)]
struct NoBounds;

impl HistogramDistance for NoBounds {
    fn distance(&self, a: &Histogram, b: &Histogram) -> Result<f64, DistanceError> {
        Emd1d.distance(a, b)
    }
    fn name(&self) -> &'static str {
        "emd-no-bounds"
    }
}

/// A generated audit context input: population + scores.
fn population(size: usize, seed: u64, rule: bool) -> (fairjob_store::table::Table, Vec<f64>) {
    let mut workers = generate_uniform(size, seed);
    bucketise_numeric_protected(&mut workers).unwrap();
    let scores = if rule {
        RuleBasedScore::f7(5).score_all(&workers).unwrap()
    } else {
        LinearScore::alpha("f1", 0.5).score_all(&workers).unwrap()
    };
    (workers, scores)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every algorithm's reported unfairness equals the naive recompute
    /// of its final partitioning, and a fresh engine (serial and forced
    /// parallel) agrees with the naive evaluation on that partitioning.
    #[test]
    fn algorithms_agree_with_naive_evaluation(
        size in 60usize..220,
        seed in 0u64..1_000,
    ) {
        let (workers, scores) = population(size, seed, seed % 2 == 0);
        let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).unwrap();
        let mut algos = paper_algorithms(seed);
        algos.push(Box::new(Beam::new(2)));
        algos.push(Box::new(Lookahead::new(2)));
        algos.push(Box::new(Unbalanced::new(AttributeChoice::Worst).with_cross_stopping()));
        for algo in &algos {
            let result = algo.run(&ctx).unwrap();
            let naive = ctx.unfairness(result.partitioning.partitions()).unwrap();
            prop_assert!(
                (result.unfairness - naive).abs() < TOLERANCE,
                "{}: engine {} vs naive {}",
                result.algorithm,
                result.unfairness,
                naive
            );
            // The engine never reports more computed distances than the
            // lookups it answered.
            prop_assert!(result.engine.distances_computed <= result.engine.lookups());

            let serial = EvalEngine::new(&ctx).with_parallel_threshold(usize::MAX);
            let parallel = EvalEngine::new(&ctx).with_parallel_threshold(2).with_threads(3);
            let parts = result.partitioning.partitions();
            prop_assert!((serial.unfairness(parts).unwrap() - naive).abs() < TOLERANCE);
            prop_assert!((parallel.unfairness(parts).unwrap() - naive).abs() < TOLERANCE);
        }
    }

    /// The single-pass split kernel produces exactly the children the
    /// legacy posting-list path produced: same predicates, same rows,
    /// same histograms, for every attribute at the root and one level
    /// down.
    #[test]
    fn split_kernel_matches_legacy_at_core_level(
        size in 60usize..220,
        seed in 0u64..1_000,
    ) {
        let (workers, scores) = population(size, seed, seed % 2 == 1);
        let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).unwrap();
        let root = ctx.root();
        for &a in ctx.attributes() {
            prop_assert_eq!(ctx.split(&root, a), ctx.split_legacy(&root, a), "root attr {}", a);
        }
        // One level down: split by the first splittable attribute, then
        // compare every remaining attribute on every child.
        if let Some((first, children)) = ctx
            .attributes()
            .iter()
            .find_map(|&a| ctx.split(&root, a).map(|c| (a, c)))
        {
            for child in &children {
                for &a in ctx.attributes().iter().filter(|&&a| a != first) {
                    prop_assert_eq!(
                        ctx.split(child, a),
                        ctx.split_legacy(child, a),
                        "child of {} by attr {}",
                        first,
                        a
                    );
                }
            }
        }
    }

    /// The parallel candidate search is deterministic: every algorithm
    /// returns a bit-identical unfairness value and the same
    /// partitioning shape regardless of the worker thread count.
    #[test]
    fn algorithms_are_bit_identical_across_thread_counts(
        size in 60usize..200,
        seed in 0u64..1_000,
    ) {
        let (workers, scores) = population(size, seed, seed % 2 == 0);
        let baseline = AuditContext::new(
            &workers,
            &scores,
            AuditConfig { threads: Some(1), ..AuditConfig::default() },
        )
        .unwrap();
        let suite = |seed: u64| {
            let mut algos = paper_algorithms(seed);
            algos.push(Box::new(Beam::new(2)));
            algos.push(Box::new(Lookahead::new(2)));
            algos.push(Box::new(Unbalanced::new(AttributeChoice::Worst).with_cross_stopping()));
            algos
        };
        for threads in [3usize, 8] {
            let ctx = AuditContext::new(
                &workers,
                &scores,
                AuditConfig { threads: Some(threads), ..AuditConfig::default() },
            )
            .unwrap();
            for (serial, parallel) in suite(seed).iter().zip(suite(seed).iter()) {
                let a = serial.run(&baseline).unwrap();
                let b = parallel.run(&ctx).unwrap();
                prop_assert_eq!(
                    a.unfairness.to_bits(),
                    b.unfairness.to_bits(),
                    "{} with {} threads: {} vs {}",
                    a.algorithm,
                    threads,
                    a.unfairness,
                    b.unfairness
                );
                prop_assert_eq!(a.partitioning.len(), b.partitioning.len());
            }
        }
    }

    /// Branch-and-bound pruning never changes a search result: the same
    /// Worst-attribute searches run with `Emd1d` (bounds available, the
    /// screen prunes) and with the bound-less wrapper (every candidate
    /// scored exactly) return bit-identical unfairness values and the
    /// same partitioning shapes.
    #[test]
    fn pruned_search_matches_unpruned_search(
        size in 60usize..200,
        seed in 0u64..1_000,
    ) {
        let (workers, scores) = population(size, seed, seed % 2 == 0);
        let pruned_ctx =
            AuditContext::new(&workers, &scores, AuditConfig::default()).unwrap();
        let unpruned_ctx = AuditContext::new(
            &workers,
            &scores,
            AuditConfig::with_distance(Arc::new(NoBounds)),
        )
        .unwrap();
        let suite = || -> Vec<Box<dyn Algorithm>> {
            vec![
                Box::new(Unbalanced::new(AttributeChoice::Worst)),
                Box::new(Balanced::new(AttributeChoice::Worst)),
                Box::new(Beam::new(2)),
            ]
        };
        for (a, b) in suite().iter().zip(suite().iter()) {
            let pruned = a.run(&pruned_ctx).unwrap();
            let unpruned = b.run(&unpruned_ctx).unwrap();
            prop_assert_eq!(
                pruned.unfairness.to_bits(),
                unpruned.unfairness.to_bits(),
                "{}: pruned {} vs unpruned {}",
                pruned.algorithm,
                pruned.unfairness,
                unpruned.unfairness
            );
            prop_assert_eq!(pruned.partitioning.len(), unpruned.partitioning.len());
            // Without bounds the screen can never settle a pair.
            prop_assert_eq!(unpruned.engine.bounds_screened, 0);
        }
    }

    /// Delta evaluation of candidate splits matches materialise+naive.
    #[test]
    fn incremental_scores_match_materialised_naive(
        size in 80usize..260,
        seed in 0u64..1_000,
    ) {
        let (workers, scores) = population(size, seed, true);
        let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).unwrap();
        let engine = EvalEngine::new(&ctx);
        // Start one split down so there is a level to delta-evaluate.
        let attrs = ctx.attributes().to_vec();
        let base = ctx.split(&ctx.root(), attrs[0]).unwrap_or_else(|| vec![ctx.root()]);
        let mut incremental = IncrementalEval::new(&engine, &base).unwrap();
        for &a in &attrs[1..] {
            // Candidate: split every partition that can split by `a`.
            let splits: Vec<(usize, Vec<fairjob_core::Partition>)> = base
                .iter()
                .enumerate()
                .filter_map(|(i, p)| ctx.split(p, a).map(|children| (i, children)))
                .collect();
            if splits.is_empty() {
                continue;
            }
            let replacements: Vec<(usize, &[fairjob_core::Partition])> =
                splits.iter().map(|(i, children)| (*i, children.as_slice())).collect();
            let score = incremental.score_replacements(&replacements).unwrap();

            let mut materialised: Vec<fairjob_core::Partition> = Vec::new();
            let mut next = 0;
            for (i, p) in base.iter().enumerate() {
                if next < splits.len() && splits[next].0 == i {
                    materialised.extend(splits[next].1.iter().cloned());
                    next += 1;
                } else {
                    materialised.push(p.clone());
                }
            }
            let naive = ctx.unfairness(&materialised).unwrap();
            prop_assert!(
                (score - naive).abs() < TOLERANCE,
                "attr {a}: incremental {score} vs naive {naive}"
            );
        }
    }
}
