//! Out-of-core parity: an audit streamed off the paged store through a
//! bounded page cache must reproduce the in-memory audit bit for bit —
//! same unfairness bits, same partitioning, same engine-local counters
//! — at every (memory budget × shard policy × thread count) layout.
//! The page-cache meters themselves are layout-dependent by definition
//! (a smaller budget re-reads more pages) but must stay truthful:
//! every audited page is either scanned or zone-skipped.

use fairjob_core::algorithms::{
    balanced::Balanced, unbalanced::Unbalanced, Algorithm, AttributeChoice,
};
use fairjob_core::{AuditConfig, AuditContext, AuditResult, EngineStats};
use fairjob_marketplace::scoring::{LinearScore, RuleBasedScore, ScoringFunction};
use fairjob_marketplace::{bucketise_numeric_protected, generate_uniform};
use fairjob_store::paged::write_paged;
use fairjob_store::{PagedStore, RowSet, ShardPolicy};
use proptest::prelude::*;
use std::path::PathBuf;

fn population(size: usize, seed: u64, rule: bool) -> (fairjob_store::table::Table, Vec<f64>) {
    let mut workers = generate_uniform(size, seed);
    bucketise_numeric_protected(&mut workers).unwrap();
    let scores = if rule {
        RuleBasedScore::f7(5).score_all(&workers).unwrap()
    } else {
        LinearScore::alpha("f1", 0.5).score_all(&workers).unwrap()
    };
    (workers, scores)
}

/// A scratch paged file, removed on drop. Named by test + params so
/// concurrent proptest cases never collide.
struct TempPaged(PathBuf);

impl TempPaged {
    fn write(
        tag: &str,
        workers: &fairjob_store::table::Table,
        scores: &[f64],
        live: Option<&RowSet>,
    ) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "fairjob-paged-parity-{}-{tag}.fjp",
            std::process::id()
        ));
        write_paged(&path, workers, Some(scores), live, 0, 10).unwrap();
        TempPaged(path)
    }
}

impl Drop for TempPaged {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn run_mem(
    workers: &fairjob_store::table::Table,
    scores: &[f64],
    shards: ShardPolicy,
    threads: usize,
    balanced: bool,
) -> AuditResult {
    let config = AuditConfig {
        shards,
        threads: Some(threads),
        ..AuditConfig::default()
    };
    let ctx = AuditContext::new(workers, scores, config).unwrap();
    if balanced {
        Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap()
    } else {
        Unbalanced::new(AttributeChoice::Worst).run(&ctx).unwrap()
    }
}

fn run_paged(
    store: &PagedStore,
    shards: ShardPolicy,
    threads: usize,
    balanced: bool,
) -> AuditResult {
    let config = AuditConfig {
        shards,
        threads: Some(threads),
        ..AuditConfig::default()
    };
    let ctx = AuditContext::from_paged(store, config, None, None).unwrap();
    if balanced {
        Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap()
    } else {
        Unbalanced::new(AttributeChoice::Worst).run(&ctx).unwrap()
    }
}

/// The engine-local counters: everything except the shard-work meters
/// and the page-cache meters, both layout-dependent by definition.
fn engine_local(stats: &EngineStats) -> Vec<(&'static str, u64)> {
    const LAYOUT_DEPENDENT: &[&str] = &[
        "shard_tasks",
        "rows_classified_parallel",
        "page_hits",
        "page_misses",
        "page_evictions",
        "pages_skipped",
        "pages_scanned",
    ];
    stats
        .as_pairs()
        .into_iter()
        .filter(|(name, _)| !LAYOUT_DEPENDENT.contains(name))
        .collect()
}

#[test]
fn roundtrip_materializes_the_exact_population() {
    let (workers, scores) = population(700, 42, false);
    let tmp = TempPaged::write("roundtrip", &workers, &scores, None);
    let store = PagedStore::open(&tmp.0, 1 << 20).unwrap();
    assert_eq!(store.rows(), workers.len());
    assert_eq!(store.schema(), workers.schema());
    assert!(store.live().is_none(), "full population stores no bitmap");
    let (back, back_scores) = store.materialize().unwrap();
    assert_eq!(&back, &workers);
    assert_eq!(back_scores.as_deref(), Some(scores.as_slice()));
}

#[test]
fn live_subset_roundtrips_and_audits_identically() {
    let (workers, scores) = population(500, 9, true);
    // An arbitrary-but-deterministic subset: drop every 7th row.
    let live = RowSet::from_sorted(
        (0..workers.len() as u32)
            .filter(|row| row % 7 != 0)
            .collect(),
    );
    let tmp = TempPaged::write("live", &workers, &scores, Some(&live));
    let store = PagedStore::open(&tmp.0, 1 << 20).unwrap();
    assert_eq!(store.live(), Some(&live));

    // In-memory baseline over the same subset, through the stream
    // layer's validated parts path.
    let indexes = std::sync::Arc::new(fairjob_store::index::IndexSet::build(&workers).unwrap());
    let bin_of = std::sync::Arc::new(
        fairjob_hist::BinSpec::equal_width(0.0, 1.0, 10)
            .unwrap()
            .bin_indices(&scores),
    );
    let ctx_mem = AuditContext::from_parts(
        &workers,
        &scores,
        AuditConfig::default(),
        indexes,
        bin_of,
        Some(live.clone()),
        0,
    )
    .unwrap();
    let algorithm = Balanced::new(AttributeChoice::Worst);
    let mem = algorithm.run(&ctx_mem).unwrap();

    let ctx_paged = AuditContext::from_paged(&store, AuditConfig::default(), None, None).unwrap();
    let paged = algorithm.run(&ctx_paged).unwrap();
    assert_eq!(paged.unfairness.to_bits(), mem.unfairness.to_bits());
    assert_eq!(paged.partitioning.len(), mem.partitioning.len());
    assert_eq!(engine_local(&paged.engine), engine_local(&mem.engine));
}

#[test]
fn tight_budgets_evict_but_do_not_change_bits() {
    // Big enough that every column spans several pages — a one-page
    // budget can only make progress by evicting (a single-page column
    // set can sit fully pinned during the index build and never evict).
    let (workers, scores) = population(20_000, 77, false);
    let tmp = TempPaged::write("evict", &workers, &scores, None);
    let baseline = run_mem(&workers, &scores, ShardPolicy::Auto, 2, false);

    // One-page budget: every column scan cycles the cache.
    let tight = PagedStore::open(&tmp.0, 1).unwrap();
    let result = run_paged(&tight, ShardPolicy::Auto, 2, false);
    assert_eq!(result.unfairness.to_bits(), baseline.unfairness.to_bits());
    assert_eq!(engine_local(&result.engine), engine_local(&baseline.engine));
    assert!(
        result.engine.page_evictions > 0,
        "a one-page budget over a multi-page file must evict (counters: {:?})",
        result.engine
    );
    assert!(result.engine.page_misses > 0);
    assert!(result.engine.pages_scanned > 0);

    // Roomy budget: the same audit re-reads nothing after first touch.
    let roomy = PagedStore::open(&tmp.0, 1 << 30).unwrap();
    let result = run_paged(&roomy, ShardPolicy::Auto, 2, false);
    assert_eq!(result.unfairness.to_bits(), baseline.unfairness.to_bits());
    assert_eq!(result.engine.page_evictions, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The full grid: every (budget × shard policy × thread count)
    /// reproduces the in-memory audit bit for bit, engine-local
    /// counters included.
    #[test]
    fn paged_audits_are_bit_identical_across_layouts(
        size in 250usize..700,
        seed in 0u64..1_000,
    ) {
        let balanced = seed % 2 == 0;
        let (workers, scores) = population(size, seed, !balanced);
        let tmp = TempPaged::write(
            &format!("grid-{size}-{seed}"),
            &workers,
            &scores,
            None,
        );
        let baseline = run_mem(&workers, &scores, ShardPolicy::Disabled, 1, balanced);
        for budget in [1usize, 1 << 17, 1 << 30] {
            let store = PagedStore::open(&tmp.0, budget).unwrap();
            for shards in [ShardPolicy::Disabled, ShardPolicy::Fixed(3), ShardPolicy::Auto] {
                for threads in [1usize, 4] {
                    let got = run_paged(&store, shards, threads, balanced);
                    prop_assert_eq!(
                        got.unfairness.to_bits(),
                        baseline.unfairness.to_bits(),
                        "budget={} shards={} threads={}",
                        budget, shards, threads
                    );
                    prop_assert_eq!(got.partitioning.len(), baseline.partitioning.len());
                    prop_assert_eq!(
                        engine_local(&got.engine),
                        engine_local(&baseline.engine),
                        "engine-local counters diverged at budget={} shards={} threads={}",
                        budget, shards, threads
                    );
                }
            }
        }
    }
}
