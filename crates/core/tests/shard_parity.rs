//! Shard-layout parity: an audit's result — unfairness bits,
//! partitioning shape, and every layout-independent engine counter —
//! must not depend on the shard policy or the thread count. The sharded
//! kernels (per-shard split/classify merged in serial shard order) are
//! defined to be bit-identical to the legacy scalar path; this suite
//! holds them to it across shard counts {1, 2, 3, 7, auto} × thread
//! counts {1, 2, 8}, against the `shards = off` baseline.

use fairjob_core::algorithms::{
    balanced::Balanced, unbalanced::Unbalanced, Algorithm, AttributeChoice,
};
use fairjob_core::{AuditConfig, AuditContext, AuditResult, EngineStats};
use fairjob_marketplace::scoring::{LinearScore, RuleBasedScore, ScoringFunction};
use fairjob_marketplace::{bucketise_numeric_protected, generate_uniform};
use fairjob_store::ShardPolicy;
use proptest::prelude::*;

fn population(size: usize, seed: u64, rule: bool) -> (fairjob_store::table::Table, Vec<f64>) {
    let mut workers = generate_uniform(size, seed);
    bucketise_numeric_protected(&mut workers).unwrap();
    let scores = if rule {
        RuleBasedScore::f7(5).score_all(&workers).unwrap()
    } else {
        LinearScore::alpha("f1", 0.5).score_all(&workers).unwrap()
    };
    (workers, scores)
}

fn run(
    workers: &fairjob_store::table::Table,
    scores: &[f64],
    shards: ShardPolicy,
    threads: usize,
    balanced: bool,
) -> AuditResult {
    let config = AuditConfig {
        shards,
        threads: Some(threads),
        ..AuditConfig::default()
    };
    let ctx = AuditContext::new(workers, scores, config).unwrap();
    if balanced {
        Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap()
    } else {
        Unbalanced::new(AttributeChoice::Worst).run(&ctx).unwrap()
    }
}

/// The counters defined to be independent of the shard layout: every
/// `EngineStats` counter except the two shard-work meters.
fn layout_independent(stats: &EngineStats) -> Vec<(&'static str, u64)> {
    stats
        .as_pairs()
        .into_iter()
        .filter(|(name, _)| *name != "shard_tasks" && *name != "rows_classified_parallel")
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every shard policy × thread count reproduces the `shards = off`
    /// single-thread baseline bit for bit, counters included.
    #[test]
    fn audits_are_bit_identical_across_shard_layouts(
        size in 80usize..260,
        seed in 0u64..1_000,
    ) {
        let balanced = seed % 2 == 0;
        let (workers, scores) = population(size, seed, !balanced);
        let baseline = run(&workers, &scores, ShardPolicy::Disabled, 1, balanced);
        prop_assert_eq!(baseline.engine.shard_tasks, 0);
        prop_assert_eq!(baseline.engine.rows_classified_parallel, 0);
        let policies = [
            ShardPolicy::Fixed(1),
            ShardPolicy::Fixed(2),
            ShardPolicy::Fixed(3),
            ShardPolicy::Fixed(7),
            ShardPolicy::Auto,
        ];
        // `rows_classified_parallel` must agree across every *enabled*
        // layout (it meters rows, not shards); collect to cross-check.
        let mut rows_metered: Vec<u64> = Vec::new();
        for shards in policies {
            for threads in [1usize, 2, 8] {
                let got = run(&workers, &scores, shards, threads, balanced);
                prop_assert_eq!(
                    got.unfairness.to_bits(),
                    baseline.unfairness.to_bits(),
                    "shards={} threads={}: {} vs baseline {}",
                    shards, threads, got.unfairness, baseline.unfairness
                );
                prop_assert_eq!(got.partitioning.len(), baseline.partitioning.len());
                prop_assert_eq!(
                    layout_independent(&got.engine),
                    layout_independent(&baseline.engine),
                    "layout-independent counters diverged at shards={} threads={}",
                    shards, threads
                );
                prop_assert!(
                    got.engine.rows_classified_parallel > 0,
                    "sharded run metered no rows (shards={shards})"
                );
                rows_metered.push(got.engine.rows_classified_parallel);
            }
        }
        prop_assert!(
            rows_metered.iter().all(|&r| r == rows_metered[0]),
            "rows_classified_parallel is layout-dependent: {rows_metered:?}"
        );
    }

    /// `shard_tasks` is layout-dependent by definition but must be
    /// thread-count independent: the same shard count dispatches the
    /// same kernels no matter how many workers execute them.
    #[test]
    fn shard_tasks_do_not_depend_on_thread_count(
        size in 80usize..200,
        seed in 0u64..1_000,
    ) {
        let (workers, scores) = population(size, seed, false);
        for shards in [ShardPolicy::Fixed(2), ShardPolicy::Fixed(7)] {
            let reference = run(&workers, &scores, shards, 1, true);
            prop_assert!(reference.engine.shard_tasks > 0);
            for threads in [2usize, 8] {
                let got = run(&workers, &scores, shards, threads, true);
                prop_assert_eq!(
                    got.engine.shard_tasks,
                    reference.engine.shard_tasks,
                    "shards={} threads={}", shards, threads
                );
                prop_assert_eq!(
                    got.engine.rows_classified_parallel,
                    reference.engine.rows_classified_parallel
                );
            }
        }
    }
}
