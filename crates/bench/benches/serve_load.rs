//! Serve-load bench: drive a resident [`fairjob_serve::Server`] with
//! sustained mixed read/write traffic — one writer session appending
//! epochs through the warm incremental path while reader sessions
//! audit the published snapshot at a target request rate.
//!
//! Beyond timing, this bench *asserts* the daemon's contract:
//!
//! - every reader `AUDIT` response is **bit-identical** to a cold
//!   offline audit of the same epoch (readers can never observe a
//!   half-applied epoch or a writer-mutated snapshot);
//! - the writer applies every epoch while audits are in flight
//!   (reads never block ingest);
//! - admission control holds: with the in-flight budget saturated the
//!   server answers `ERR overloaded` immediately instead of queueing.
//!
//! It also starts the machine-readable perf trajectory ROADMAP item 4
//! asks for: a `BENCH_serve.json` next to the bench target with
//! sustained QPS, p50/p99 audit latency, and the server's aggregated
//! [`EngineStats`] counters, uploaded as a CI artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use fairjob_core::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
use fairjob_core::{AuditConfig, AuditContext};
use fairjob_marketplace::stream::{generate_stream, StreamConfig, StreamScenario};
use fairjob_serve::{protocol, ServeClient, ServeConfig, Server};
use fairjob_stream::StreamView;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sized so one snapshot audit costs tens of milliseconds in the bench
/// profile: heavy enough that reads overlap writes and each other,
/// light enough that three paced readers sustain dozens of audits over
/// the epoch window.
const WORKERS: usize = 200;
const EPOCHS: usize = 4;
const EVENTS_PER_EPOCH: usize = 10;
const SEED: u64 = 0x5EED_5E12;
const READERS: usize = 3;
/// Per-reader request pacing — with [`READERS`] sessions the offered
/// load is `READERS * 1s / READ_PACE` QPS before latency is accounted.
const READ_PACE: Duration = Duration::from_millis(2);

fn scenario() -> StreamScenario {
    generate_stream(&StreamConfig {
        initial: WORKERS,
        epochs: EPOCHS,
        events_per_epoch: EVENTS_PER_EPOCH,
        seed: SEED,
        alpha: 0.5,
    })
}

fn view_of(scenario: &StreamScenario, config: &AuditConfig) -> StreamView {
    StreamView::new(
        scenario.initial.clone(),
        scenario.scores.clone(),
        config.bins,
    )
    .expect("stream view")
}

/// Offline cold-audit unfairness bits per epoch — the ground truth
/// every reader response is checked against.
fn cold_bits(scenario: &StreamScenario, config: &AuditConfig) -> Vec<u64> {
    let algorithm = Balanced::new(AttributeChoice::Worst);
    let mut view = view_of(scenario, config);
    let cold = |view: &StreamView| {
        let (table, scores) = view.compact().expect("compact");
        let ctx = AuditContext::new(&table, &scores, config.clone()).expect("ctx");
        algorithm
            .run(&ctx)
            .expect("cold audit")
            .unfairness
            .to_bits()
    };
    let mut expected = vec![cold(&view)];
    for events in scenario.events.epochs() {
        view.apply_epoch(events).expect("apply epoch");
        expected.push(cold(&view));
    }
    expected
}

struct LoadReport {
    audits_ok: u64,
    overloaded: u64,
    elapsed: Duration,
    latencies_us: Vec<u64>,
    metrics_line: String,
}

/// One full mixed-traffic run: start a server, spawn readers pacing
/// `AUDIT`s, apply every epoch from a writer session, stop, collect.
fn drive_load(expected: &Arc<Vec<u64>>, config: &AuditConfig) -> LoadReport {
    let scn = scenario();
    let server = Server::start(
        view_of(&scn, config),
        Arc::new(Balanced::new(AttributeChoice::Worst)),
        config.clone(),
        ServeConfig {
            max_inflight: READERS + 1,
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let addr = server.addr();
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let (expected, done) = (Arc::clone(expected), Arc::clone(&done));
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("reader connect");
                let mut ok = 0u64;
                let mut overloaded = 0u64;
                let mut latencies_us = Vec::new();
                while !done.load(Ordering::SeqCst) {
                    let started = Instant::now();
                    match client.audit() {
                        Ok(reply) => {
                            latencies_us.push(started.elapsed().as_micros() as u64);
                            ok += 1;
                            let epoch: usize = protocol::kv(&reply, "epoch")
                                .expect("epoch field")
                                .parse()
                                .expect("epoch number");
                            let bits = protocol::kv(&reply, "unfairness_bits").expect("bits");
                            assert_eq!(
                                protocol::parse_f64_bits(bits).expect("hex bits").to_bits(),
                                expected[epoch],
                                "reader audit of epoch {epoch} is not bit-identical \
                                 to the cold offline audit"
                            );
                        }
                        Err(e) if ServeClient::is_overloaded(&e) => overloaded += 1,
                        Err(e) => panic!("reader request failed: {e}"),
                    }
                    std::thread::sleep(READ_PACE);
                }
                client.quit();
                (ok, overloaded, latencies_us)
            })
        })
        .collect();

    let started = Instant::now();
    let mut writer = ServeClient::connect(addr).expect("writer connect");
    let schema = scn.initial.schema();
    for events in scn.events.epochs() {
        let reply = writer.epoch(events, schema).expect("epoch append");
        let epoch: usize = protocol::kv(&reply, "epoch").unwrap().parse().unwrap();
        assert_eq!(
            protocol::parse_f64_bits(protocol::kv(&reply, "unfairness_bits").unwrap())
                .unwrap()
                .to_bits(),
            expected[epoch],
            "writer's warm epoch {epoch} diverged from the cold audit"
        );
        // Keep readers auditing between writes so snapshots of every
        // epoch get observed under load.
        std::thread::sleep(Duration::from_millis(120));
    }
    // Let readers settle on the final epoch, then stop the clock.
    std::thread::sleep(Duration::from_millis(120));
    done.store(true, Ordering::SeqCst);
    let elapsed = started.elapsed();
    let metrics_line = writer.request("METRICS").expect("metrics");
    writer.quit();

    let mut audits_ok = 0;
    let mut overloaded = 0;
    let mut latencies_us = Vec::new();
    for handle in readers {
        let (ok, rejected, lat) = handle.join().expect("reader join");
        audits_ok += ok;
        overloaded += rejected;
        latencies_us.extend(lat);
    }
    server.shutdown();
    server.join().expect("server drain");
    LoadReport {
        audits_ok,
        overloaded,
        elapsed,
        latencies_us,
        metrics_line,
    }
}

fn percentile_us(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * pct).round() as usize;
    sorted[rank]
}

/// The saturation contract: with a zero audit budget every `AUDIT` is
/// rejected immediately and typed — never queued.
fn assert_admission_contract(config: &AuditConfig) {
    let scn = scenario();
    let server = Server::start(
        view_of(&scn, config),
        Arc::new(Balanced::new(AttributeChoice::Worst)),
        config.clone(),
        ServeConfig {
            max_inflight: 0,
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    for _ in 0..10 {
        let started = Instant::now();
        let err = client.audit().expect_err("zero budget must reject");
        assert!(
            ServeClient::is_overloaded(&err),
            "expected ERR overloaded, got {err}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "rejection took {:?} — overload must answer immediately, not queue",
            started.elapsed()
        );
    }
    client.quit();
    server.shutdown();
    server.join().expect("drain");
}

fn metrics_u64(line: &str, key: &str) -> u64 {
    protocol::kv(line, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Write the machine-readable trajectory next to the bench target.
fn write_bench_json(report: &LoadReport, sorted_us: &[u64]) {
    let qps = report.audits_ok as f64 / report.elapsed.as_secs_f64();
    let json = format!(
        "{{\"bench\":\"serve_load\",\"workers\":{WORKERS},\"epochs\":{EPOCHS},\
\"readers\":{READERS},\"audits_ok\":{},\"audits_overloaded\":{},\"elapsed_ms\":{},\
\"qps\":{:.1},\"latency_us\":{{\"p50\":{},\"p99\":{},\"max\":{}}},\
\"server\":{{\"epochs_applied\":{},\"max_epoch_lag\":{},\"sessions\":{},\
\"engine\":{{\"distances_computed\":{},\"cache_hits\":{},\"rows_scanned\":{},\
\"bounds_screened\":{},\"exact_solves\":{},\"pool_tasks\":{},\
\"ground_cache_hits\":{},\"scratch_reuses\":{},\"warm_starts\":{}}}}}}}\n",
        report.audits_ok,
        report.overloaded,
        report.elapsed.as_millis(),
        qps,
        percentile_us(sorted_us, 0.50),
        percentile_us(sorted_us, 0.99),
        sorted_us.last().copied().unwrap_or(0),
        metrics_u64(&report.metrics_line, "epochs_applied"),
        metrics_u64(&report.metrics_line, "max_epoch_lag"),
        metrics_u64(&report.metrics_line, "sessions"),
        metrics_u64(&report.metrics_line, "distances_computed"),
        metrics_u64(&report.metrics_line, "cache_hits"),
        metrics_u64(&report.metrics_line, "rows_scanned"),
        metrics_u64(&report.metrics_line, "bounds_screened"),
        metrics_u64(&report.metrics_line, "exact_solves"),
        metrics_u64(&report.metrics_line, "pool_tasks"),
        metrics_u64(&report.metrics_line, "ground_cache_hits"),
        metrics_u64(&report.metrics_line, "scratch_reuses"),
        metrics_u64(&report.metrics_line, "warm_starts"),
    );
    // `cargo bench` runs with the package directory as cwd; BENCH_*.json
    // lands at the workspace root either way.
    let path = if std::path::Path::new("../../Cargo.toml").exists() {
        "../../BENCH_serve.json"
    } else {
        "BENCH_serve.json"
    };
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("serve_load: could not write {path}: {e}");
    }
    println!("serve_load trajectory: {json}");
}

fn assert_serve_contract() -> LoadReport {
    let config = AuditConfig::default();
    let expected = Arc::new(cold_bits(&scenario(), &config));
    assert_admission_contract(&config);
    let report = drive_load(&expected, &config);
    assert!(
        report.audits_ok >= 20,
        "sustained mixed traffic produced only {} audits — load was not sustained",
        report.audits_ok
    );
    assert_eq!(
        metrics_u64(&report.metrics_line, "epochs_applied"),
        EPOCHS as u64,
        "writer did not apply every epoch under read load"
    );
    report
}

fn bench_serve_load(c: &mut Criterion) {
    let report = assert_serve_contract();
    let mut sorted = report.latencies_us.clone();
    sorted.sort_unstable();
    write_bench_json(&report, &sorted);

    // Timing group: single-session audit round trips against a resident
    // server (protocol + snapshot clone + engine run).
    let config = AuditConfig::default();
    let scn = scenario();
    let server = Server::start(
        view_of(&scn, &config),
        Arc::new(Balanced::new(AttributeChoice::Worst)),
        config,
        ServeConfig::default(),
    )
    .expect("server start");
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    let mut group = c.benchmark_group("serve_load");
    group.sample_size(10);
    group.bench_function("audit_round_trip", |b| {
        b.iter(|| black_box(client.audit().expect("audit")))
    });
    group.bench_function("ping_round_trip", |b| {
        b.iter(|| black_box(client.request("PING").expect("ping")))
    });
    group.finish();
    client.quit();
    server.shutdown();
    server.join().expect("drain");
}

criterion_group!(benches, bench_serve_load);
criterion_main!(benches);
