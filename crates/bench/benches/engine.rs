//! Evaluation-engine bench: one unbalanced-style greedy round (score
//! every per-partition candidate split) over a ≥100-partition synthetic
//! audit, evaluated four ways — naive O(k²)-per-candidate recomputation,
//! memo-cached full evaluation, delta (incremental) evaluation, and the
//! cached evaluation's parallel path.
//!
//! Beyond timing, this bench *asserts* the engine's contract with real
//! counters (EMD evaluations, not wall-clock): the incremental path must
//! perform at least 5× fewer distance computations than the naive path
//! while every candidate score stays within 1e-9 of the naive value.

use criterion::{criterion_group, criterion_main, Criterion};
use fairjob_bench::prepare_population;
use fairjob_core::{AuditConfig, AuditContext, EvalEngine, IncrementalEval, Partition};
use fairjob_hist::distance::{DistanceError, Emd1d, HistogramDistance};
use fairjob_hist::Histogram;
use fairjob_marketplace::scoring::{LinearScore, ScoringFunction};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// [`Emd1d`] with an evaluation counter, so the naive path's distance
/// computations can be measured the same way the engine measures its own.
struct CountingEmd {
    count: AtomicU64,
}

impl HistogramDistance for CountingEmd {
    fn distance(&self, a: &Histogram, b: &Histogram) -> Result<f64, DistanceError> {
        self.count.fetch_add(1, Ordering::Relaxed);
        Emd1d.distance(a, b)
    }
    fn name(&self) -> &'static str {
        "counting-emd"
    }
}

/// The bench workload: a partitioning of ≥100 partitions (five of the
/// six attributes pre-split) plus every per-partition candidate split on
/// the remaining attribute, capped at `MAX_CANDIDATES`.
const MAX_CANDIDATES: usize = 40;

struct Workload<'a> {
    ctx: AuditContext<'a>,
    counter: Arc<CountingEmd>,
    base: Vec<Partition>,
    /// `(partition index, children)` candidate splits.
    candidates: Vec<(usize, Vec<Partition>)>,
}

fn workload<'a>(workers: &'a fairjob_store::table::Table, scores: &'a [f64]) -> Workload<'a> {
    let counter = Arc::new(CountingEmd {
        count: AtomicU64::new(0),
    });
    let cfg = AuditConfig::with_distance(counter.clone());
    let ctx = AuditContext::new(workers, scores, cfg).expect("audit context");
    let attrs = ctx.attributes().to_vec();
    let (pre_split, last) = (&attrs[..attrs.len() - 1], attrs[attrs.len() - 1]);
    let mut base = vec![ctx.root()];
    for &a in pre_split {
        base = base
            .iter()
            .flat_map(|p| ctx.split(p, a).unwrap_or_else(|| vec![p.clone()]))
            .collect();
    }
    assert!(
        base.len() >= 100,
        "bench workload must audit >= 100 partitions, got {}",
        base.len()
    );
    let candidates: Vec<(usize, Vec<Partition>)> = base
        .iter()
        .enumerate()
        .filter_map(|(i, p)| ctx.split(p, last).map(|children| (i, children)))
        .take(MAX_CANDIDATES)
        .collect();
    assert!(
        candidates.len() >= 10,
        "not enough candidate splits: {}",
        candidates.len()
    );
    Workload {
        ctx,
        counter,
        base,
        candidates,
    }
}

fn materialise(base: &[Partition], index: usize, children: &[Partition]) -> Vec<Partition> {
    let mut out = Vec::with_capacity(base.len() + children.len());
    for (i, p) in base.iter().enumerate() {
        if i == index {
            out.extend(children.iter().cloned());
        } else {
            out.push(p.clone());
        }
    }
    out
}

/// Score every candidate naively (fresh O(k²) evaluation each).
fn naive_round(w: &Workload<'_>) -> Vec<f64> {
    w.candidates
        .iter()
        .map(|(i, children)| {
            w.ctx
                .unfairness(&materialise(&w.base, *i, children))
                .expect("naive eval")
        })
        .collect()
}

/// Score every candidate through a fresh engine's cached full evaluation.
fn cached_round(w: &Workload<'_>, parallel: bool) -> (Vec<f64>, u64) {
    let engine = if parallel {
        EvalEngine::new(&w.ctx)
            .with_parallel_threshold(64)
            .with_threads(4)
    } else {
        EvalEngine::new(&w.ctx).with_parallel_threshold(usize::MAX)
    };
    let values = w
        .candidates
        .iter()
        .map(|(i, children)| {
            engine
                .unfairness(&materialise(&w.base, *i, children))
                .expect("cached eval")
        })
        .collect();
    (values, engine.stats().distances_computed)
}

/// Score every candidate by delta evaluation over one seeded averager.
fn incremental_round(w: &Workload<'_>) -> (Vec<f64>, u64) {
    let engine = EvalEngine::new(&w.ctx);
    let mut incremental = IncrementalEval::new(&engine, &w.base).expect("seed");
    let values = w
        .candidates
        .iter()
        .map(|(i, children)| {
            incremental
                .score_replacements(&[(*i, children.as_slice())])
                .expect("delta eval")
        })
        .collect();
    (values, engine.stats().distances_computed)
}

/// The counter/parity contract, asserted once with real workloads before
/// any timing runs.
fn assert_engine_contract(w: &Workload<'_>) {
    w.counter.count.store(0, Ordering::Relaxed);
    let naive = naive_round(w);
    let naive_count = w.counter.count.load(Ordering::Relaxed);

    let (cached, cached_count) = cached_round(w, false);
    let (parallel, parallel_count) = cached_round(w, true);
    let (incremental, incremental_count) = incremental_round(w);
    for (label, values) in [
        ("cached", &cached),
        ("parallel", &parallel),
        ("incremental", &incremental),
    ] {
        assert_eq!(values.len(), naive.len());
        for (got, want) in values.iter().zip(&naive) {
            assert!(
                (got - want).abs() < 1e-9,
                "{label} diverged from naive: {got} vs {want}"
            );
        }
    }
    for (label, count) in [
        ("cached", cached_count),
        ("parallel", parallel_count),
        ("incremental", incremental_count),
    ] {
        assert!(
            count.saturating_mul(5) <= naive_count,
            "{label} path must compute >= 5x fewer distances: {count} vs naive {naive_count}"
        );
    }
    println!(
        "engine contract: {} partitions, {} candidates; EMD evals: naive {}, cached {}, \
         parallel {}, incremental {} ({}x fewer)",
        w.base.len(),
        w.candidates.len(),
        naive_count,
        cached_count,
        parallel_count,
        incremental_count,
        naive_count / incremental_count.max(1),
    );
}

fn bench_engine(c: &mut Criterion) {
    let workers = prepare_population(4000, 0xEDB7_2019);
    let scores = LinearScore::alpha("f1", 0.5)
        .score_all(&workers)
        .expect("scores");
    let w = workload(&workers, &scores);
    assert_engine_contract(&w);

    let mut group = c.benchmark_group("engine_greedy_round");
    group.sample_size(10);
    group.bench_function("naive", |b| b.iter(|| black_box(naive_round(&w))));
    group.bench_function("cached", |b| {
        b.iter(|| black_box(cached_round(&w, false).0))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(cached_round(&w, true).0))
    });
    group.bench_function("incremental", |b| {
        b.iter(|| black_box(incremental_round(&w)))
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
