//! Sharded-kernel scale bench: end-to-end audit through the sharded,
//! vectorization-friendly per-row kernels versus the legacy scalar
//! path (`shards = off`), at the **same thread count**.
//!
//! Beyond timing, this bench *asserts* the sharding contract:
//!
//! - on a ≥1M-row population the sharded audit (context build +
//!   balanced search over the gate's protected attributes) is **at
//!   least 2× faster** end-to-end than the `shards = off` baseline —
//!   the gate that keeps the vectorized kernels honest;
//! - sharded and scalar audits are **bit-identical** (unfairness bits
//!   and partition count) across shard counts × thread counts;
//! - the shard counters attribute truthfully: `shard_tasks` and
//!   `rows_classified_parallel` are positive exactly when sharding is
//!   enabled, and the row meter is layout-independent.
//!
//! It also extends the machine-readable perf trajectory: a
//! `BENCH_shard.json` next to the workspace root with both end-to-end
//! timings and the speedup, uploaded as a CI artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use fairjob_core::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
use fairjob_core::{AuditConfig, AuditContext, AuditResult};
use fairjob_marketplace::scoring::{LinearScore, ScoringFunction};
use fairjob_marketplace::{bucketise_numeric_protected, generate_uniform};
use fairjob_store::{ShardPolicy, Table};
use std::hint::black_box;
use std::time::Instant;

/// Rows for the speedup gate — the ISSUE's "1M-row audit".
const GATE_ROWS: usize = 1_000_000;
/// Required end-to-end speedup of the sharded path over `shards = off`.
const GATE_SPEEDUP: f64 = 2.0;
/// Rows for the bit-identity grid (small enough to sweep layouts).
const PARITY_ROWS: usize = 20_000;
/// Rows for the Criterion samples (the gate run is too big to repeat
/// `sample_size` times).
const BENCH_ROWS: usize = 200_000;
const SEED: u64 = 0x5AAD;

fn population(rows: usize) -> (Table, Vec<f64>) {
    let mut table = generate_uniform(rows, SEED);
    bucketise_numeric_protected(&mut table).expect("bucketise");
    let scores = LinearScore::alpha("f1", 0.5)
        .score_all(&table)
        .expect("score");
    (table, scores)
}

/// Protected attributes of the gate audit. Two low-cardinality
/// attributes keep the workload dominated by the per-row kernels the
/// sharded path vectorizes (classification, index build, split walks);
/// auditing every attribute instead drowns both paths in the same
/// exact-EMD solves over ~1800 partitions and measures the solver, not
/// the layout.
const GATE_ATTRS: &[&str] = &["gender", "country"];

/// One end-to-end audit: context build (validation + classification +
/// index build) plus the balanced search — everything the shard layout
/// touches. `attrs = None` audits every protected attribute.
fn run_audit(
    table: &Table,
    scores: &[f64],
    shards: ShardPolicy,
    threads: usize,
    attrs: Option<&[&str]>,
) -> AuditResult {
    let config = AuditConfig {
        shards,
        threads: Some(threads),
        attributes: attrs.map(|names| names.iter().map(|a| a.to_string()).collect()),
        ..AuditConfig::default()
    };
    let ctx = AuditContext::new(table, scores, config).expect("context");
    Balanced::new(AttributeChoice::Worst)
        .run(&ctx)
        .expect("audit")
}

/// Best-of-`n` wall time of `f`, in microseconds.
fn best_of_us(n: usize, mut f: impl FnMut()) -> u128 {
    (0..n)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed().as_micros()
        })
        .min()
        .expect("at least one run")
}

struct GateReport {
    scalar_us: u128,
    sharded_us: u128,
    speedup: f64,
}

/// The scale gate: ≥ [`GATE_SPEEDUP`]× end-to-end on [`GATE_ROWS`]
/// rows, same thread count, bit-identical answers, truthful counters.
fn assert_scale_gate(table: &Table, scores: &[f64]) -> GateReport {
    let scalar = run_audit(table, scores, ShardPolicy::Disabled, 1, Some(GATE_ATTRS));
    let sharded = run_audit(table, scores, ShardPolicy::Auto, 1, Some(GATE_ATTRS));
    assert_eq!(
        scalar.unfairness.to_bits(),
        sharded.unfairness.to_bits(),
        "sharded audit diverged from the scalar baseline"
    );
    assert_eq!(scalar.partitioning.len(), sharded.partitioning.len());
    assert_eq!(scalar.engine.shard_tasks, 0, "scalar run dispatched shards");
    assert_eq!(scalar.engine.rows_classified_parallel, 0);
    assert!(
        sharded.engine.shard_tasks > 0,
        "sharded run dispatched no shard tasks"
    );
    assert!(
        sharded.engine.rows_classified_parallel >= GATE_ROWS as u64,
        "sharded run metered {} rows, expected at least the population",
        sharded.engine.rows_classified_parallel
    );

    // Interleaved best-of-3 keeps a one-off stall on either side from
    // deciding the gate.
    let scalar_us = best_of_us(3, || {
        black_box(run_audit(
            table,
            scores,
            ShardPolicy::Disabled,
            1,
            Some(GATE_ATTRS),
        ));
    });
    let sharded_us = best_of_us(3, || {
        black_box(run_audit(
            table,
            scores,
            ShardPolicy::Auto,
            1,
            Some(GATE_ATTRS),
        ));
    });
    let speedup = scalar_us as f64 / sharded_us.max(1) as f64;
    assert!(
        speedup >= GATE_SPEEDUP,
        "sharded audit is only {speedup:.2}x the scalar path \
         ({scalar_us}us vs {sharded_us}us) — the gate requires {GATE_SPEEDUP}x"
    );
    GateReport {
        scalar_us,
        sharded_us,
        speedup,
    }
}

/// Bit-identity and counter attribution across shard × thread layouts.
fn assert_layout_parity(table: &Table, scores: &[f64]) {
    let baseline = run_audit(table, scores, ShardPolicy::Disabled, 1, None);
    let mut rows_metered: Vec<u64> = Vec::new();
    for shards in [
        ShardPolicy::Fixed(1),
        ShardPolicy::Fixed(2),
        ShardPolicy::Fixed(3),
        ShardPolicy::Fixed(7),
        ShardPolicy::Auto,
    ] {
        for threads in [1usize, 2, 8] {
            let got = run_audit(table, scores, shards, threads, None);
            assert_eq!(
                got.unfairness.to_bits(),
                baseline.unfairness.to_bits(),
                "shards={shards} threads={threads} diverged"
            );
            assert_eq!(got.partitioning.len(), baseline.partitioning.len());
            assert!(
                got.engine.shard_tasks > 0,
                "shards={shards}: no shard tasks"
            );
            rows_metered.push(got.engine.rows_classified_parallel);
        }
    }
    assert!(
        rows_metered.iter().all(|&r| r > 0 && r == rows_metered[0]),
        "rows_classified_parallel is layout-dependent: {rows_metered:?}"
    );
}

/// Write the machine-readable trajectory next to the workspace root.
fn write_bench_json(report: &GateReport) {
    let json = format!(
        "{{\"bench\":\"shard_scale\",\"rows\":{GATE_ROWS},\
\"attrs\":\"{}\",\"scalar_us\":{},\"sharded_us\":{},\"speedup\":{:.2},\
\"gate_speedup\":{GATE_SPEEDUP}}}\n",
        GATE_ATTRS.join(","),
        report.scalar_us,
        report.sharded_us,
        report.speedup,
    );
    // `cargo bench` runs with the package directory as cwd; BENCH_*.json
    // lands at the workspace root either way.
    let path = if std::path::Path::new("../../Cargo.toml").exists() {
        "../../BENCH_shard.json"
    } else {
        "BENCH_shard.json"
    };
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("shard_scale: could not write {path}: {e}");
    }
    println!("shard_scale trajectory: {json}");
}

fn bench_shard_scale(c: &mut Criterion) {
    let (parity_table, parity_scores) = population(PARITY_ROWS);
    assert_layout_parity(&parity_table, &parity_scores);

    let (gate_table, gate_scores) = population(GATE_ROWS);
    let report = assert_scale_gate(&gate_table, &gate_scores);
    write_bench_json(&report);
    drop((gate_table, gate_scores));

    let (table, scores) = population(BENCH_ROWS);
    let mut group = c.benchmark_group("shard_scale");
    group.sample_size(10);
    group.bench_function("audit_sharded", |b| {
        b.iter(|| {
            black_box(run_audit(
                &table,
                &scores,
                ShardPolicy::Auto,
                1,
                Some(GATE_ATTRS),
            ))
        })
    });
    group.bench_function("audit_scalar", |b| {
        b.iter(|| {
            black_box(run_audit(
                &table,
                &scores,
                ShardPolicy::Disabled,
                1,
                Some(GATE_ATTRS),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_shard_scale);
criterion_main!(benches);
