//! Pairwise-EMD kernel bench: the bound-screen / exact-solve funnel on
//! a ≥100-partition synthetic audit — the innermost loop of Definition
//! 2, where every unfairness evaluation averages the distance over all
//! partition pairs.
//!
//! Three paths are timed. `screened` runs [`pairwise_emd_batch`] with
//! `Emd1d`, whose cached-prefix-CDF closed form settles every pair in
//! the bound screen without an exact solve. `exact_only` runs the same
//! kernel with the bound-less wrapper, forcing the full solver on every
//! pair (the seed behaviour). `exact_only_parallel` adds the persistent
//! worker pool.
//!
//! Beyond timing, this bench *asserts* the kernel's contract with real
//! counters before any timing runs:
//!
//! * the bound screen prunes at least 50% of the exact solves (for
//!   `Emd1d` it settles 100% of the pairs);
//! * the screened value is bit-identical to the serial reference, and
//!   value + counters are identical for every thread count;
//! * a hopeless batch is abandoned by its upper bound with zero exact
//!   solves, while an incumbent is never abandoned against its own
//!   value;
//! * the branch-and-bound candidate search actually prunes on this
//!   workload (engine `bounds_screened > 0`) and matches the unpruned
//!   value bit for bit;
//! * repeated batches spawn no new pool threads — workers are spawned
//!   once and reused, never per call.

use criterion::{criterion_group, criterion_main, Criterion};
use fairjob_bench::prepare_population;
use fairjob_core::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
use fairjob_core::pool::WorkerPool;
use fairjob_core::unfairness::{average_pairwise, pairwise_emd_batch, BatchValue};
use fairjob_core::{AuditConfig, AuditContext, Partition};
use fairjob_hist::distance::Emd1d;
use fairjob_hist::{DistanceError, Histogram, HistogramDistance};
use fairjob_marketplace::scoring::{LinearScore, ScoringFunction};
use std::hint::black_box;
use std::sync::Arc;

/// `Emd1d` stripped of its bound provider: identical distances, but
/// every pair pays an exact solve — the pre-kernel baseline.
#[derive(Debug)]
struct NoBounds;

impl HistogramDistance for NoBounds {
    fn distance(&self, a: &Histogram, b: &Histogram) -> Result<f64, DistanceError> {
        Emd1d.distance(a, b)
    }
    fn name(&self) -> &'static str {
        "emd-no-bounds"
    }
}

/// The ≥100-partition workload of the split-search bench: five of the
/// six attributes pre-split over the standard generated population.
fn partitions(ctx: &AuditContext<'_>) -> Vec<Partition> {
    let attrs = ctx.attributes().to_vec();
    let mut parts = vec![ctx.root()];
    for &a in &attrs[..attrs.len() - 1] {
        parts = parts
            .iter()
            .flat_map(|p| ctx.split(p, a).unwrap_or_else(|| vec![p.clone()]))
            .collect();
    }
    assert!(
        parts.len() >= 100,
        "bench workload must cover >= 100 partitions, got {}",
        parts.len()
    );
    parts
}

/// The kernel contract: bit-identity, thread independence, and the
/// >= 50% prune-rate gate CI runs this bench for.
fn assert_kernel_contract(hists: &[&Histogram]) {
    let serial = average_pairwise(hists, &Emd1d).expect("serial reference");
    let out = pairwise_emd_batch(hists, &Emd1d, 1, None).expect("screened kernel");
    assert_eq!(
        out.value,
        BatchValue::Average(serial),
        "screened kernel diverged from the serial reference"
    );
    let stats = out.stats;
    assert!(stats.pairs > 0);
    assert!(
        stats.bounds_screened * 2 >= stats.pairs,
        "bound screen settled {} of {} pairs — fewer than the 50% the kernel promises",
        stats.bounds_screened,
        stats.pairs
    );
    for threads in [2usize, 3, 8] {
        let par = pairwise_emd_batch(hists, &Emd1d, threads, None).expect("parallel kernel");
        assert_eq!(par.stats, stats, "{threads}-thread counters diverged");
        assert_eq!(par.value, out.value, "{threads}-thread value diverged");
    }
    // The exact-only path agrees too (it solves every pair), and its
    // counters show the funnel the screen removes.
    let exact = pairwise_emd_batch(hists, &NoBounds, 4, None).expect("exact kernel");
    let BatchValue::Average(exact_value) = exact.value else {
        panic!("no abandon threshold was set");
    };
    assert!(
        (exact_value - serial).abs() < 1e-9,
        "exact kernel diverged: {exact_value} vs {serial}"
    );
    assert_eq!(exact.stats.exact_solves, stats.pairs);

    // Abandonment: against an unbeatable incumbent the whole batch is
    // given up from bounds alone; against its own value it never is.
    let hopeless =
        pairwise_emd_batch(hists, &Emd1d, 1, Some(serial * 2.0 + 1.0)).expect("hopeless batch");
    let BatchValue::Abandoned(upper) = hopeless.value else {
        panic!("batch should be abandoned against an unbeatable incumbent");
    };
    assert_eq!(
        upper.to_bits(),
        serial.to_bits(),
        "exact bounds must reproduce the average as the upper bound"
    );
    assert_eq!(hopeless.stats.exact_solves, 0);
    let incumbent = pairwise_emd_batch(hists, &Emd1d, 1, Some(serial)).expect("incumbent batch");
    assert_eq!(incumbent.value, BatchValue::Average(serial));

    println!(
        "kernel contract: {} histograms, {} pairs; screened {} ({}%), exact solves {}, pool tasks {} (exact-only path: {} solves, {} pool tasks)",
        hists.len(),
        stats.pairs,
        stats.bounds_screened,
        100 * stats.bounds_screened / stats.pairs,
        stats.exact_solves,
        stats.pool_tasks,
        exact.stats.exact_solves,
        exact.stats.pool_tasks,
    );
}

/// The branch-and-bound search contract: with bounds available the
/// Worst-attribute search prunes candidates (real counter, not timing)
/// and still returns the unpruned result bit for bit.
fn assert_search_prunes(ctx: &AuditContext<'_>, unpruned_ctx: &AuditContext<'_>) {
    let pruned = Balanced::new(AttributeChoice::Worst)
        .run(ctx)
        .expect("pruned search");
    let unpruned = Balanced::new(AttributeChoice::Worst)
        .run(unpruned_ctx)
        .expect("unpruned search");
    assert_eq!(
        pruned.unfairness.to_bits(),
        unpruned.unfairness.to_bits(),
        "pruning changed the search result: {} vs {}",
        pruned.unfairness,
        unpruned.unfairness
    );
    assert_eq!(pruned.partitioning.len(), unpruned.partitioning.len());
    assert!(
        pruned.engine.bounds_screened > 0,
        "the candidate search never pruned on the standard workload"
    );
    assert_eq!(unpruned.engine.bounds_screened, 0);
    println!(
        "search contract: pruned run screened {} pairs, solved {} exactly ({} distances computed); unpruned run computed {}",
        pruned.engine.bounds_screened,
        pruned.engine.exact_solves,
        pruned.engine.distances_computed,
        unpruned.engine.distances_computed,
    );
}

/// The pool contract: batches reuse the persistent workers — the
/// lifetime spawn counter stays flat across repeated calls.
fn assert_pool_persistence(hists: &[&Histogram]) {
    let pool = WorkerPool::global();
    let _ = pairwise_emd_batch(hists, &NoBounds, 4, None).expect("warm-up batch");
    let spawned = pool.threads_spawned();
    assert!(
        spawned <= pool.max_workers(),
        "pool spawned {spawned} threads with a cap of {}",
        pool.max_workers()
    );
    for _ in 0..20 {
        let _ = pairwise_emd_batch(hists, &NoBounds, 4, None).expect("repeat batch");
    }
    assert_eq!(
        pool.threads_spawned(),
        spawned,
        "repeated batches spawned new threads — per-call spawning is back"
    );
    println!(
        "pool contract: {} lifetime spawns over 21 parallel batches (cap {})",
        pool.threads_spawned(),
        pool.max_workers()
    );
}

fn bench_pairwise_kernel(c: &mut Criterion) {
    let workers = prepare_population(4000, 0xEDB7_2019);
    let scores = LinearScore::alpha("f1", 0.5)
        .score_all(&workers)
        .expect("scores");
    let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).expect("audit context");
    let unpruned_ctx = AuditContext::new(
        &workers,
        &scores,
        AuditConfig::with_distance(Arc::new(NoBounds)),
    )
    .expect("unpruned context");
    let parts = partitions(&ctx);
    let hists: Vec<&Histogram> = parts
        .iter()
        .map(|p| &p.histogram)
        .filter(|h| !h.is_empty())
        .collect();

    assert_kernel_contract(&hists);
    assert_search_prunes(&ctx, &unpruned_ctx);
    assert_pool_persistence(&hists);

    let mut group = c.benchmark_group("pairwise_kernel");
    group.sample_size(10);
    group.bench_function("screened", |b| {
        b.iter(|| black_box(pairwise_emd_batch(&hists, &Emd1d, 1, None).expect("kernel")))
    });
    group.bench_function("exact_only", |b| {
        b.iter(|| black_box(pairwise_emd_batch(&hists, &NoBounds, 1, None).expect("kernel")))
    });
    group.bench_function("exact_only_parallel", |b| {
        b.iter(|| black_box(pairwise_emd_batch(&hists, &NoBounds, 4, None).expect("kernel")))
    });
    group.finish();
}

criterion_group!(benches, bench_pairwise_kernel);
criterion_main!(benches);
