//! Out-of-core scale bench: a 1M-row audit streamed off the paged
//! store through a buffer-manager budget of **a quarter of the column
//! footprint** (the file is 4× over budget) versus the same audit over
//! the fully in-memory context.
//!
//! Beyond timing, this bench *asserts* the out-of-core contract:
//!
//! - the 4×-over-budget paged audit finishes in **at most 1.5×** the
//!   in-memory end-to-end runtime — the gate that keeps the paged scan
//!   path (fused per-page classification, page-ordered index build,
//!   page-aligned shards) honest;
//! - paged and in-memory audits are **bit-identical** (unfairness bits
//!   and partition count) — at the tight budget and at an unbounded
//!   one;
//! - the page counters attribute truthfully: misses and scans are
//!   positive, the over-budget run evicts, and the in-memory run
//!   touches no pages at all.
//!
//! It also extends the machine-readable perf trajectory: a
//! `BENCH_paged.json` next to the workspace root with both end-to-end
//! timings and the ratio, uploaded as a CI artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use fairjob_core::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
use fairjob_core::{AuditConfig, AuditContext, AuditResult};
use fairjob_marketplace::scoring::{LinearScore, ScoringFunction};
use fairjob_marketplace::{bucketise_numeric_protected, generate_uniform};
use fairjob_store::paged::{write_paged, PagedColumn};
use fairjob_store::{PagedStore, ShardPolicy, Table};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Rows for the runtime gate — the ISSUE's "1M-row audit".
const GATE_ROWS: usize = 1_000_000;
/// Maximum paged-vs-in-memory end-to-end runtime ratio at the gate.
const GATE_RATIO: f64 = 1.5;
/// The file must exceed the budget by at least this factor for the
/// gate to count as out-of-core.
const GATE_OVER_BUDGET: u64 = 4;
/// Rows for the Criterion samples (the gate run is too big to repeat
/// `sample_size` times).
const BENCH_ROWS: usize = 200_000;
const SEED: u64 = 0x9A6E;

/// Protected attributes of the gate audit — the same pair as
/// `shard_scale`, so the two trajectories measure the same workload
/// through different storage paths.
const GATE_ATTRS: &[&str] = &["gender", "country"];

fn population(rows: usize) -> (Table, Vec<f64>) {
    let mut table = generate_uniform(rows, SEED);
    bucketise_numeric_protected(&mut table).expect("bucketise");
    let scores = LinearScore::alpha("f1", 0.5)
        .score_all(&table)
        .expect("score");
    (table, scores)
}

fn config(threads: usize) -> AuditConfig {
    AuditConfig {
        shards: ShardPolicy::Auto,
        threads: Some(threads),
        attributes: Some(GATE_ATTRS.iter().map(|a| a.to_string()).collect()),
        ..AuditConfig::default()
    }
}

fn run_mem(table: &Table, scores: &[f64]) -> AuditResult {
    let ctx = AuditContext::new(table, scores, config(1)).expect("context");
    Balanced::new(AttributeChoice::Worst)
        .run(&ctx)
        .expect("audit")
}

fn run_paged(store: &PagedStore) -> AuditResult {
    let ctx = AuditContext::from_paged(store, config(1), None, None).expect("paged context");
    Balanced::new(AttributeChoice::Worst)
        .run(&ctx)
        .expect("audit")
}

/// Best-of-`n` wall time of `f`, in microseconds.
fn best_of_us(n: usize, mut f: impl FnMut()) -> u128 {
    (0..n)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed().as_micros()
        })
        .min()
        .expect("at least one run")
}

/// A scratch paged file, removed on drop.
struct TempPaged(PathBuf);

impl TempPaged {
    fn write(tag: &str, table: &Table, scores: &[f64]) -> (Self, u64) {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "fairjob-paged-bench-{}-{tag}.fjp",
            std::process::id()
        ));
        let summary = write_paged(&path, table, Some(scores), None, 0, 10).expect("write paged");
        (TempPaged(path), summary.bytes)
    }
}

impl Drop for TempPaged {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

struct GateReport {
    mem_us: u128,
    paged_us: u128,
    ratio: f64,
    budget: usize,
    working_set: usize,
    file_bytes: u64,
}

/// Decoded bytes of the pages this audit actually reads: the score
/// column plus the audited attribute columns. The budget is set
/// against this working set (not the whole file — columns the audit
/// never touches create no cache pressure).
fn audited_working_set(store: &PagedStore, table: &Table) -> usize {
    let mut columns = vec![PagedColumn::Scores];
    for name in GATE_ATTRS {
        columns.push(PagedColumn::Attribute(
            table.schema().index_of(name).expect("gate attribute"),
        ));
    }
    columns
        .iter()
        .flat_map(|&column| store.pages_of(column))
        .map(|&id| {
            let meta = store.page_meta(id);
            meta.rows as usize * meta.kind.row_bytes()
        })
        .sum()
}

/// The out-of-core gate: ≤ [`GATE_RATIO`]× end-to-end on [`GATE_ROWS`]
/// rows with the audited working set [`GATE_OVER_BUDGET`]× over
/// budget, bit-identical answers, truthful counters.
fn assert_paged_gate(table: &Table, scores: &[f64]) -> GateReport {
    let (tmp, file_bytes) = TempPaged::write("gate", table, scores);
    let sizing = PagedStore::open(&tmp.0, 1).expect("open for sizing");
    let working_set = audited_working_set(&sizing, table);
    drop(sizing);
    let budget = working_set / GATE_OVER_BUDGET as usize;
    assert!(
        working_set >= GATE_OVER_BUDGET as usize * budget,
        "budget {budget} does not put the {working_set}-byte working set \
         {GATE_OVER_BUDGET}x over budget"
    );
    let store = PagedStore::open(&tmp.0, budget).expect("open");

    let mem = run_mem(table, scores);
    let paged = run_paged(&store);
    assert_eq!(
        mem.unfairness.to_bits(),
        paged.unfairness.to_bits(),
        "paged audit diverged from the in-memory baseline"
    );
    assert_eq!(mem.partitioning.len(), paged.partitioning.len());

    // Counter truthfulness: the in-memory run touches no pages; the
    // over-budget paged run faults pages in, scans them, and must evict
    // to stay within budget.
    assert_eq!(mem.engine.page_misses, 0, "in-memory run touched pages");
    assert_eq!(mem.engine.pages_scanned, 0);
    assert!(paged.engine.page_misses > 0, "paged run faulted no pages");
    assert!(paged.engine.pages_scanned > 0, "paged run scanned no pages");
    assert!(
        paged.engine.page_evictions > 0,
        "a {GATE_OVER_BUDGET}x-over-budget audit never evicted \
         (budget {budget}, working set {working_set}, file {file_bytes})"
    );

    // A roomy budget answers identically — the cache is invisible.
    let roomy = PagedStore::open(&tmp.0, usize::MAX).expect("open roomy");
    let unbounded = run_paged(&roomy);
    assert_eq!(unbounded.unfairness.to_bits(), mem.unfairness.to_bits());
    assert_eq!(unbounded.engine.page_evictions, 0);
    drop(roomy);

    // Interleaved best-of-3 keeps a one-off stall on either side from
    // deciding the gate.
    let mem_us = best_of_us(3, || {
        black_box(run_mem(table, scores));
    });
    let paged_us = best_of_us(3, || {
        black_box(run_paged(&store));
    });
    let ratio = paged_us as f64 / mem_us.max(1) as f64;
    assert!(
        ratio <= GATE_RATIO,
        "out-of-core audit is {ratio:.2}x the in-memory path \
         ({paged_us}us vs {mem_us}us) — the gate allows {GATE_RATIO}x"
    );
    GateReport {
        mem_us,
        paged_us,
        ratio,
        budget,
        working_set,
        file_bytes,
    }
}

/// Write the machine-readable trajectory next to the workspace root.
fn write_bench_json(report: &GateReport) {
    let json = format!(
        "{{\"bench\":\"paged_scan\",\"rows\":{GATE_ROWS},\
\"attrs\":\"{}\",\"file_bytes\":{},\"working_set\":{},\"mem_budget\":{},\
\"mem_us\":{},\"paged_us\":{},\"ratio\":{:.2},\"gate_ratio\":{GATE_RATIO}}}\n",
        GATE_ATTRS.join(","),
        report.file_bytes,
        report.working_set,
        report.budget,
        report.mem_us,
        report.paged_us,
        report.ratio,
    );
    // `cargo bench` runs with the package directory as cwd; BENCH_*.json
    // lands at the workspace root either way.
    let path = if std::path::Path::new("../../Cargo.toml").exists() {
        "../../BENCH_paged.json"
    } else {
        "BENCH_paged.json"
    };
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("paged_scan: could not write {path}: {e}");
    }
    println!("paged_scan trajectory: {json}");
}

fn bench_paged_scan(c: &mut Criterion) {
    let (gate_table, gate_scores) = population(GATE_ROWS);
    let report = assert_paged_gate(&gate_table, &gate_scores);
    write_bench_json(&report);
    drop((gate_table, gate_scores));

    let (table, scores) = population(BENCH_ROWS);
    let (tmp, _file_bytes) = TempPaged::write("criterion", &table, &scores);
    let sizing = PagedStore::open(&tmp.0, 1).expect("open for sizing");
    let budget = audited_working_set(&sizing, &table) / GATE_OVER_BUDGET as usize;
    drop(sizing);
    let store = PagedStore::open(&tmp.0, budget).expect("open");
    let mut group = c.benchmark_group("paged_scan");
    group.sample_size(10);
    group.bench_function("audit_paged_quarter_budget", |b| {
        b.iter(|| black_box(run_paged(&store)))
    });
    group.bench_function("audit_in_memory", |b| {
        b.iter(|| black_box(run_mem(&table, &scores)))
    });
    group.finish();
}

criterion_group!(benches, bench_paged_scan);
criterion_main!(benches);
