//! Criterion micro-benches for the columnar store: index split vs
//! group-by scan, predicate filtering, histogram construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairjob_bench::prepare_population;
use fairjob_hist::{BinSpec, Histogram};
use fairjob_store::groupby::group_by;
use fairjob_store::index::CategoricalIndex;
use fairjob_store::{Predicate, RowSet};
use std::hint::black_box;

fn bench_split_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("split_7300_workers");
    let table = prepare_population(7300, 3);
    let all = RowSet::all(table.len());
    let ethnicity = table.schema().index_of("ethnicity").expect("attr");
    let index = CategoricalIndex::build(&table, ethnicity).expect("index");
    group.bench_function("group_by_scan", |b| {
        b.iter(|| group_by(black_box(&table), black_box(&all), ethnicity).unwrap())
    });
    group.bench_function("index_split", |b| b.iter(|| index.split(black_box(&all))));
    group.bench_function("index_build", |b| {
        b.iter(|| CategoricalIndex::build(black_box(&table), ethnicity).unwrap())
    });
    group.finish();
}

fn bench_predicate_filter(c: &mut Criterion) {
    let table = prepare_population(7300, 3);
    let all = RowSet::all(table.len());
    let gender = table.schema().index_of("gender").expect("attr");
    let country = table.schema().index_of("country").expect("attr");
    let mut group = c.benchmark_group("predicate_filter_7300");
    for constraints in [1usize, 2] {
        let pred = if constraints == 1 {
            Predicate::eq(gender, 0)
        } else {
            Predicate::eq(gender, 0).and(country, 1)
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(constraints),
            &pred,
            |b, pred| b.iter(|| pred.filter(black_box(&table), black_box(&all)).unwrap()),
        );
    }
    group.finish();
}

fn bench_rowset_vs_bitmap(c: &mut Criterion) {
    use fairjob_store::bitmap::Bitmap;
    let universe = 7300usize;
    let mut group = c.benchmark_group("set_intersection_7300_universe");
    for density_pct in [1usize, 10, 50] {
        let step = 100 / density_pct;
        let a = RowSet::from_rows((0..universe as u32).step_by(step).collect());
        let b = RowSet::from_rows(
            (0..universe as u32)
                .skip(1)
                .step_by(step)
                .chain(a.rows().iter().copied().take(a.len() / 2))
                .collect(),
        );
        let ba = Bitmap::from_rowset(&a, universe);
        let bb = Bitmap::from_rowset(&b, universe);
        group.bench_with_input(
            BenchmarkId::new("rowset", density_pct),
            &density_pct,
            |bench, _| bench.iter(|| black_box(&a).intersect(black_box(&b))),
        );
        group.bench_with_input(
            BenchmarkId::new("bitmap", density_pct),
            &density_pct,
            |bench, _| bench.iter(|| black_box(&ba).intersect(black_box(&bb))),
        );
    }
    group.finish();
}

fn bench_histogramming(c: &mut Criterion) {
    let spec = BinSpec::equal_width(0.0, 1.0, 10).expect("spec");
    let scores: Vec<f64> = (0..7300).map(|i| (i % 997) as f64 / 997.0).collect();
    c.bench_function("histogram_7300_scores", |b| {
        b.iter(|| Histogram::from_values(spec.clone(), black_box(&scores).iter().copied()))
    });
}

criterion_group!(
    benches,
    bench_split_paths,
    bench_predicate_filter,
    bench_rowset_vs_bitmap,
    bench_histogramming
);
criterion_main!(benches);
