//! Exact-solver arena bench: the zero-allocation solve path against the
//! allocate-per-solve legacy path, on the audit's own histograms.
//!
//! Three claims are *asserted* with real counters and bit comparisons
//! before any timing runs:
//!
//! * **Value safety** — the arena path ([`HistogramDistance::distance_with`]
//!   on a persistent [`SolveScratch`]) is bit-identical to the legacy
//!   per-solve path for every pair, the flow and simplex backends agree
//!   to 1e-9, and a warm-started solve is bit-identical to a cold one.
//! * **Cache discipline** — after one primed warm-up, twenty repeated
//!   batches cause **zero** new ground-matrix builds (at most one build
//!   per bin grid per process) and every solve is a ground-cache hit;
//!   the steady-state scratch [`SolveScratch::footprint`] stops growing,
//!   so the solve loop no longer touches the allocator.
//! * **Determinism** — value and *all* batch counters (including
//!   `ground_cache_hits` / `scratch_reuses` / `warm_starts`) are
//!   identical for 1, 2, 3 and 8 threads.
//!
//! Finally the ≥2× speedup gate: on the sparse exact-survivor profile
//! (deep partitions, the histograms the bound screen actually sends to
//! the exact solver), a pairwise sweep on the shared scratch must run at
//! least twice as fast as the seed's allocate-per-solve path — the PR-4
//! solver, reproduced in [`seed`] with its original allocation shape
//! (fresh graph per solve, fresh Dijkstra buffers per augmentation) and
//! value-checked against the arena path to 1e-9 before being timed.

use criterion::{criterion_group, criterion_main, Criterion};
use fairjob_bench::prepare_population;
use fairjob_core::unfairness::{pairwise_emd_batch, BatchValue};
use fairjob_core::{AuditConfig, AuditContext, Partition};
use fairjob_emd::{GroundCache, Solver};
use fairjob_hist::distance::EmdExact;
use fairjob_hist::{BinSpec, Histogram, HistogramDistance, ScratchStats, SolveScratch};
use fairjob_marketplace::scoring::{LinearScore, ScoringFunction};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The seed's exact-EMD path, reproduced with its original allocation
/// shape: a fresh residual graph per solve (`Vec<Vec<usize>>` adjacency,
/// per-edge pushes) and fresh `dist`/`prev`/heap buffers per Dijkstra
/// round. This is the baseline the ≥2× speedup gate measures against;
/// its values are checked against the arena path to 1e-9 before any
/// timing runs.
mod seed {
    use fairjob_hist::Histogram;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    const CAP_EPS: f64 = 1e-12;
    const MASS_EPS: f64 = 1e-9;

    struct Edge {
        to: usize,
        cap: f64,
        cost: f64,
    }

    struct MinCostFlow {
        edges: Vec<Edge>,
        adj: Vec<Vec<usize>>,
    }

    #[derive(PartialEq)]
    struct HeapEntry {
        dist: f64,
        node: usize,
    }

    impl Eq for HeapEntry {}

    impl Ord for HeapEntry {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .dist
                .partial_cmp(&self.dist)
                .unwrap_or(Ordering::Equal)
        }
    }

    impl PartialOrd for HeapEntry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl MinCostFlow {
        fn new(n: usize) -> Self {
            MinCostFlow {
                edges: Vec::new(),
                adj: vec![Vec::new(); n],
            }
        }

        fn add_edge(&mut self, from: usize, to: usize, cap: f64, cost: f64) {
            let id = self.edges.len();
            self.edges.push(Edge { to, cap, cost });
            self.edges.push(Edge {
                to: from,
                cap: 0.0,
                cost: -cost,
            });
            self.adj[from].push(id);
            self.adj[to].push(id + 1);
        }

        fn solve(&mut self, source: usize, sink: usize, want: f64) -> f64 {
            let n = self.adj.len();
            let mut potential = vec![0.0f64; n];
            let mut flow = 0.0;
            let mut cost = 0.0;
            while want - flow > CAP_EPS {
                let mut dist = vec![f64::INFINITY; n];
                let mut prev_edge = vec![usize::MAX; n];
                dist[source] = 0.0;
                let mut heap = BinaryHeap::new();
                heap.push(HeapEntry {
                    dist: 0.0,
                    node: source,
                });
                while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
                    if d > dist[u] + CAP_EPS {
                        continue;
                    }
                    for &eid in &self.adj[u] {
                        let e = &self.edges[eid];
                        if e.cap <= CAP_EPS {
                            continue;
                        }
                        let reduced = (e.cost + potential[u] - potential[e.to]).max(0.0);
                        let nd = d + reduced;
                        if nd + CAP_EPS < dist[e.to] {
                            dist[e.to] = nd;
                            prev_edge[e.to] = eid;
                            heap.push(HeapEntry {
                                dist: nd,
                                node: e.to,
                            });
                        }
                    }
                }
                if !dist[sink].is_finite() {
                    break;
                }
                for v in 0..n {
                    if dist[v].is_finite() {
                        potential[v] += dist[v];
                    }
                }
                let mut push = want - flow;
                let mut v = sink;
                while v != source {
                    let eid = prev_edge[v];
                    push = push.min(self.edges[eid].cap);
                    v = self.edges[eid ^ 1].to;
                }
                if push <= CAP_EPS {
                    break;
                }
                let mut v = sink;
                while v != source {
                    let eid = prev_edge[v];
                    self.edges[eid].cap -= push;
                    self.edges[eid ^ 1].cap += push;
                    cost += push * self.edges[eid].cost;
                    v = self.edges[eid ^ 1].to;
                }
                flow += push;
            }
            cost
        }
    }

    /// The seed's `EmdExact::distance`: fresh frequency vectors, fresh
    /// ground positions, `Vec<Vec>` costs, fresh graph, cold solve.
    pub fn emd_distance(a: &Histogram, b: &Histogram) -> f64 {
        let fa = a.frequencies().expect("non-empty histogram");
        let fb = b.frequencies().expect("non-empty histogram");
        let centres = a.spec().centres();
        let srcs: Vec<usize> = (0..fa.len()).filter(|&i| fa[i] > MASS_EPS).collect();
        let dsts: Vec<usize> = (0..fb.len()).filter(|&j| fb[j] > MASS_EPS).collect();
        let (m, n) = (srcs.len(), dsts.len());
        let supply: f64 = srcs.iter().map(|&i| fa[i]).sum();
        let mut g = MinCostFlow::new(m + n + 2);
        let (source, sink) = (m + n, m + n + 1);
        for (si, &i) in srcs.iter().enumerate() {
            g.add_edge(source, si, fa[i], 0.0);
        }
        for (dj, &j) in dsts.iter().enumerate() {
            g.add_edge(m + dj, sink, fb[j], 0.0);
        }
        for (si, &i) in srcs.iter().enumerate() {
            for (dj, &j) in dsts.iter().enumerate() {
                g.add_edge(si, m + dj, f64::INFINITY, (centres[i] - centres[j]).abs());
            }
        }
        g.solve(source, sink, supply)
    }
}

/// The ≥100-partition workload of the pairwise-kernel bench: five of
/// the six attributes pre-split over the standard generated population.
fn partitions(ctx: &AuditContext<'_>) -> Vec<Partition> {
    let attrs = ctx.attributes().to_vec();
    let mut parts = vec![ctx.root()];
    for &a in &attrs[..attrs.len() - 1] {
        parts = parts
            .iter()
            .flat_map(|p| ctx.split(p, a).unwrap_or_else(|| vec![p.clone()]))
            .collect();
    }
    assert!(
        parts.len() >= 100,
        "bench workload must cover >= 100 partitions, got {}",
        parts.len()
    );
    parts
}

/// Histograms with every bin populated, so consecutive pairs share the
/// full support set and the flow solver's warm start can fire on all of
/// them.
fn dense_hists(n: usize) -> Vec<Histogram> {
    let spec = BinSpec::equal_width(0.0, 1.0, 10).expect("spec");
    (0..n)
        .map(|k| {
            let mut vals = Vec::new();
            for b in 0..10usize {
                let copies = 1 + (k * 7 + b * 3) % 5;
                for c in 0..copies {
                    vals.push((b as f64 + 0.3 + 0.1 * (c % 4) as f64) / 10.0);
                }
            }
            Histogram::from_values(spec.clone(), vals)
        })
        .collect()
}

/// Bit-identity of arena vs legacy per pair, flow/simplex agreement,
/// and warm-vs-cold bit-identity on the audit histograms.
fn assert_value_safety(hists: &[&Histogram]) {
    let flow = EmdExact {
        solver: Solver::Flow,
    };
    let simplex = EmdExact {
        solver: Solver::Simplex,
    };
    let mut scratch = SolveScratch::new();
    scratch.begin_chunk();
    let mut checked = 0usize;
    for (i, a) in hists.iter().enumerate() {
        for b in &hists[i + 1..] {
            let legacy = flow.distance(a, b).expect("legacy solve");
            let arena = flow.distance_with(a, b, &mut scratch).expect("arena solve");
            assert_eq!(
                arena.to_bits(),
                legacy.to_bits(),
                "arena path diverged from legacy: {arena} vs {legacy}"
            );
            // A possibly-warm solve just ran on `scratch`; a fresh
            // scratch is cold by construction.
            let cold = flow
                .distance_with(a, b, &mut SolveScratch::new())
                .expect("cold solve");
            assert_eq!(
                arena.to_bits(),
                cold.to_bits(),
                "warm-started solve diverged from cold: {arena} vs {cold}"
            );
            let sx = simplex
                .distance_with(a, b, &mut scratch)
                .expect("simplex solve");
            assert!(
                (sx - legacy).abs() <= 1e-9,
                "simplex diverged from flow: {sx} vs {legacy}"
            );
            checked += 1;
        }
    }
    println!("value safety: {checked} pairs bit-identical (arena vs legacy, warm vs cold), flow vs simplex within 1e-9");
}

/// Ground-cache and allocation discipline: one build per grid, zero
/// builds and zero footprint growth over twenty steady-state sweeps.
fn assert_cache_discipline(hists: &[&Histogram]) {
    let flow = EmdExact {
        solver: Solver::Flow,
    };
    let cache = GroundCache::global();
    let mut scratch = SolveScratch::new();
    // `begin_chunk` zeroes the per-chunk counters, so fold each sweep's
    // counters into a lifetime total.
    let sweep = |scratch: &mut SolveScratch| -> ScratchStats {
        scratch.begin_chunk();
        for (i, a) in hists.iter().enumerate() {
            for b in &hists[i + 1..] {
                black_box(flow.distance_with(a, b, scratch).expect("solve"));
            }
        }
        scratch.take_stats()
    };
    let mut stats = sweep(&mut scratch); // warm-up: builds the grid's matrix (at most) once
    let builds = cache.builds();
    let footprint = scratch.footprint();
    assert!(footprint > 0, "warm scratch must own solver buffers");
    for _ in 0..20 {
        stats.merge(sweep(&mut scratch));
    }
    assert_eq!(
        cache.builds(),
        builds,
        "steady-state sweeps rebuilt a ground matrix"
    );
    // Steady-state solves are served from the scratch-local slot — the
    // process-wide cache is only consulted when a scratch goes cold, so
    // the scratch's own hit counter is the one that must cover every
    // solve (asserted below).
    assert_eq!(
        scratch.footprint(),
        footprint,
        "steady-state sweeps grew the scratch — a per-solve allocation is back"
    );
    let pairs = hists.len() * (hists.len() - 1) / 2;
    assert!(
        stats.ground_cache_hits >= (21 * pairs - 1) as u64,
        "every solve (except a process-wide first build) must be served a cached ground matrix: {} of {}",
        stats.ground_cache_hits,
        21 * pairs
    );
    println!(
        "cache discipline: {} lifetime builds, 0 across 20 steady-state sweeps; footprint stable at {} elements over {} solves",
        cache.builds(),
        footprint,
        21 * pairs
    );
}

/// Batch-kernel counters on a dense-support workload: warm starts fire,
/// scratches are reused, and value + every counter are identical for
/// every thread count.
fn assert_batch_counters(dense: &[Histogram]) {
    let flow = EmdExact {
        solver: Solver::Flow,
    };
    let hists: Vec<&Histogram> = dense.iter().collect();
    let pairs = (hists.len() * (hists.len() - 1) / 2) as u64;
    let base = pairwise_emd_batch(&hists, &flow, 1, None).expect("serial batch");
    let BatchValue::Average(value) = base.value else {
        panic!("no abandon threshold was set");
    };
    assert!(value.is_finite());
    assert_eq!(base.stats.pairs, pairs);
    assert_eq!(
        base.stats.exact_solves, pairs,
        "no bounds — every pair solves"
    );
    assert_eq!(
        base.stats.ground_cache_hits, pairs,
        "primed batch must serve every solve from the ground cache"
    );
    assert_eq!(
        base.stats.scratch_reuses,
        pairs - base.stats.pool_tasks,
        "every solve after the first in its chunk must reuse the scratch"
    );
    assert_eq!(
        base.stats.warm_starts,
        pairs - base.stats.pool_tasks,
        "full-support pairs must warm-start every solve after the first in its chunk"
    );
    for threads in [2usize, 3, 8] {
        let par = pairwise_emd_batch(&hists, &flow, threads, None).expect("parallel batch");
        assert_eq!(par.value, base.value, "{threads}-thread value diverged");
        assert_eq!(par.stats, base.stats, "{threads}-thread counters diverged");
    }
    println!(
        "batch counters: {} pairs, {} ground cache hits, {} scratch reuses, {} warm starts — identical at 1/2/3/8 threads",
        base.stats.pairs, base.stats.ground_cache_hits, base.stats.scratch_reuses, base.stats.warm_starts
    );
}

fn min_of_3(mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    best
}

/// The speedup gate, on the exact-survivor profile (sparse deep
/// partitions): a pairwise sweep on the shared scratch must beat the
/// seed's allocate-per-solve sweep by at least 2×.
fn assert_speedup(survivors: &[&Histogram]) {
    let flow = EmdExact {
        solver: Solver::Flow,
    };
    let mut scratch = SolveScratch::new();
    // Value-check the vendored seed path against the arena path before
    // trusting its timings, and warm both (ground cache, scratch
    // buffers, branch predictors).
    scratch.begin_chunk();
    for (i, a) in survivors.iter().enumerate() {
        for b in &survivors[i + 1..] {
            let old = seed::emd_distance(a, b);
            let new = flow.distance_with(a, b, &mut scratch).expect("arena solve");
            assert!(
                (old - new).abs() <= 1e-9,
                "seed baseline diverged from the arena path: {old} vs {new}"
            );
        }
    }
    let seed_time = min_of_3(|| {
        for (i, a) in survivors.iter().enumerate() {
            for b in &survivors[i + 1..] {
                black_box(seed::emd_distance(a, b));
            }
        }
    });
    let arena = min_of_3(|| {
        scratch.begin_chunk();
        for (i, a) in survivors.iter().enumerate() {
            for b in &survivors[i + 1..] {
                black_box(flow.distance_with(a, b, &mut scratch).expect("arena solve"));
            }
        }
    });
    let pairs = survivors.len() * (survivors.len() - 1) / 2;
    let mean_support: f64 = survivors
        .iter()
        .map(|h| h.counts().iter().filter(|&&c| c > 0.0).count())
        .sum::<usize>() as f64
        / survivors.len() as f64;
    let ratio = seed_time.as_secs_f64() / arena.as_secs_f64().max(1e-12);
    assert!(
        ratio >= 2.0,
        "arena sweep must be >= 2x the seed per-solve path, got {ratio:.2}x ({seed_time:?} vs {arena:?})"
    );
    println!(
        "speedup: {} survivor hists (mean support {:.2}), {} pairs; arena sweep {:?} vs seed {:?} — {:.2}x",
        survivors.len(),
        mean_support,
        pairs,
        arena,
        seed_time,
        ratio
    );
}

fn bench_exact_solver(c: &mut Criterion) {
    let workers = prepare_population(4000, 0xEDB7_2019);
    let scores = LinearScore::alpha("f1", 0.5)
        .score_all(&workers)
        .expect("scores");
    let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).expect("audit context");
    let parts = partitions(&ctx);
    let all: Vec<&Histogram> = parts
        .iter()
        .map(|p| &p.histogram)
        .filter(|h| !h.is_empty())
        .collect();
    // The O(pairs) correctness assertions run three solvers per pair;
    // a 40-histogram slice keeps them fast without losing coverage.
    let sample: Vec<&Histogram> = all.iter().copied().take(40).collect();
    // The exact-survivor profile: sparse deep partitions, the shape the
    // bound screen actually hands to the exact solver.
    let survivors: Vec<&Histogram> = all
        .iter()
        .copied()
        .filter(|h| {
            let support = h.counts().iter().filter(|&&c| c > 0.0).count();
            (2..=5).contains(&support)
        })
        .take(60)
        .collect();
    assert!(
        survivors.len() >= 30,
        "audit workload must yield sparse survivor histograms, got {}",
        survivors.len()
    );
    let dense = dense_hists(16);

    assert_value_safety(&sample);
    assert_cache_discipline(&sample);
    assert_batch_counters(&dense);
    assert_speedup(&survivors);

    let flow = EmdExact {
        solver: Solver::Flow,
    };
    let mut group = c.benchmark_group("exact_solver");
    group.sample_size(10);
    group.bench_function("seed_per_solve", |b| {
        b.iter(|| {
            for (i, a) in all.iter().enumerate() {
                for h in &all[i + 1..] {
                    black_box(seed::emd_distance(a, h));
                }
            }
        })
    });
    group.bench_function("legacy_per_solve", |b| {
        b.iter(|| {
            for (i, a) in all.iter().enumerate() {
                for h in &all[i + 1..] {
                    black_box(flow.distance(a, h).expect("solve"));
                }
            }
        })
    });
    group.bench_function("arena_scratch", |b| {
        let mut scratch = SolveScratch::new();
        b.iter(|| {
            scratch.begin_chunk();
            for (i, a) in all.iter().enumerate() {
                for h in &all[i + 1..] {
                    black_box(flow.distance_with(a, h, &mut scratch).expect("solve"));
                }
            }
        })
    });
    group.bench_function("arena_batch_parallel", |b| {
        b.iter(|| black_box(pairwise_emd_batch(&all, &flow, 4, None).expect("batch")))
    });
    group.finish();
}

criterion_group!(benches, bench_exact_solver);
criterion_main!(benches);
