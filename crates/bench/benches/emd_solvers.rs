//! Criterion micro-benches for the EMD solver stack: closed form vs
//! min-cost flow vs transportation simplex across histogram sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairjob_emd::{emd_1d_grid, transport::solve_emd, GridL1, Solver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_histogram(bins: usize, rng: &mut StdRng) -> Vec<f64> {
    // Unit-mass histograms: the raw transportation solvers require
    // balanced supplies/demands (the public entry point normalises).
    let raw: Vec<f64> = (0..bins).map(|_| rng.gen::<f64>()).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|x| x / total).collect()
}

fn bench_emd_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("emd_solvers");
    for bins in [10usize, 50, 100] {
        let mut rng = StdRng::seed_from_u64(7);
        let a = random_histogram(bins, &mut rng);
        let b = random_histogram(bins, &mut rng);
        let ground = GridL1::new(0.0, 1.0, bins).expect("grid");
        group.bench_with_input(BenchmarkId::new("closed_form", bins), &bins, |bench, _| {
            bench.iter(|| emd_1d_grid(black_box(&a), black_box(&b), 0.0, 1.0).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("flow", bins), &bins, |bench, _| {
            bench.iter(|| {
                solve_emd(black_box(&a), black_box(&b), &ground, Solver::Flow)
                    .unwrap()
                    .cost
            })
        });
        group.bench_with_input(BenchmarkId::new("simplex", bins), &bins, |bench, _| {
            bench.iter(|| {
                solve_emd(black_box(&a), black_box(&b), &ground, Solver::Simplex)
                    .unwrap()
                    .cost
            })
        });
    }
    group.finish();
}

fn bench_pairwise_kernel(c: &mut Criterion) {
    // The audit hot loop: average pairwise EMD over many small histograms.
    use fairjob_core::unfairness::{average_pairwise, average_pairwise_parallel};
    use fairjob_hist::{distance::Emd1d, BinSpec, Histogram};
    let spec = BinSpec::equal_width(0.0, 1.0, 10).expect("spec");
    let mut rng = StdRng::seed_from_u64(11);
    let hists: Vec<Histogram> = (0..200)
        .map(|_| Histogram::from_values(spec.clone(), (0..5).map(|_| rng.gen::<f64>())))
        .collect();
    let refs: Vec<&Histogram> = hists.iter().collect();
    let mut group = c.benchmark_group("pairwise_avg_200_hists");
    group.bench_function("serial", |bench| {
        bench.iter(|| average_pairwise(black_box(&refs), &Emd1d).unwrap())
    });
    group.bench_function("4_threads", |bench| {
        bench.iter(|| average_pairwise_parallel(black_box(&refs), &Emd1d, 4).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_emd_solvers, bench_pairwise_kernel);
criterion_main!(benches);
