//! Stream-ingestion bench: replay a marketplace event stream (arrivals,
//! departures, score updates, profile edits) over a few-thousand-worker
//! population, re-auditing after every epoch two ways — incrementally
//! through [`StreamAuditor`] with warm engine caches and selective
//! invalidation, and cold by rebuilding the live population from
//! scratch.
//!
//! Beyond timing, this bench *asserts* the incremental path's contract
//! with real counters (row scans and EMD computations, not wall-clock):
//! after each small epoch (≤1% of rows mutated) the warm audit must
//! scan at least 5× fewer rows AND compute at least 5× fewer distances
//! than the cold rebuild, while producing a bit-identical partitioning
//! and unfairness value.
//!
//! The workload (size, seed) is deterministic and chosen so no epoch
//! flips a greedy split decision: when an epoch *does* change which
//! split the search commits, the affected subtree legitimately
//! recomputes (cold does the same work) and the row ratio for that one
//! epoch can drop below 5× even though parity always holds. Typical
//! stable-structure epochs here reuse >99.9% of the cached work.

use criterion::{criterion_group, criterion_main, Criterion};
use fairjob_core::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
use fairjob_core::AuditConfig;
use fairjob_marketplace::stream::{generate_stream, StreamConfig, StreamScenario};
use fairjob_stream::{same_partitioning, StreamAuditor, StreamView};
use std::hint::black_box;

/// Workers in the contract workload; epochs mutate at most
/// `EVENTS_PER_EPOCH` rows each, well under 1%.
const CONTRACT_WORKERS: usize = 2500;
const CONTRACT_EPOCHS: usize = 6;
const EVENTS_PER_EPOCH: usize = 12;
/// Seed picked so every epoch of the contract workload keeps the greedy
/// split structure stable (see module docs).
const CONTRACT_SEED: u64 = 1;

fn scenario(workers: usize, epochs: usize, events: usize, seed: u64) -> StreamScenario {
    generate_stream(&StreamConfig {
        initial: workers,
        epochs,
        events_per_epoch: events,
        seed,
        alpha: 0.5,
    })
}

fn auditor(scenario: &StreamScenario) -> StreamAuditor {
    let view = StreamView::new(
        scenario.initial.clone(),
        scenario.scores.clone(),
        AuditConfig::default().bins,
    )
    .expect("stream view");
    StreamAuditor::new(view, AuditConfig::default()).expect("stream auditor")
}

/// The counter/parity contract, asserted once with a real workload
/// before any timing runs.
fn assert_stream_contract() {
    let scenario = scenario(
        CONTRACT_WORKERS,
        CONTRACT_EPOCHS,
        EVENTS_PER_EPOCH,
        CONTRACT_SEED,
    );
    let algorithm = Balanced::new(AttributeChoice::Worst);
    let mut auditor = auditor(&scenario);
    auditor.audit(&algorithm).expect("initial audit");

    let (mut warm_rows, mut warm_dists) = (0u64, 0u64);
    let (mut cold_rows, mut cold_dists) = (0u64, 0u64);
    for events in scenario.events.epochs() {
        let warm = auditor.run_epoch(events, &algorithm).expect("warm epoch");
        let cold = auditor.cold_audit(&algorithm).expect("cold rebuild");
        let changed = warm.changes;
        assert!(
            changed * 100 <= auditor.view().live_count(),
            "epoch {} mutated {} rows — not a small epoch",
            warm.epoch,
            changed
        );
        assert!(
            same_partitioning(&warm.audit.partitioning, &cold.partitioning),
            "epoch {}: warm and cold partitionings diverge",
            warm.epoch
        );
        assert_eq!(
            warm.audit.unfairness.to_bits(),
            cold.unfairness.to_bits(),
            "epoch {}: unfairness diverged: warm {} vs cold {}",
            warm.epoch,
            warm.audit.unfairness,
            cold.unfairness
        );
        assert!(
            warm.audit.engine.rows_scanned.saturating_mul(5) <= cold.engine.rows_scanned,
            "epoch {}: incremental must scan >= 5x fewer rows: warm {} vs cold {}",
            warm.epoch,
            warm.audit.engine.rows_scanned,
            cold.engine.rows_scanned
        );
        assert!(
            warm.audit.engine.distances_computed.saturating_mul(5)
                <= cold.engine.distances_computed,
            "epoch {}: incremental must compute >= 5x fewer EMDs: warm {} vs cold {}",
            warm.epoch,
            warm.audit.engine.distances_computed,
            cold.engine.distances_computed
        );
        warm_rows += warm.audit.engine.rows_scanned;
        warm_dists += warm.audit.engine.distances_computed;
        cold_rows += cold.engine.rows_scanned;
        cold_dists += cold.engine.distances_computed;
    }
    println!(
        "stream contract: {CONTRACT_WORKERS} workers, {CONTRACT_EPOCHS} epochs x \
         {EVENTS_PER_EPOCH} events; rows: cold {cold_rows}, incremental {warm_rows} ({}x fewer); \
         EMDs: cold {cold_dists}, incremental {warm_dists} ({}x fewer)",
        cold_rows / warm_rows.max(1),
        cold_dists / warm_dists.max(1),
    );
}

/// Replay every epoch incrementally (one warm-up audit, then warm
/// per-epoch audits); returns the final unfairness.
fn incremental_replay(scenario: &StreamScenario, algorithm: &dyn Algorithm) -> f64 {
    let mut auditor = auditor(scenario);
    let mut report = auditor.audit(algorithm).expect("initial audit");
    for events in scenario.events.epochs() {
        report = auditor.run_epoch(events, algorithm).expect("warm epoch");
    }
    report.audit.unfairness
}

/// Replay every epoch with a from-scratch rebuild after each — the
/// maintenance strategy the incremental path replaces.
fn cold_replay(scenario: &StreamScenario, algorithm: &dyn Algorithm) -> f64 {
    let config = AuditConfig::default();
    let mut view = StreamView::new(
        scenario.initial.clone(),
        scenario.scores.clone(),
        config.bins,
    )
    .expect("stream view");
    let run_cold = |view: &StreamView| {
        let (table, scores) = view.compact().expect("compact");
        let ctx = fairjob_core::AuditContext::new(&table, &scores, config.clone()).expect("ctx");
        algorithm.run(&ctx).expect("cold audit").unfairness
    };
    let mut unfairness = run_cold(&view);
    for events in scenario.events.epochs() {
        view.apply_epoch(events).expect("apply epoch");
        unfairness = run_cold(&view);
    }
    unfairness
}

fn bench_stream_ingest(c: &mut Criterion) {
    assert_stream_contract();

    let timing = scenario(1200, 4, 8, 0xEDB7_2019);
    let algorithm = Balanced::new(AttributeChoice::Worst);
    let mut group = c.benchmark_group("stream_ingest");
    group.sample_size(10);
    group.bench_function("cold_rebuild_per_epoch", |b| {
        b.iter(|| black_box(cold_replay(&timing, &algorithm)))
    });
    group.bench_function("incremental_per_epoch", |b| {
        b.iter(|| black_box(incremental_replay(&timing, &algorithm)))
    });
    group.finish();
}

criterion_group!(benches, bench_stream_ingest);
criterion_main!(benches);
