//! Criterion benches for the audit algorithms — the runtime halves of
//! Tables 1–2 in benchmark form: each algorithm at 500 and 7300 workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairjob_bench::prepare_population;
use fairjob_core::algorithms::{
    all_attributes::AllAttributes, balanced::Balanced, unbalanced::Unbalanced, Algorithm,
    AttributeChoice,
};
use fairjob_core::{AuditConfig, AuditContext};
use fairjob_marketplace::scoring::{LinearScore, ScoringFunction};
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms");
    group.sample_size(10);
    for n in [500usize, 7300] {
        let workers = prepare_population(n, 0xEDB7_2019);
        let scores = LinearScore::alpha("f1", 0.5)
            .score_all(&workers)
            .expect("scores");
        let ctx =
            AuditContext::new(&workers, &scores, AuditConfig::default()).expect("audit context");
        let algos: Vec<(&str, Box<dyn Algorithm>)> = vec![
            (
                "unbalanced",
                Box::new(Unbalanced::new(AttributeChoice::Worst)),
            ),
            (
                "r-unbalanced",
                Box::new(Unbalanced::new(AttributeChoice::Random { seed: 5 })),
            ),
            ("balanced", Box::new(Balanced::new(AttributeChoice::Worst))),
            (
                "r-balanced",
                Box::new(Balanced::new(AttributeChoice::Random { seed: 6 })),
            ),
            ("all-attributes", Box::new(AllAttributes)),
        ];
        for (name, algo) in algos {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| algo.run(black_box(&ctx)).unwrap().unfairness)
            });
        }
    }
    group.finish();
}

fn bench_unfairness_eval(c: &mut Criterion) {
    // Cost of evaluating unfairness(P, f) on the full partitioning — the
    // inner kernel that dominates the table runtimes.
    let workers = prepare_population(7300, 0xEDB7_2019);
    let scores = LinearScore::alpha("f1", 0.5)
        .score_all(&workers)
        .expect("scores");
    let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).expect("ctx");
    let full = AllAttributes.run(&ctx).expect("full partitioning");
    let parts = full.partitioning.partitions().to_vec();
    let mut group = c.benchmark_group("unfairness_full_partitioning_7300");
    group.sample_size(10);
    group.bench_function(format!("{}_partitions", parts.len()), |b| {
        b.iter(|| ctx.unfairness(black_box(&parts)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_unfairness_eval);
criterion_main!(benches);
