//! Split-search bench: a greedy candidate search over a ≥100-partition
//! synthetic audit, where each round asks for the split of *every*
//! current partition and commits only one — exactly the access pattern
//! of the paper's algorithms, where losing candidates are re-requested
//! round after round.
//!
//! Two paths are compared. The naive path re-runs the legacy
//! posting-intersection split ([`AuditContext::split_legacy`]) for every
//! request, every round. The engine path answers through
//! [`EvalEngine::split_batch`]: the single-pass kernel on first touch,
//! the fingerprint-keyed split cache afterwards.
//!
//! Beyond timing, this bench *asserts* the fast path's contract with
//! real counters (row scans and split computations, not wall-clock):
//! the engine must scan at least 5× fewer rows and compute at least 3×
//! fewer splits than the naive path over the same trajectory, the final
//! unfairness must stay within 1e-9 of the naive value, and the engine
//! trajectory must be bit-identical for every worker-thread count.

use criterion::{criterion_group, criterion_main, Criterion};
use fairjob_bench::prepare_population;
use fairjob_core::{AuditConfig, AuditContext, EvalEngine, Partition};
use fairjob_marketplace::scoring::{LinearScore, ScoringFunction};
use std::hint::black_box;
use std::sync::Arc;

/// How many greedy commit rounds the search runs (bounded by the number
/// of splittable partitions in the workload; asserted below).
const ROUNDS: usize = 8;

struct Workload<'a> {
    ctx: AuditContext<'a>,
    /// The ≥100-partition starting partitioning (five of the six
    /// attributes pre-split).
    base: Vec<Partition>,
    /// The one attribute left for the candidate search.
    attr: usize,
    /// Distinct codes of `attr` across the whole table — the legacy
    /// path walks one posting list per code.
    cardinality: usize,
}

fn workload<'a>(workers: &'a fairjob_store::table::Table, scores: &'a [f64]) -> Workload<'a> {
    let ctx = AuditContext::new(workers, scores, AuditConfig::default()).expect("audit context");
    let attrs = ctx.attributes().to_vec();
    let (pre_split, attr) = (&attrs[..attrs.len() - 1], attrs[attrs.len() - 1]);
    let mut base = vec![ctx.root()];
    for &a in pre_split {
        base = base
            .iter()
            .flat_map(|p| ctx.split(p, a).unwrap_or_else(|| vec![p.clone()]))
            .collect();
    }
    assert!(
        base.len() >= 100,
        "bench workload must audit >= 100 partitions, got {}",
        base.len()
    );
    let cardinality = ctx
        .split_legacy(&ctx.root(), attr)
        .map(|children| children.len())
        .expect("search attribute splits the root");
    let splittable = base.iter().filter(|p| ctx.split(p, attr).is_some()).count();
    assert!(
        splittable >= ROUNDS,
        "need >= {ROUNDS} splittable partitions, got {splittable}"
    );
    Workload {
        ctx,
        base,
        attr,
        cardinality,
    }
}

/// The greedy search on the legacy split path, with the seed's touch
/// count accounted per computed split: the linear posting merge walks
/// every posting entry of the attribute (`table_len` in total) plus the
/// partition's rows once per distinct code.
fn naive_search(w: &Workload<'_>) -> (Vec<Partition>, u64, u64) {
    let table_len = w.ctx.rows() as u64;
    let mut current = w.base.clone();
    let (mut splits, mut rows) = (0u64, 0u64);
    for _ in 0..ROUNDS {
        let mut commit: Option<(usize, Vec<Partition>)> = None;
        for (i, part) in current.iter().enumerate() {
            if part.predicate.constrains(w.attr) {
                continue; // cheap predicate check, not a split
            }
            splits += 1;
            rows += table_len + w.cardinality as u64 * part.len() as u64;
            if let Some(children) = w.ctx.split_legacy(part, w.attr) {
                if commit.is_none() {
                    commit = Some((i, children));
                }
            }
        }
        let Some((i, children)) = commit else { break };
        current.splice(i..=i, children);
    }
    (current, splits, rows)
}

/// The same greedy search answered through the engine's split cache and
/// deterministic parallel candidate batches.
fn engine_search(engine: &EvalEngine<'_, '_>, w: &Workload<'_>) -> Vec<Arc<Partition>> {
    let mut current: Vec<Arc<Partition>> = w.base.iter().cloned().map(Arc::new).collect();
    for _ in 0..ROUNDS {
        let requests: Vec<(&Partition, usize)> =
            current.iter().map(|p| (p.as_ref(), w.attr)).collect();
        let results = engine.split_batch(&requests);
        let Some((i, children)) = results
            .into_iter()
            .enumerate()
            .find_map(|(i, r)| r.map(|children| (i, children)))
        else {
            break;
        };
        current.splice(i..=i, children.iter().cloned());
    }
    current
}

/// The counter/parity contract, asserted once with real workloads before
/// any timing runs.
fn assert_split_contract(w: &Workload<'_>) {
    let (naive_parts, naive_splits, naive_rows) = naive_search(w);
    let naive_value = w.ctx.unfairness(&naive_parts).expect("naive eval");

    let engine = EvalEngine::new(&w.ctx).with_threads(1);
    let engine_parts = engine_search(&engine, w);
    let stats = engine.stats();
    let engine_value = engine.unfairness(&engine_parts).expect("engine eval");

    assert_eq!(
        naive_parts.len(),
        engine_parts.len(),
        "diverged trajectories"
    );
    assert!(
        (naive_value - engine_value).abs() < 1e-9,
        "final unfairness diverged: naive {naive_value} vs engine {engine_value}"
    );
    assert!(
        stats.rows_scanned.saturating_mul(5) <= naive_rows,
        "engine must scan >= 5x fewer rows: {} vs naive {naive_rows}",
        stats.rows_scanned
    );
    assert!(
        stats.splits_computed.saturating_mul(3) <= naive_splits,
        "engine must compute >= 3x fewer splits: {} vs naive {naive_splits}",
        stats.splits_computed
    );

    // Bit-identical results and counters for every worker-thread count.
    for threads in [2usize, 3, 8] {
        let parallel = EvalEngine::new(&w.ctx).with_threads(threads);
        let parts = engine_search(&parallel, w);
        assert_eq!(
            parallel.stats(),
            stats,
            "{threads}-thread counters diverged"
        );
        let value = parallel.unfairness(&parts).expect("parallel eval");
        assert_eq!(
            engine_value.to_bits(),
            value.to_bits(),
            "{threads} threads diverged: {engine_value} vs {value}"
        );
        assert_eq!(parts.len(), engine_parts.len());
    }

    println!(
        "split contract: {} partitions, {} rounds; splits: naive {naive_splits}, engine {} \
         ({} cache hits); rows: naive {naive_rows}, engine {} ({}x fewer)",
        w.base.len(),
        ROUNDS,
        stats.splits_computed,
        stats.split_cache_hits,
        stats.rows_scanned,
        naive_rows / stats.rows_scanned.max(1),
    );
}

fn bench_split_search(c: &mut Criterion) {
    let workers = prepare_population(4000, 0xEDB7_2019);
    let scores = LinearScore::alpha("f1", 0.5)
        .score_all(&workers)
        .expect("scores");
    let w = workload(&workers, &scores);
    assert_split_contract(&w);

    let mut group = c.benchmark_group("split_search");
    group.sample_size(10);
    group.bench_function("naive", |b| b.iter(|| black_box(naive_search(&w))));
    group.bench_function("engine", |b| {
        b.iter(|| {
            let engine = EvalEngine::new(&w.ctx).with_threads(1);
            black_box(engine_search(&engine, &w))
        })
    });
    group.bench_function("engine_parallel", |b| {
        b.iter(|| {
            let engine = EvalEngine::new(&w.ctx).with_threads(4);
            black_box(engine_search(&engine, &w))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_split_search);
criterion_main!(benches);
