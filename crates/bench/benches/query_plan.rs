//! FairQL planner bench: pushdown scan cost versus the naive plan.
//!
//! Beyond timing, this bench *asserts* the planner's contract:
//!
//! - with predicate pushdown the scan examines **at most half** the
//!   rows the unpushed naive plan examines (on this workload the real
//!   ratio is far better — postings bound the work);
//! - pushed and naive plans return **identical** results — the
//!   optimisation never changes an answer;
//! - a FairQL `AUDIT` reports exactly the engine counters of the
//!   equivalent direct [`fairjob_core`] audit run (`EXPLAIN ANALYZE`
//!   attribution is truthful).
//!
//! It also extends the machine-readable perf trajectory: a
//! `BENCH_fairql.json` next to the workspace root with the examined-row
//! counts, the pushdown ratio, and plan/execute timings, uploaded as a
//! CI artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use fairjob_core::algorithms;
use fairjob_core::{AuditConfig, AuditContext};
use fairjob_fairql::physical::{PhysicalPlan, ScanKind};
use fairjob_fairql::{
    analyze_statement, parse, Defaults, PlannerOptions, QueryOutput, Session, Source,
};
use fairjob_marketplace::scoring::{LinearScore, ScoringFunction};
use fairjob_marketplace::{bucketise_numeric_protected, generate_uniform};
use fairjob_store::Table;
use std::hint::black_box;
use std::time::Instant;

const WORKERS: usize = 4000;
const SEED: u64 = 0xFA12;
/// Selects roughly a third of the population; the index scan examines
/// one posting list instead of the whole table.
const FILTERED: &str = "SELECT COUNT(*) FROM workers WHERE country = 'India'";
/// Two conjuncts: the planner must order the postings smallest-first
/// before intersecting.
const CONJUNCTIVE: &str =
    "SELECT COUNT(*) FROM workers WHERE country = 'India' AND gender = 'Female'";
const AUDIT: &str = "AUDIT workers";

fn population() -> (Table, Vec<f64>) {
    let mut table = generate_uniform(WORKERS, SEED);
    bucketise_numeric_protected(&mut table).expect("bucketise");
    let scores = LinearScore::alpha("f1", 0.5)
        .score_all(&table)
        .expect("score");
    (table, scores)
}

fn session<'a>(table: &'a Table, scores: &'a [f64], push: bool) -> Session<'a> {
    Session::new(Source::Batch { table, scores }, Defaults::default())
        .expect("session")
        .with_planner_options(PlannerOptions {
            push_predicates: push,
        })
}

/// Pull `examined=N` out of an `EXPLAIN ANALYZE` scan-actual line.
fn actual_examined(explain: &str) -> usize {
    explain
        .lines()
        .find_map(|line| {
            let line = line.trim_start();
            line.strip_prefix("actual: matched=")?
                .split_once("examined=")
                .map(|(_, n)| n.trim().parse().expect("examined count"))
        })
        .expect("no scan actuals in plan")
}

fn explain_analyze(session: &mut Session<'_>, query: &str) -> String {
    let outputs = session
        .execute(&format!("EXPLAIN ANALYZE {query}"))
        .expect("explain analyze");
    match outputs.into_iter().next() {
        Some(QueryOutput::Explain { text }) => text,
        other => panic!("unexpected output {other:?}"),
    }
}

struct PushdownReport {
    pushed_examined: usize,
    naive_examined: usize,
}

/// The pushdown contract: index-backed scan, ≥2× fewer rows examined,
/// identical results.
fn assert_pushdown_contract(table: &Table, scores: &[f64]) -> PushdownReport {
    let mut pushed = session(table, scores, true);
    let mut naive = session(table, scores, false);

    let analyzed =
        analyze_statement(&parse(FILTERED).expect("parse")[0], table.schema()).expect("analyze");
    let plan = pushed.plan_of(&analyzed);
    let PhysicalPlan::Select { scan, .. } = &plan else {
        panic!("not a select plan")
    };
    assert!(
        matches!(scan.kind, ScanKind::Index(_)),
        "pushdown did not choose an index scan"
    );

    let pushed_examined = actual_examined(&explain_analyze(&mut pushed, FILTERED));
    let naive_examined = actual_examined(&explain_analyze(&mut naive, FILTERED));
    assert!(
        pushed_examined * 2 <= naive_examined,
        "pushdown examined {pushed_examined} rows, naive examined {naive_examined} — \
         expected at least a 2x reduction"
    );

    let a = pushed.execute(FILTERED).expect("pushed run");
    let b = naive.execute(FILTERED).expect("naive run");
    let (Some(QueryOutput::Rows(ra)), Some(QueryOutput::Rows(rb))) = (a.first(), b.first()) else {
        panic!("not row outputs")
    };
    assert_eq!(ra, rb, "pushdown changed the query result");

    // Conjunctions: postings come smallest-first so the intersection
    // starts from the cheapest list, and the answer still matches.
    let analyzed =
        analyze_statement(&parse(CONJUNCTIVE).expect("parse")[0], table.schema()).expect("analyze");
    let plan = pushed.plan_of(&analyzed);
    let PhysicalPlan::Select { scan, .. } = &plan else {
        panic!("not a select plan")
    };
    let ScanKind::Index(postings) = &scan.kind else {
        panic!("conjunction did not push to an index scan")
    };
    assert!(
        postings.windows(2).all(|w| w[0].2 <= w[1].2),
        "postings are not ordered smallest-first: {postings:?}"
    );
    let a = pushed.execute(CONJUNCTIVE).expect("pushed run");
    let b = naive.execute(CONJUNCTIVE).expect("naive run");
    let (Some(QueryOutput::Rows(ra)), Some(QueryOutput::Rows(rb))) = (a.first(), b.first()) else {
        panic!("not row outputs")
    };
    assert_eq!(ra, rb, "pushdown changed the conjunctive query result");

    PushdownReport {
        pushed_examined,
        naive_examined,
    }
}

/// The attribution contract: a FairQL audit's counters are exactly the
/// direct engine run's counters, and the unfairness is bit-identical.
fn assert_attribution_contract(table: &Table, scores: &[f64]) {
    let ctx = AuditContext::new(table, scores, AuditConfig::default()).expect("ctx");
    let direct = algorithms::by_name("balanced", 0xBEEF)
        .expect("algorithm")
        .run(&ctx)
        .expect("direct audit");

    let mut session = session(table, scores, true);
    let outputs = session.execute(AUDIT).expect("query audit");
    let Some(QueryOutput::Audit { summary, .. }) = outputs.first() else {
        panic!("not an audit output")
    };
    assert_eq!(
        summary.unfairness_bits(),
        direct.unfairness.to_bits(),
        "FairQL audit is not bit-identical to the direct run"
    );
    for ((name, ours), (_, theirs)) in summary
        .engine
        .as_pairs()
        .iter()
        .zip(direct.engine.as_pairs().iter())
    {
        assert_eq!(ours, theirs, "engine counter {name} diverged");
    }
}

/// Write the machine-readable trajectory next to the workspace root.
fn write_bench_json(report: &PushdownReport, plan_us: u128, pushed_us: u128, naive_us: u128) {
    let ratio = report.naive_examined as f64 / report.pushed_examined.max(1) as f64;
    let json = format!(
        "{{\"bench\":\"query_plan\",\"workers\":{WORKERS},\
\"query\":\"{FILTERED}\",\"pushed_examined\":{},\"naive_examined\":{},\
\"pushdown_ratio\":{:.1},\"plan_us\":{plan_us},\"pushed_exec_us\":{pushed_us},\
\"naive_exec_us\":{naive_us}}}\n",
        report.pushed_examined, report.naive_examined, ratio,
    );
    // `cargo bench` runs with the package directory as cwd; BENCH_*.json
    // lands at the workspace root either way.
    let path = if std::path::Path::new("../../Cargo.toml").exists() {
        "../../BENCH_fairql.json"
    } else {
        "BENCH_fairql.json"
    };
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("query_plan: could not write {path}: {e}");
    }
    println!("query_plan trajectory: {json}");
}

fn time_us(mut f: impl FnMut()) -> u128 {
    let started = Instant::now();
    f();
    started.elapsed().as_micros()
}

fn bench_query_plan(c: &mut Criterion) {
    let (table, scores) = population();
    let report = assert_pushdown_contract(&table, &scores);
    assert_attribution_contract(&table, &scores);

    let statements = parse(FILTERED).expect("parse");
    let plan_us = time_us(|| {
        let analyzed = analyze_statement(&statements[0], table.schema()).expect("analyze");
        black_box(session(&table, &scores, true).plan_of(&analyzed));
    });
    let mut pushed = session(&table, &scores, true);
    let mut naive = session(&table, &scores, false);
    let pushed_us = time_us(|| {
        black_box(pushed.execute(FILTERED).expect("pushed"));
    });
    let naive_us = time_us(|| {
        black_box(naive.execute(FILTERED).expect("naive"));
    });
    write_bench_json(&report, plan_us, pushed_us, naive_us);

    let mut group = c.benchmark_group("query_plan");
    group.sample_size(10);
    group.bench_function("parse_analyze_plan", |b| {
        b.iter(|| {
            let statements = parse(black_box(FILTERED)).expect("parse");
            let analyzed = analyze_statement(&statements[0], table.schema()).expect("analyze");
            black_box(session(&table, &scores, true).plan_of(&analyzed))
        })
    });
    group.bench_function("select_pushed", |b| {
        b.iter(|| black_box(pushed.execute(FILTERED).expect("pushed")))
    });
    group.bench_function("select_naive", |b| {
        b.iter(|| black_box(naive.execute(FILTERED).expect("naive")))
    });
    group.finish();
}

criterion_group!(benches, bench_query_plan);
criterion_main!(benches);
