//! Table 3 — average EMD for the biased-by-design functions f6–f9 on
//! 7300 workers, plus the qualitative check that `balanced` recovers the
//! attributes each function was designed to discriminate on.
//!
//! ```text
//! cargo run -p fairjob-bench --release --bin table3
//! ```
//!
//! Expected shape: unfairness values much higher than the random
//! functions of Tables 1–2; `balanced` retrieves the highest values and
//! partitions exactly on the designed attributes (f6 → gender; f7 →
//! gender + country); `unbalanced` may over-split due to its local
//! stopping rule (the paper observed the same).

use fairjob_bench::{prepare_population, run_sweep};
use fairjob_core::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
use fairjob_core::{AuditConfig, AuditContext};
use fairjob_marketplace::scoring::{RuleBasedScore, ScoringFunction};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7300);
    let workers = prepare_population(n, 0xEDB7_2019);
    let functions = RuleBasedScore::paper_biased_functions(0xF00D);
    let refs: Vec<&dyn ScoringFunction> = functions
        .iter()
        .map(|f| f as &dyn ScoringFunction)
        .collect();
    let sweep = run_sweep(&workers, &refs, 10, 0xBEEF);

    println!("=== Table 3: {n} workers, biased functions f6..f9 ===\n");
    println!("{}", sweep.render());

    println!("paper (7300 workers), average EMD for reference:");
    println!("  unbalanced     0.040 0.164 0.460 0.317");
    println!("  r-unbalanced   0.399 0.362 0.322 0.350");
    println!("  balanced       0.800 0.427 0.460 0.359");
    println!("  r-balanced     0.496 0.368 0.330 0.301");
    println!("  all-attributes 0.420 0.368 0.337 0.359");

    // Qualitative check: which attributes does balanced split on?
    println!("\n--- balanced: recovered partitioning attributes ---");
    let expectations: [(&str, &[&str]); 4] = [
        ("f6", &["gender"]),
        ("f7", &["gender", "country"]),
        ("f8", &["gender", "country"]),
        ("f9", &["ethnicity", "language", "yob_band"]),
    ];
    for (f, expected) in expectations {
        let function = functions
            .iter()
            .find(|x| x.name() == f)
            .expect("function exists");
        let scores = function.score_all(&workers).expect("scores");
        let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).expect("ctx");
        let result = Balanced::new(AttributeChoice::Worst)
            .run(&ctx)
            .expect("balanced");
        let used: Vec<String> = result
            .partitioning
            .attributes_used()
            .iter()
            .map(|&a| workers.schema().attribute(a).name.clone())
            .collect();
        let ok = expected.iter().all(|e| used.iter().any(|u| u == e));
        println!(
            "  {f}: unfairness {:.3}, split on {:?} (designed: {:?}) {}",
            result.unfairness,
            used,
            expected,
            if ok { "— recovered" } else { "— DEVIATION" }
        );
    }
}
