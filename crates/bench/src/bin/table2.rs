//! Table 2 — average EMD and runtime, 7300 workers (the Stewart et al.
//! estimate of the active Amazon Mechanical Turk population), random
//! functions f1–f5, all five algorithms.
//!
//! ```text
//! cargo run -p fairjob-bench --release --bin table2
//! ```
//!
//! Expected shape: same ordering as Table 1 but uniformly *lower*
//! unfairness than at 500 workers (larger partitions → less sampling
//! noise in each histogram), and uniformly higher runtimes.

use fairjob_bench::{prepare_population, run_sweep};
use fairjob_marketplace::scoring::{LinearScore, ScoringFunction};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7300);
    let workers = prepare_population(n, 0xEDB7_2019);
    let functions = LinearScore::paper_random_functions();
    let refs: Vec<&dyn ScoringFunction> = functions
        .iter()
        .map(|f| f as &dyn ScoringFunction)
        .collect();
    let sweep = run_sweep(&workers, &refs, 10, 0xBEEF);

    println!("=== Table 2: {n} workers, random functions f1..f5 ===\n");
    println!("{}", sweep.render());

    println!("paper (7300 workers), average EMD for reference:");
    println!("  unbalanced     0.161 0.162 0.151 0.208 0.209");
    println!("  r-unbalanced   0.162 0.163 0.151 0.208 0.209");
    println!("  balanced       0.163 0.163 0.151 0.210 0.211");
    println!("  r-balanced     0.163 0.163 0.122 0.210 0.211");
    println!("  all-attributes 0.163 0.163 0.151 0.210 0.211");

    // Shape check 1: f4/f5 above f1/f2/f3 per algorithm.
    let mut shape_ok = true;
    for (row, algo) in sweep.algorithms.iter().enumerate() {
        let f1v = sweep.cells[row][0].unfairness;
        let f4v = sweep.cells[row][3].unfairness;
        let f5v = sweep.cells[row][4].unfairness;
        if f4v <= f1v || f5v <= f1v {
            shape_ok = false;
            println!("!! shape deviation: {algo}: f4={f4v:.3} f5={f5v:.3} not above f1={f1v:.3}");
        }
    }
    println!(
        "\nshape check (f4/f5 most unfair): {}",
        if shape_ok { "PASS" } else { "DEVIATION" }
    );
    println!(
        "compare against table1 output to confirm 7300-worker values sit below 500-worker values"
    );
}
