//! Figure 1 — the toy example's optimum partitioning.
//!
//! Reconstructs the 10-worker toy dataset, runs the exhaustive search
//! over both partitioning spaces plus the two heuristics, and prints the
//! partitionings. The expected optimum is the figure's: Male-English,
//! Male-Indian, Male-Other, Female.
//!
//! ```text
//! cargo run -p fairjob-bench --release --bin figure1
//! ```

use fairjob_core::algorithms::exhaustive::{exhaustive_cells, ExhaustiveTree};
use fairjob_core::algorithms::{balanced::Balanced, unbalanced::Unbalanced};
use fairjob_core::algorithms::{Algorithm, AttributeChoice};
use fairjob_core::{AuditConfig, AuditContext};
use fairjob_marketplace::toy::toy_workers;

fn main() {
    let (workers, scores) = toy_workers();
    let ctx = AuditContext::new(&workers, &scores, AuditConfig::default())
        .expect("toy data is a valid audit input");

    println!("=== Figure 1: toy example (10 workers, Gender x Language) ===\n");
    println!("Workers (row: gender, language, score):");
    for row in 0..workers.len() {
        let values = workers.row(row).expect("row in range");
        println!("  {row}: {values:?}");
    }

    println!("\n--- exhaustive search over attribute-split trees ---");
    let tree = ExhaustiveTree::new(100_000)
        .run(&ctx)
        .expect("toy search is tiny");
    println!("{}", tree.render(&ctx, true));

    println!("--- exhaustive search over cell set-partitions (Bell space) ---");
    let cells = exhaustive_cells(&ctx, 100_000).expect("toy search is tiny");
    println!(
        "best unfairness {:.4} over {} evaluated set partitions, {} blocks",
        cells.unfairness,
        cells.evaluated,
        cells.blocks.len()
    );

    println!("\n--- heuristics on the same data ---");
    for result in [
        Balanced::new(AttributeChoice::Worst)
            .run(&ctx)
            .expect("balanced completes"),
        Unbalanced::new(AttributeChoice::Worst)
            .run(&ctx)
            .expect("unbalanced completes"),
    ] {
        println!("{}", result.render(&ctx, false));
    }

    println!("paper expectation: optimum = {{Male-English, Male-Indian, Male-Other, Female}}");
    println!(
        "reproduced: tree optimum has {} partitions using attributes {:?}",
        tree.partitioning.len(),
        tree.partitioning
            .attributes_used()
            .iter()
            .map(|&a| workers.schema().attribute(a).name.clone())
            .collect::<Vec<_>>()
    );
}
