//! Run-to-run variance of the biased-function audits.
//!
//! The paper notes that "since the function scores were generated at
//! random within the specified range, various runs of the experiments
//! resulted in different behavior, where in some cases unbalanced
//! performed as well as balanced". This binary quantifies that: it
//! repeats the f6/f7 audits over several score seeds and reports
//! mean ± population-std of the unfairness per algorithm, including the
//! cross-pair-stopping `unbalanced` variant that reproduces the paper's
//! anomalous row.
//!
//! ```text
//! cargo run -p fairjob-bench --release --bin variance
//! ```

use fairjob_bench::{prepare_population, render_table};
use fairjob_core::algorithms::{
    all_attributes::AllAttributes, balanced::Balanced, unbalanced::Unbalanced, Algorithm,
    AttributeChoice,
};
use fairjob_core::{AuditConfig, AuditContext};
use fairjob_marketplace::scoring::{RuleBasedScore, ScoringFunction};

fn mean_std(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn main() {
    let runs: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    let workers = prepare_population(2000, 0xEDB7_2019);
    println!("=== run variance over {runs} score seeds (2000 workers, f6 and f7) ===\n");

    for make in [
        RuleBasedScore::f6 as fn(u64) -> RuleBasedScore,
        RuleBasedScore::f7,
    ] {
        let name = make(0).name().to_string();
        let algorithms: Vec<(&str, Box<dyn Algorithm>)> = vec![
            (
                "unbalanced (union stop)",
                Box::new(Unbalanced::new(AttributeChoice::Worst)),
            ),
            (
                "unbalanced (cross stop)",
                Box::new(Unbalanced::new(AttributeChoice::Worst).with_cross_stopping()),
            ),
            (
                "r-unbalanced",
                Box::new(Unbalanced::new(AttributeChoice::Random { seed: 1 })),
            ),
            ("balanced", Box::new(Balanced::new(AttributeChoice::Worst))),
            (
                "r-balanced",
                Box::new(Balanced::new(AttributeChoice::Random { seed: 2 })),
            ),
            ("all-attributes", Box::new(AllAttributes)),
        ];
        let mut per_algo: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];
        let mut per_algo_parts: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];
        for seed in 0..runs {
            let scores = make(0xF00D + seed).score_all(&workers).expect("scores");
            let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).expect("ctx");
            for (i, (_, algo)) in algorithms.iter().enumerate() {
                let r = algo.run(&ctx).expect("algorithm");
                per_algo[i].push(r.unfairness);
                per_algo_parts[i].push(r.partitioning.len() as f64);
            }
        }
        let rows: Vec<Vec<String>> = algorithms
            .iter()
            .enumerate()
            .map(|(i, (label, _))| {
                let (m, s) = mean_std(&per_algo[i]);
                let (pm, ps) = mean_std(&per_algo_parts[i]);
                vec![
                    label.to_string(),
                    format!("{m:.3} ± {s:.3}"),
                    format!("{pm:.0} ± {ps:.0}"),
                ]
            })
            .collect();
        println!("--- {name} ---");
        println!(
            "{}",
            render_table(&["algorithm", "avg EMD (mean ± std)", "partitions"], &rows)
        );
    }
    println!("paper remark: across runs, unbalanced sometimes matched balanced and sometimes");
    println!("over-split; the cross-stop variant shows the unstable regime explicitly.");
}
