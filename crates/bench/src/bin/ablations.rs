//! Design-choice ablations (extensions beyond the paper's tables).
//!
//! 1. **Bin count** — the paper never states its histogram bin count;
//!    sweep it and watch the unfairness values (EMD between subsampled
//!    histograms grows with finer bins on random data).
//! 2. **Distance metric** — the paper's future work asks about other
//!    metrics; run `balanced` under each bounded symmetric distance.
//! 3. **`unbalanced` ambiguity variants** — sibling scope and stopping
//!    comparison (see `algorithms::unbalanced` docs).
//! 4. **Beam width** — how much does greedy commitment lose against a
//!    wider beam?
//! 5. **Parallel pairwise EMD** — thread scaling of the dominant kernel.
//! 6. **Greedy vs exact over the balanced space** — the balanced space
//!    is the subset lattice of attributes (2^m − 1 candidates), so its
//!    exact optimum is cheap; how much does greedy `balanced` lose?
//! 7. **Incremental vs batch pairwise averaging** — the
//!    replace-one-partition-by-children delta update.
//!
//! ```text
//! cargo run -p fairjob-bench --release --bin ablations
//! ```

use fairjob_bench::{prepare_population, render_table};
use fairjob_core::algorithms::{
    balanced::Balanced, beam::Beam, unbalanced::Unbalanced, Algorithm, AttributeChoice,
};
use fairjob_core::unfairness::{average_pairwise, average_pairwise_parallel};
use fairjob_core::{AuditConfig, AuditContext};
use fairjob_hist::distance::all_symmetric_distances;
use fairjob_hist::Histogram;
use fairjob_marketplace::scoring::{LinearScore, RuleBasedScore, ScoringFunction};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let workers = prepare_population(500, 0xEDB7_2019);
    let f1_scores = LinearScore::alpha("f1", 0.5)
        .score_all(&workers)
        .expect("scores");
    let f6_scores = RuleBasedScore::f6(0xF00D)
        .score_all(&workers)
        .expect("scores");

    // 1. Bin-count sweep.
    println!("=== Ablation 1: histogram bin count (balanced, f1 and f6, 500 workers) ===\n");
    let mut rows = Vec::new();
    for bins in [5, 10, 20, 50, 100] {
        let mut row = vec![bins.to_string()];
        for scores in [&f1_scores, &f6_scores] {
            let ctx =
                AuditContext::new(&workers, scores, AuditConfig::with_bins(bins)).expect("ctx");
            let r = Balanced::new(AttributeChoice::Worst)
                .run(&ctx)
                .expect("balanced");
            row.push(format!(
                "{:.3} ({} parts)",
                r.unfairness,
                r.partitioning.len()
            ));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["bins", "f1 (random)", "f6 (biased)"], &rows)
    );

    // 2. Metric sweep.
    println!("=== Ablation 2: distance metric (balanced, 500 workers) ===\n");
    let mut rows = Vec::new();
    for dist in all_symmetric_distances() {
        let name = dist.name().to_string();
        let mut row = vec![name];
        for scores in [&f1_scores, &f6_scores] {
            let cfg = AuditConfig::with_distance(Arc::from(dist_clone(&*dist)));
            let ctx = AuditContext::new(&workers, scores, cfg).expect("ctx");
            let r = Balanced::new(AttributeChoice::Worst)
                .run(&ctx)
                .expect("balanced");
            let attrs: Vec<String> = r
                .partitioning
                .attributes_used()
                .iter()
                .map(|&a| workers.schema().attribute(a).name.clone())
                .collect();
            row.push(format!("{:.3} on {:?}", r.unfairness, attrs));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["metric", "f1 (random)", "f6 (biased)"], &rows)
    );

    // 3. unbalanced ambiguity variants.
    println!("=== Ablation 3: unbalanced pseudocode ambiguities (f6, 500 workers) ===\n");
    let ctx = AuditContext::new(&workers, &f6_scores, AuditConfig::default()).expect("ctx");
    let mut rows = Vec::new();
    let variants: [(&str, Unbalanced); 4] = [
        (
            "literal (union stop, local siblings)",
            Unbalanced::new(AttributeChoice::Worst),
        ),
        (
            "cross-pair stopping",
            Unbalanced::new(AttributeChoice::Worst).with_cross_stopping(),
        ),
        (
            "ancestor siblings",
            Unbalanced::new(AttributeChoice::Worst).with_ancestor_siblings(),
        ),
        (
            "cross + ancestors",
            Unbalanced::new(AttributeChoice::Worst)
                .with_cross_stopping()
                .with_ancestor_siblings(),
        ),
    ];
    for (label, algo) in variants {
        let r = algo.run(&ctx).expect("unbalanced variant");
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", r.unfairness),
            r.partitioning.len().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["variant", "unfairness", "partitions"], &rows)
    );

    // 4. Beam width.
    println!("=== Ablation 4: beam width (f1, 500 workers) ===\n");
    let ctx = AuditContext::new(&workers, &f1_scores, AuditConfig::default()).expect("ctx");
    let mut rows = Vec::new();
    for width in [1, 2, 4, 8] {
        let r = Beam::new(width).run(&ctx).expect("beam");
        rows.push(vec![
            width.to_string(),
            format!("{:.4}", r.unfairness),
            format!("{:.2?}", r.elapsed),
            r.candidates_evaluated.to_string(),
        ]);
    }
    let balanced = Balanced::new(AttributeChoice::Worst)
        .run(&ctx)
        .expect("balanced");
    rows.push(vec![
        "balanced (greedy)".into(),
        format!("{:.4}", balanced.unfairness),
        format!("{:.2?}", balanced.elapsed),
        balanced.candidates_evaluated.to_string(),
    ]);
    println!(
        "{}",
        render_table(&["beam width", "unfairness", "time", "candidates"], &rows)
    );

    // 5. Parallel pairwise EMD.
    println!("=== Ablation 5: parallel pairwise EMD (1800-cell full partitioning scale) ===\n");
    let spec = fairjob_hist::BinSpec::equal_width(0.0, 1.0, 10).expect("spec");
    let hists: Vec<Histogram> = (0..1200)
        .map(|i| {
            let base = (i % 97) as f64 / 97.0;
            Histogram::from_values(
                spec.clone(),
                [base, (base + 0.31) % 1.0, (base + 0.62) % 1.0],
            )
        })
        .collect();
    let refs: Vec<&Histogram> = hists.iter().collect();
    let dist = fairjob_hist::distance::Emd1d;
    let mut rows = Vec::new();
    let t0 = Instant::now();
    let serial = average_pairwise(&refs, &dist).expect("serial");
    let serial_time = t0.elapsed();
    rows.push(vec![
        "serial".into(),
        format!("{serial:.6}"),
        format!("{serial_time:.2?}"),
    ]);
    for threads in [2, 4, 8] {
        let t = Instant::now();
        let par = average_pairwise_parallel(&refs, &dist, threads).expect("parallel");
        rows.push(vec![
            format!("{threads} threads"),
            format!("{par:.6}"),
            format!("{:.2?}", t.elapsed()),
        ]);
    }
    println!("{}", render_table(&["mode", "avg EMD", "time"], &rows));

    // 6. Greedy balanced vs exact over the balanced (subset) space.
    println!("=== Ablation 6: greedy balanced vs subset-exact (500 workers) ===\n");
    let mut rows = Vec::new();
    let biased_scores: Vec<(&str, &Vec<f64>)> = vec![("f1", &f1_scores), ("f6", &f6_scores)];
    for (name, scores) in biased_scores {
        let ctx = AuditContext::new(&workers, scores, AuditConfig::default()).expect("ctx");
        let greedy = Balanced::new(AttributeChoice::Worst)
            .run(&ctx)
            .expect("balanced");
        let exact = fairjob_core::algorithms::subsets::SubsetExact::default()
            .run(&ctx)
            .expect("subsets");
        rows.push(vec![
            name.to_string(),
            format!(
                "{:.4} ({} evals, {:.2?})",
                greedy.unfairness, greedy.candidates_evaluated, greedy.elapsed
            ),
            format!(
                "{:.4} ({} evals, {:.2?})",
                exact.unfairness, exact.candidates_evaluated, exact.elapsed
            ),
            format!("{:.4}", exact.unfairness - greedy.unfairness),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "function",
                "greedy balanced",
                "subset-exact (63 subsets)",
                "gap"
            ],
            &rows
        )
    );

    // 7. Incremental vs batch pairwise averaging (replace-one workload).
    println!("=== Ablation 7: incremental vs batch pairwise averaging ===\n");
    use fairjob_core::unfairness::PairwiseAverager;
    let dist = fairjob_hist::distance::Emd1d;
    let base: Vec<Histogram> = (0..400)
        .map(|i| {
            let v = (i % 89) as f64 / 89.0;
            Histogram::from_values(spec.clone(), [v, (v + 0.4) % 1.0])
        })
        .collect();
    // Workload: replace each of the first 100 histograms by two children.
    let t_batch = Instant::now();
    let mut batch_last = 0.0;
    for k in 0..100 {
        let mut set: Vec<&Histogram> = base.iter().collect();
        set.remove(k);
        // Batch recompute from scratch each step (children approximated
        // by reusing two other histograms — the arithmetic is identical).
        let extra = [&base[(k + 1) % 400], &base[(k + 2) % 400]];
        set.extend(extra);
        batch_last = average_pairwise(&set, &dist).expect("batch");
    }
    let batch_time = t_batch.elapsed();
    let t_inc = Instant::now();
    let mut averager =
        PairwiseAverager::with_histograms(&dist, base.iter().cloned()).expect("averager");
    let mut inc_last = 0.0;
    for k in 0..100 {
        averager.remove(k).expect("remove");
        let a = averager
            .insert(base[(k + 1) % 400].clone())
            .expect("insert");
        let b = averager
            .insert(base[(k + 2) % 400].clone())
            .expect("insert");
        inc_last = averager.average();
        // Undo so each step is a fresh replace-one probe.
        averager.remove(a).expect("remove");
        averager.remove(b).expect("remove");
        averager.insert(base[k].clone()).expect("insert");
    }
    let inc_time = t_inc.elapsed();
    println!(
        "{}",
        render_table(
            &[
                "mode",
                "time (100 replace-one probes, 400 hists)",
                "last value"
            ],
            &[
                vec![
                    "batch recompute".into(),
                    format!("{batch_time:.2?}"),
                    format!("{batch_last:.6}")
                ],
                vec![
                    "incremental".into(),
                    format!("{inc_time:.2?}"),
                    format!("{inc_last:.6}")
                ],
            ]
        )
    );
}

/// Clone a boxed distance by name (the trait objects are zero-sized
/// unit structs, so reconstructing by name is exact).
fn dist_clone(d: &dyn fairjob_hist::HistogramDistance) -> Box<dyn fairjob_hist::HistogramDistance> {
    use fairjob_hist::distance as dd;
    match d.name() {
        "emd" => Box::new(dd::Emd1d),
        "total-variation" => Box::new(dd::TotalVariation),
        "kolmogorov-smirnov" => Box::new(dd::KolmogorovSmirnov),
        "jensen-shannon" => Box::new(dd::JensenShannon),
        "hellinger" => Box::new(dd::Hellinger),
        "chi-square" => Box::new(dd::ChiSquare),
        other => unreachable!("unknown distance {other}"),
    }
}
