//! Runtime scaling with population size.
//!
//! The paper's efficiency discussion: "the larger the dataset, the more
//! time it took for all algorithms to finish", with `balanced` slowest
//! because each splitting step re-examines all remaining attributes.
//! This binary measures all five algorithms (plus `subset-exact`) across
//! population sizes, including sizes beyond the paper's 7300.
//!
//! ```text
//! cargo run -p fairjob-bench --release --bin scaling [max_n]
//! ```

use fairjob_bench::{prepare_population, render_table};
use fairjob_core::algorithms::{paper_algorithms, subsets::SubsetExact, Algorithm};
use fairjob_core::{AuditConfig, AuditContext};
use fairjob_marketplace::scoring::{LinearScore, ScoringFunction};

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30_000);
    let sizes: Vec<usize> = [500usize, 2000, 7300, 30_000]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect();
    let f1 = LinearScore::alpha("f1", 0.5);

    let mut rows = Vec::new();
    for &n in &sizes {
        let workers = prepare_population(n, 0xEDB7_2019);
        let scores = f1.score_all(&workers).expect("scores");
        let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).expect("ctx");
        let mut row = vec![n.to_string()];
        for algorithm in paper_algorithms(0xBEEF) {
            let result = algorithm.run(&ctx).expect("run");
            row.push(format!("{:.3}s", result.elapsed.as_secs_f64()));
        }
        let subset = SubsetExact::default().run(&ctx).expect("subset");
        row.push(format!("{:.3}s", subset.elapsed.as_secs_f64()));
        rows.push(row);
    }
    println!("=== runtime scaling (random f1, paper seed) ===\n");
    println!(
        "{}",
        render_table(
            &[
                "workers",
                "unbalanced",
                "r-unbalanced",
                "balanced",
                "r-balanced",
                "all-attrs",
                "subset-exact"
            ],
            &rows
        )
    );
    println!("paper (runtime columns of Tables 1–2): every algorithm grows with |W|;");
    println!("balanced slowest (311 s at 500, 5734 s at 7300 on the authors' setup).");
}
