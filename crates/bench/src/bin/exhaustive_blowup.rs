//! The exhaustive-search infeasibility remark.
//!
//! The paper: "we also implemented an exhaustive algorithm … However,
//! this algorithm failed to terminate after running for two days with
//! only 6 attributes …, even when each attribute had only a maximum of 5
//! values." This binary reproduces the *reason*: it counts the split-tree
//! partitionings as attributes are added (saturating at 10^15) and times
//! the budgeted exhaustive search on growing prefixes of the schema
//! until the budget trips.
//!
//! ```text
//! cargo run -p fairjob-bench --release --bin exhaustive_blowup
//! ```

use fairjob_bench::{prepare_population, render_table};
use fairjob_core::algorithms::exhaustive::{count_tree_partitionings, ExhaustiveTree};
use fairjob_core::algorithms::Algorithm;
use fairjob_core::{AuditConfig, AuditContext, AuditError};
use fairjob_marketplace::scoring::{LinearScore, ScoringFunction};
use std::time::Instant;

fn main() {
    let workers = prepare_population(500, 0xEDB7_2019);
    let scores = LinearScore::alpha("f1", 0.5)
        .score_all(&workers)
        .expect("scores");
    const CAP: u128 = 1_000_000_000_000_000;

    let attr_names = [
        "gender",
        "country",
        "language",
        "ethnicity",
        "yob_band",
        "experience_band",
    ];
    let mut rows = Vec::new();
    for k in 1..=attr_names.len() {
        let selection: Vec<String> = attr_names[..k].iter().map(|s| s.to_string()).collect();
        let cfg = AuditConfig {
            attributes: Some(selection.clone()),
            ..Default::default()
        };
        let ctx = AuditContext::new(&workers, &scores, cfg).expect("ctx");

        let t0 = Instant::now();
        let count = count_tree_partitionings(&ctx, &ctx.root(), ctx.attributes(), CAP);
        let count_time = t0.elapsed();

        let budget = 200_000;
        let t1 = Instant::now();
        let search = ExhaustiveTree::new(budget).run(&ctx);
        let search_time = t1.elapsed();
        let outcome = match search {
            Ok(r) => format!("best {:.3} in {:.2?}", r.unfairness, search_time),
            Err(AuditError::BudgetExceeded { budget }) => {
                format!("budget {budget} exceeded after {:.2?}", search_time)
            }
            Err(e) => format!("error: {e}"),
        };
        rows.push(vec![
            k.to_string(),
            attr_names[..k].join(","),
            if count >= CAP {
                format!(">= {CAP}")
            } else {
                count.to_string()
            },
            format!("{count_time:.2?}"),
            outcome,
        ]);
        if count >= CAP {
            println!("(stopping the sweep: the count already saturated at {CAP})\n");
            break;
        }
    }
    println!("=== Exhaustive search blow-up (500 workers) ===\n");
    println!(
        "{}",
        render_table(
            &[
                "#attrs",
                "attributes",
                "split-tree partitionings",
                "count time",
                "budgeted search"
            ],
            &rows
        )
    );
    println!("paper: brute force over all 6 attributes did not finish within two days.");
}
