//! Repair λ-sweep (the paper's "repairing bias" future work).
//!
//! For each biased function f6–f8: audit with `balanced`, repair the
//! scores against the found partitioning at increasing λ, and report two
//! residuals:
//!
//! * **audited** — the unfairness of the originally-audited partitioning
//!   recomputed on the repaired scores (what the repair directly fixes);
//! * **re-audit** — a fresh `balanced` search over the repaired scores
//!   (can the auditor still find *any* unfair partitioning?).
//!
//! A fresh audit on *any* finite population finds non-zero unfairness in
//! pure noise (micro-partitions have noisy histograms — the paper's
//! Tables 1–2 show 0.15–0.34 on fully random data), so the re-audit
//! column should be read against the printed noise floor, not zero.
//!
//! ```text
//! cargo run -p fairjob-bench --release --bin repair_sweep
//! ```

use fairjob_bench::{prepare_population, render_table};
use fairjob_core::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
use fairjob_core::{AuditConfig, AuditContext};
use fairjob_marketplace::scoring::{RuleBasedScore, ScoringFunction};
use fairjob_repair::{repair_scores, RepairConfig, RepairTarget};
use fairjob_store::RowSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let workers = prepare_population(1000, 0xEDB7_2019);
    println!("=== Repair sweep: residual unfairness after λ-partial repair (1000 workers) ===\n");

    // Noise floor: what a fresh audit reports on pure random scores.
    let noise_scores: Vec<f64> = {
        let mut rng = StdRng::seed_from_u64(0xA11CE);
        (0..workers.len()).map(|_| rng.gen()).collect()
    };
    let noise_ctx =
        AuditContext::new(&workers, &noise_scores, AuditConfig::default()).expect("ctx");
    let noise_floor = Balanced::new(AttributeChoice::Worst)
        .run(&noise_ctx)
        .expect("balanced")
        .unfairness;

    let lambdas = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut rows = Vec::new();
    for function in RuleBasedScore::paper_biased_functions(0xF00D)
        .iter()
        .take(3)
    {
        let scores = function.score_all(&workers).expect("scores");
        let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).expect("ctx");
        let audit = Balanced::new(AttributeChoice::Worst)
            .run(&ctx)
            .expect("balanced");
        let groups: Vec<RowSet> = audit
            .partitioning
            .partitions()
            .iter()
            .map(|p| p.rows.clone())
            .collect();

        let mut audited_row = vec![format!("{} audited", function.name())];
        let mut fresh_row = vec![format!("{} re-audit", function.name())];
        for lambda in lambdas {
            let cfg = RepairConfig {
                lambda,
                target: RepairTarget::Median,
            };
            let repaired = repair_scores(&scores, &groups, &cfg).expect("repair");
            let rctx = AuditContext::new(&workers, &repaired, AuditConfig::default()).expect("ctx");
            // (a) The audited partitioning under repaired scores.
            let parts: Vec<_> = groups
                .iter()
                .map(|g| rctx.partition(fairjob_store::Predicate::always(), g.clone()))
                .collect();
            audited_row.push(format!(
                "{:.3}",
                rctx.unfairness(&parts).expect("unfairness")
            ));
            // (b) A fresh search over the repaired scores.
            let re = Balanced::new(AttributeChoice::Worst)
                .run(&rctx)
                .expect("balanced");
            fresh_row.push(format!("{:.3}", re.unfairness));
        }
        rows.push(audited_row);
        rows.push(fresh_row);
    }
    println!(
        "{}",
        render_table(
            &["function / view", "λ=0", "λ=0.25", "λ=0.5", "λ=0.75", "λ=1"],
            &rows
        )
    );
    println!("noise floor (fresh balanced audit on uniform random scores): {noise_floor:.3}");
    println!("expectation: the audited view decreases to ~0 with λ; the re-audit view decreases");
    println!("towards the noise floor (it can never go below it on a finite population).");
}
