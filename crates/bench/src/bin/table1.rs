//! Table 1 — average EMD and runtime, 500 workers, random functions
//! f1–f5, all five algorithms.
//!
//! ```text
//! cargo run -p fairjob-bench --release --bin table1
//! ```
//!
//! Expected shape (not absolute values — the substrate and hardware
//! differ from the authors'): f4/f5 (single observed attribute) show the
//! highest unfairness; all algorithms land close together; `balanced` is
//! the slowest.

use fairjob_bench::{prepare_population, run_sweep};
use fairjob_marketplace::scoring::{LinearScore, ScoringFunction};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(500);
    let workers = prepare_population(n, 0xEDB7_2019);
    let functions = LinearScore::paper_random_functions();
    let refs: Vec<&dyn ScoringFunction> = functions
        .iter()
        .map(|f| f as &dyn ScoringFunction)
        .collect();
    let sweep = run_sweep(&workers, &refs, 10, 0xBEEF);

    println!("=== Table 1: {n} workers, random functions f1..f5 ===\n");
    println!("{}", sweep.render());

    println!("paper (500 workers), average EMD for reference:");
    println!("  unbalanced     0.195 0.191 0.179 0.247 0.257");
    println!("  r-unbalanced   0.193 0.193 0.177 0.243 0.253");
    println!("  balanced       0.196 0.194 0.177 0.246 0.253");
    println!("  r-balanced     0.195 0.194 0.177 0.246 0.253");
    println!("  all-attributes 0.195 0.193 0.177 0.246 0.253");

    // Shape checks the reproduction is expected to satisfy.
    let f4_col = 3;
    let f5_col = 4;
    let f1_col = 0;
    let mut shape_ok = true;
    for (row, algo) in sweep.algorithms.iter().enumerate() {
        let f1v = sweep.cells[row][f1_col].unfairness;
        let f4v = sweep.cells[row][f4_col].unfairness;
        let f5v = sweep.cells[row][f5_col].unfairness;
        if f4v <= f1v || f5v <= f1v {
            shape_ok = false;
            println!("!! shape deviation: {algo}: f4={f4v:.3} f5={f5v:.3} not above f1={f1v:.3}");
        }
    }
    println!(
        "\nshape check (single-attribute functions f4/f5 most unfair): {}",
        if shape_ok { "PASS" } else { "DEVIATION" }
    );
}
