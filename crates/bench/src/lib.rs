//! Shared harness for the paper-reproduction binaries and benches.
//!
//! Each table/figure of the paper has a binary in `src/bin/` that prints
//! the regenerated numbers next to the paper's; this library holds the
//! pieces they share: population preparation, the five-way algorithm
//! sweep, and plain-text table rendering.

use fairjob_core::algorithms::paper_algorithms;
use fairjob_core::{AuditConfig, AuditContext, AuditResult};
use fairjob_marketplace::scoring::ScoringFunction;
use fairjob_marketplace::{bucketise_numeric_protected, generate_uniform};
use fairjob_store::Table;
use std::time::Duration;

/// Generate the paper's uniform population of `n` workers and bucketise
/// its numeric protected attributes so all six are splittable.
pub fn prepare_population(n: usize, seed: u64) -> Table {
    let mut workers = generate_uniform(n, seed);
    bucketise_numeric_protected(&mut workers).expect("fresh table bucketises cleanly");
    workers
}

/// One cell of a result table: the unfairness found and the runtime.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Average pairwise distance of the returned partitioning.
    pub unfairness: f64,
    /// Wall-clock runtime of the algorithm.
    pub elapsed: Duration,
    /// Number of partitions in the returned partitioning.
    pub partitions: usize,
    /// Names of the attributes the partitioning splits on.
    pub attributes: Vec<String>,
}

/// Results of running the paper's five algorithms over a set of scoring
/// functions on one population: `cells[algorithm][function]`.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Algorithm names, row order.
    pub algorithms: Vec<String>,
    /// Scoring-function names, column order.
    pub functions: Vec<String>,
    /// `cells[row][col]`.
    pub cells: Vec<Vec<Cell>>,
}

/// Run the paper's five algorithms (`unbalanced`, `r-unbalanced`,
/// `balanced`, `r-balanced`, `all-attributes`) against every scoring
/// function, in the row/column order of the paper's tables.
pub fn run_sweep(
    workers: &Table,
    functions: &[&dyn ScoringFunction],
    config_bins: usize,
    seed: u64,
) -> SweepResult {
    let algorithms = paper_algorithms(seed);
    let mut cells: Vec<Vec<Cell>> = vec![Vec::new(); algorithms.len()];
    let mut function_names = Vec::new();
    for f in functions {
        function_names.push(f.name().to_string());
        let scores = f
            .score_all(workers)
            .expect("scoring the generated population succeeds");
        let ctx = AuditContext::new(workers, &scores, AuditConfig::with_bins(config_bins))
            .expect("audit context over generated population");
        for (row, algorithm) in algorithms.iter().enumerate() {
            let result = algorithm.run(&ctx).expect("algorithm completes");
            cells[row].push(to_cell(workers, &result));
        }
    }
    SweepResult {
        algorithms: algorithms.iter().map(|a| a.name()).collect(),
        functions: function_names,
        cells,
    }
}

fn to_cell(workers: &Table, result: &AuditResult) -> Cell {
    Cell {
        unfairness: result.unfairness,
        elapsed: result.elapsed,
        partitions: result.partitioning.len(),
        attributes: result
            .partitioning
            .attributes_used()
            .iter()
            .map(|&a| workers.schema().attribute(a).name.clone())
            .collect(),
    }
}

impl SweepResult {
    /// Render in the paper's layout: one row per algorithm, average-EMD
    /// columns then runtime columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<16}", "Algorithm"));
        for f in &self.functions {
            out.push_str(&format!(" {:>8}", f));
        }
        for f in &self.functions {
            out.push_str(&format!(" {:>10}", format!("t({f})")));
        }
        out.push('\n');
        for (row, algo) in self.algorithms.iter().enumerate() {
            out.push_str(&format!("{algo:<16}"));
            for cell in &self.cells[row] {
                out.push_str(&format!(" {:>8.3}", cell.unfairness));
            }
            for cell in &self.cells[row] {
                out.push_str(&format!(" {:>9.3}s", cell.elapsed.as_secs_f64()));
            }
            out.push('\n');
        }
        out
    }
}

/// Render a simple aligned table from a header and rows of strings.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, h) in header.iter().enumerate() {
        out.push_str(&format!("{:<width$}  ", h, width = widths[i]));
    }
    out.push('\n');
    for (i, _) in header.iter().enumerate() {
        out.push_str(&"-".repeat(widths[i]));
        out.push_str("  ");
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairjob_marketplace::scoring::LinearScore;

    #[test]
    fn prepare_population_is_splittable_on_six_attributes() {
        let t = prepare_population(50, 1);
        assert_eq!(t.schema().splittable().len(), 6);
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn sweep_shape_matches_paper_layout() {
        let workers = prepare_population(60, 2);
        let f1 = LinearScore::alpha("f1", 0.5);
        let f4 = LinearScore::alpha("f4", 1.0);
        let sweep = run_sweep(&workers, &[&f1, &f4], 10, 7);
        assert_eq!(
            sweep.algorithms,
            vec![
                "unbalanced",
                "r-unbalanced",
                "balanced",
                "r-balanced",
                "all-attributes"
            ]
        );
        assert_eq!(sweep.functions, vec!["f1", "f4"]);
        assert_eq!(sweep.cells.len(), 5);
        assert!(sweep.cells.iter().all(|row| row.len() == 2));
        let text = sweep.render();
        assert!(text.contains("balanced") && text.contains("t(f4)"));
    }

    #[test]
    fn render_table_aligns() {
        let text = render_table(
            &["a", "long-header"],
            &[
                vec!["x".into(), "y".into()],
                vec!["wide-cell".into(), "z".into()],
            ],
        );
        assert_eq!(text.lines().count(), 4);
    }
}
