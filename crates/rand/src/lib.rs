//! Offline vendored subset of the `rand` crate API.
//!
//! The build environment has no access to the crates.io registry, so the
//! workspace replaces `rand` with this path crate. It implements exactly
//! the surface the workspace uses — [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng::gen`] / [`Rng::gen_range`], and [`seq::SliceRandom::shuffle`] —
//! on top of a xoshiro256++ core seeded through SplitMix64.
//!
//! The streams are deterministic in the seed (everything the workspace
//! requires) but deliberately **not** bit-compatible with crates.io
//! `rand`'s ChaCha-based `StdRng`; no test in this repository depends on
//! the exact stream, only on determinism and uniformity.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from "the standard distribution" — the
/// subset of `rand`'s `Standard` the workspace uses.
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly — the subset of `rand`'s `SampleRange`
/// the workspace uses (half-open and inclusive ranges of the common
/// integer and float types).
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`. Panics on empty ranges,
    /// matching `rand`.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by 128-bit multiply (negligible bias
/// is removed by widening, not rejection — fine for the simulation and
/// test workloads here).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    (((rng.next_u64() as u128) * (bound as u128)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, width) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + uniform_below(rng, width as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // Floating rounding can land exactly on `end`; fold back.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The user-facing generator trait (blanket-implemented for every
/// [`RngCore`], mirroring `rand`).
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution (`[0, 1)` for
    /// floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng` (same role: seedable, fast, good statistical quality —
    /// not reproducible against crates.io streams).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{Rng, RngCore};

    /// Slice extensions (the `shuffle` subset of `rand::seq`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<f64> = (0..8).map(|_| c.gen()).collect();
        let mut a2 = StdRng::seed_from_u64(42);
        let other: Vec<f64> = (0..8).map(|_| a2.gen()).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let r = rng.gen_range(3..10);
            assert!((3..10).contains(&r));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let x = rng.gen_range(25.0..=100.0);
            assert!((25.0..=100.0).contains(&x));
        }
    }

    #[test]
    fn ranges_reach_both_tails() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
