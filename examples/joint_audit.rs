//! Joint (two-function) auditing with 2-D histograms.
//!
//! Auditing each scoring function separately can miss joint effects.
//! This example constructs a marketplace with two task-qualification
//! scores where *every* per-function audit sees nothing — each gender
//! has identical score distributions on both functions — yet the joint
//! distribution differs completely: for male workers the two scores
//! agree (diagonal mass), for female workers they oppose (anti-diagonal
//! mass). In practice that means female workers are never strong on
//! both tasks at once. The 2-D EMD sees it.
//!
//! ```text
//! cargo run --release --example joint_audit
//! ```

use fairjob::core::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
use fairjob::core::{AuditConfig, AuditContext};
use fairjob::hist::hist2d::{emd_2d, Histogram2d};
use fairjob::hist::BinSpec;
use fairjob::marketplace::{bucketise_numeric_protected, generate_uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut workers = generate_uniform(2000, 77);
    bucketise_numeric_protected(&mut workers).expect("bucketise");
    let gender = workers.schema().index_of("gender").expect("attr");
    let codes = workers
        .column(gender)
        .as_categorical()
        .expect("categorical")
        .to_vec();

    // Two scores per worker: males correlated, females anti-correlated.
    let mut rng = StdRng::seed_from_u64(13);
    let mut score_a = Vec::with_capacity(workers.len());
    let mut score_b = Vec::with_capacity(workers.len());
    for &code in &codes {
        let base: f64 = rng.gen();
        score_a.push(base);
        score_b.push(if code == 0 { base } else { 1.0 - base });
    }

    // --- Per-function audits see nothing. ---
    for (name, scores) in [("task A", &score_a), ("task B", &score_b)] {
        let ctx = AuditContext::new(&workers, scores, AuditConfig::default()).expect("ctx");
        let audit = Balanced::new(AttributeChoice::Worst)
            .run(&ctx)
            .expect("audit");
        println!(
            "per-function audit of {name}: unfairness {:.3} ({} partitions) — noise level",
            audit.unfairness,
            audit.partitioning.len()
        );
    }

    // --- The joint 2-D view. ---
    let spec = BinSpec::equal_width(0.0, 1.0, 8).expect("spec");
    let mut male = Histogram2d::empty(spec.clone(), spec.clone());
    let mut female = Histogram2d::empty(spec.clone(), spec);
    for (i, &code) in codes.iter().enumerate() {
        if code == 0 {
            male.add(score_a[i], score_b[i]);
        } else {
            female.add(score_a[i], score_b[i]);
        }
    }
    use fairjob::hist::distance::{Emd1d, HistogramDistance};
    let marginal_a = Emd1d
        .distance(&male.marginal_x(), &female.marginal_x())
        .expect("emd");
    let marginal_b = Emd1d
        .distance(&male.marginal_y(), &female.marginal_y())
        .expect("emd");
    let joint = emd_2d(&male, &female).expect("2d emd");
    println!("\nmarginal EMD between genders, task A: {marginal_a:.4}");
    println!("marginal EMD between genders, task B: {marginal_b:.4}");
    println!("joint 2-D EMD between genders:        {joint:.4}");
    println!(
        "\nThe marginals are indistinguishable (~0.0x, sampling noise) while the\n\
         joint distance is large: female workers are never strong on both tasks\n\
         simultaneously. Auditing functions one at a time cannot detect this."
    );

    // --- The full joint search, without telling it where to look. ---
    use fairjob::core::joint::JointAuditContext;
    let jctx = JointAuditContext::new(&workers, &score_a, &score_b, 8).expect("joint ctx");
    let joint_audit = jctx.balanced_greedy().expect("joint audit");
    let names: Vec<String> = joint_audit
        .attributes_used
        .iter()
        .map(|&a| workers.schema().attribute(a).name.clone())
        .collect();
    println!(
        "\njoint greedy audit: unfairness {:.3} across {} partitions, split on {:?}\n\
         (the search localises the hidden structure on gender by itself)",
        joint_audit.unfairness,
        joint_audit.partitions.len(),
        names
    );
}
