//! Quickstart: generate a worker population, score it, and find its
//! most-unfair partitioning.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fairjob::core::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
use fairjob::core::{AuditConfig, AuditContext};
use fairjob::marketplace::scoring::{LinearScore, ScoringFunction};
use fairjob::marketplace::{bucketise_numeric_protected, generate_uniform};

fn main() {
    // 1. A population of 1000 workers with the paper's AMT-like schema:
    //    six protected attributes, two observed skill attributes.
    let mut workers = generate_uniform(1000, 42);

    // 2. Numeric protected attributes (year of birth, experience) must be
    //    discretised before they can define groups.
    bucketise_numeric_protected(&mut workers).expect("fresh population bucketises");

    // 3. A scoring function over the observed attributes — here the
    //    paper's f1: half language test, half approval rate.
    let f1 = LinearScore::alpha("f1", 0.5);
    let scores = f1
        .score_all(&workers)
        .expect("population has the observed attributes");

    // 4. Audit: which split of the workers on protected attributes makes
    //    this function look most unfair (highest average pairwise EMD
    //    between per-group score histograms)?
    let ctx = AuditContext::new(&workers, &scores, AuditConfig::default())
        .expect("scores align with the table");
    let result = Balanced::new(AttributeChoice::Worst)
        .run(&ctx)
        .expect("audit completes");

    println!("{}", result.render(&ctx, false));
    println!(
        "Interpretation: f1 blends two independent uniform attributes, so any\n\
         unfairness found here is sampling noise — compare the value above with\n\
         the biased_functions example, where the same audit finds designed bias."
    );
}
