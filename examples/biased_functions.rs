//! The paper's qualitative experiment: audit the functions that are
//! unfair *by design* (f6–f9) and check the audit recovers exactly the
//! attributes each function discriminates on.
//!
//! ```text
//! cargo run --release --example biased_functions
//! ```

use fairjob::core::algorithms::{balanced::Balanced, unbalanced::Unbalanced};
use fairjob::core::algorithms::{Algorithm, AttributeChoice};
use fairjob::core::{AuditConfig, AuditContext};
use fairjob::marketplace::scoring::{RuleBasedScore, ScoringFunction};
use fairjob::marketplace::{bucketise_numeric_protected, generate_uniform};

fn main() {
    let mut workers = generate_uniform(2000, 123);
    bucketise_numeric_protected(&mut workers).expect("bucketise");

    for function in RuleBasedScore::paper_biased_functions(77) {
        let scores = function.score_all(&workers).expect("scores");
        let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).expect("ctx");

        println!(
            "==================== {} ====================",
            function.name()
        );
        let balanced = Balanced::new(AttributeChoice::Worst)
            .run(&ctx)
            .expect("balanced");
        // Show histograms only for the compact partitionings.
        let show_hists = balanced.partitioning.len() <= 4;
        println!("{}", balanced.render(&ctx, show_hists));

        let unbalanced = Unbalanced::new(AttributeChoice::Worst)
            .run(&ctx)
            .expect("unbalanced");
        println!(
            "unbalanced found {:.3} with {} partitions on {:?}\n",
            unbalanced.unfairness,
            unbalanced.partitioning.len(),
            unbalanced
                .partitioning
                .attributes_used()
                .iter()
                .map(|&a| workers.schema().attribute(a).name.clone())
                .collect::<Vec<_>>()
        );
    }

    println!(
        "Expectation (paper, Table 3): f6 partitions on gender alone with EMD ≈ 0.8;\n\
         f7 on gender+country; these values are far above anything seen on the\n\
         random functions f1–f5, which is what makes the audit useful."
    );
}
