//! Audit → repair → re-audit: detect designed bias, repair the scores by
//! quantile alignment, and verify both that the audited partitioning is
//! fixed and that worker order *within* each group survived.
//!
//! ```text
//! cargo run --release --example repair_bias
//! ```

use fairjob::core::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
use fairjob::core::{AuditConfig, AuditContext};
use fairjob::marketplace::ranking::rank;
use fairjob::marketplace::scoring::{RuleBasedScore, ScoringFunction};
use fairjob::marketplace::{bucketise_numeric_protected, generate_uniform};
use fairjob::repair::{repair_scores, RepairConfig, RepairTarget};
use fairjob::store::{Predicate, RowSet};

fn main() {
    let mut workers = generate_uniform(1500, 9);
    bucketise_numeric_protected(&mut workers).expect("bucketise");

    // A requester whose scoring discriminates on gender and nationality.
    let f7 = RuleBasedScore::f7(31);
    let scores = f7.score_all(&workers).expect("scores");

    // --- Audit. ---
    let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).expect("ctx");
    let audit = Balanced::new(AttributeChoice::Worst)
        .run(&ctx)
        .expect("audit");
    println!("=== before repair ===\n{}", audit.render(&ctx, false));

    // --- Repair against the audited groups. ---
    let groups: Vec<RowSet> = audit
        .partitioning
        .partitions()
        .iter()
        .map(|p| p.rows.clone())
        .collect();
    let repaired = repair_scores(
        &scores,
        &groups,
        &RepairConfig {
            lambda: 1.0,
            target: RepairTarget::Median,
        },
    )
    .expect("repair");

    // --- Re-audit the same partitioning on repaired scores. ---
    let rctx = AuditContext::new(&workers, &repaired, AuditConfig::default()).expect("ctx");
    let reparts: Vec<_> = groups
        .iter()
        .map(|g| rctx.partition(Predicate::always(), g.clone()))
        .collect();
    println!(
        "=== after full repair ===\nunfairness of the audited partitioning: {:.4} (was {:.4})",
        rctx.unfairness(&reparts).expect("unfairness"),
        audit.unfairness
    );

    // --- Within-group ranking is preserved. ---
    let sample_group = &groups[0];
    let before: Vec<u32> = {
        let member_scores: Vec<f64> = sample_group.iter().map(|r| scores[r]).collect();
        rank(&member_scores, None).iter().map(|r| r.row).collect()
    };
    let after: Vec<u32> = {
        let member_scores: Vec<f64> = sample_group.iter().map(|r| repaired[r]).collect();
        rank(&member_scores, None).iter().map(|r| r.row).collect()
    };
    println!(
        "within-group ranking preserved in the largest audited group: {}",
        if before == after {
            "yes"
        } else {
            "NO (unexpected)"
        }
    );

    // --- What the platform sees: top-10 gender mix before vs after. ---
    let gender = workers.schema().index_of("gender").expect("attr");
    let mix = |s: &[f64]| {
        let top = rank(s, Some(10));
        let females = top
            .iter()
            .filter(|r| workers.code_at(gender, r.row as usize).expect("code") == 1)
            .count();
        format!("{females}/10 female")
    };
    println!("top-10 before repair: {}", mix(&scores));
    println!("top-10 after repair:  {}", mix(&repaired));
}
