//! End-to-end marketplace audit: simulate a crowdsourcing platform with
//! several posted tasks, watch where requester attention (exposure)
//! flows, then audit the task-qualification functions and test the
//! findings for statistical significance.
//!
//! ```text
//! cargo run --release --example audit_marketplace
//! ```

use fairjob::core::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
use fairjob::core::stats::permutation_test;
use fairjob::core::{AuditConfig, AuditContext};
use fairjob::marketplace::platform::Platform;
use fairjob::marketplace::ranking::ExposureModel;
use fairjob::marketplace::scoring::{LinearScore, RuleBasedScore};
use fairjob::marketplace::{bucketise_numeric_protected, generate_correlated, CorrelationConfig};

fn main() {
    // A population whose skills correlate with demographics — the
    // synthetic stand-in for real marketplace data (Qapa / TaskRabbit in
    // the paper's future work).
    let mut workers = generate_correlated(2000, 7, &CorrelationConfig::default());
    bucketise_numeric_protected(&mut workers).expect("bucketise");

    let mut platform = Platform::new(workers, ExposureModel::Logarithmic);

    // Requesters post tasks ranked by different qualification functions.
    let html_gig = LinearScore::alpha("html-css-jquery", 0.7);
    let moving_gig = LinearScore::alpha("furniture-assembly", 0.2);
    let biased_gig = RuleBasedScore::f7(99);
    platform
        .post_task("help with HTML, JavaScript, CSS and JQuery", &html_gig, 20)
        .expect("task");
    platform
        .post_task("assemble two IKEA wardrobes", &moving_gig, 20)
        .expect("task");
    platform
        .post_task("logo design (biased requester)", &biased_gig, 20)
        .expect("task");

    // Where did attention go, per language group?
    let language = platform
        .workers()
        .schema()
        .index_of("language")
        .expect("attr");
    println!("=== exposure per language group (3 tasks, log position bias) ===");
    for (code, mean, n) in platform.exposure_by_group(language).expect("groups") {
        let label = platform
            .workers()
            .schema()
            .attribute(language)
            .label_of(code)
            .expect("label");
        println!("  {label:<10} mean exposure {mean:.4}  (n={n})");
    }

    // Audit each task's scoring function.
    for log in platform.logs().to_vec() {
        let ctx = AuditContext::new(platform.workers(), &log.scores, AuditConfig::default())
            .expect("ctx");
        let audit = Balanced::new(AttributeChoice::Worst)
            .run(&ctx)
            .expect("audit");
        let significance =
            permutation_test(&ctx, &audit.partitioning, 99, 0xD1CE).expect("permutation test");
        println!(
            "\n=== task {} (function {}) ===\n{}",
            log.task_id,
            log.function,
            audit.render(&ctx, false)
        );
        println!(
            "permutation test: observed {:.3} vs null mean {:.3} (max {:.3}), p = {:.3} -> {}",
            significance.observed,
            significance.null_mean,
            significance.null_max,
            significance.p_value,
            if significance.p_value <= 0.05 {
                "unfairness is significant"
            } else {
                "consistent with sampling noise"
            }
        );
    }
}
