//! Continuous fairness monitoring: watch a deployed ranking drift.
//!
//! A baseline audit fixes the partitioning to watch; the marketplace
//! then evolves via the hiring feedback loop, and the drift monitor
//! re-evaluates the partitioning's unfairness after every epoch,
//! alerting when it leaves the baseline band.
//!
//! ```text
//! cargo run --release --example drift_monitor
//! ```

use fairjob::core::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
use fairjob::core::drift::DriftMonitor;
use fairjob::core::{AuditConfig, AuditContext};
use fairjob::hist::distance::Emd1d;
use fairjob::marketplace::hiring::{simulate_hiring, HiringConfig};
use fairjob::marketplace::scoring::{LinearScore, ScoringFunction};
use fairjob::marketplace::{bucketise_numeric_protected, generate_correlated, CorrelationConfig};
use std::sync::Arc;

fn main() {
    // A mildly language-correlated marketplace and a blended scorer.
    let population = CorrelationConfig {
        language_to_test: 0.35,
        experience_to_approval: 0.0,
        country_to_approval: 0.0,
    };
    let mut workers = generate_correlated(800, 33, &population);
    bucketise_numeric_protected(&mut workers).expect("bucketise");
    let language = workers.schema().index_of("language").expect("attr");
    let scorer = LinearScore::alpha("blend", 0.6);

    // Baseline audit across language groups only (the attribute the
    // platform owner decided to watch).
    let scores = scorer.score_all(&workers).expect("scores");
    let cfg = AuditConfig {
        attributes: Some(vec!["language".into()]),
        ..Default::default()
    };
    let ctx = AuditContext::new(&workers, &scores, cfg).expect("ctx");
    let baseline = Balanced::new(AttributeChoice::Worst)
        .run(&ctx)
        .expect("audit");
    println!(
        "baseline: unfairness {:.3} across {} language groups",
        baseline.unfairness,
        baseline.partitioning.len()
    );

    // Alert when unfairness exceeds 1.05x the baseline: reputation
    // feedback is slow (approval rates clamp at 100), so a tight band is
    // what catches it before it compounds.
    let mut monitor = DriftMonitor::new(
        &baseline.partitioning,
        ctx.spec().clone(),
        Arc::new(Emd1d),
        baseline.unfairness,
        1.05,
        0.0,
    );
    monitor.observe(&scores).expect("baseline observation");

    // Ten epochs of hiring with reputation feedback.
    for _epoch in 0..10 {
        let hiring = HiringConfig {
            rounds: 15,
            top_k: 60,
            hires_per_round: 6,
            approval_boost: 4.0,
            ..Default::default()
        };
        simulate_hiring(&mut workers, &scorer, language, &hiring).expect("epoch");
        let fresh = scorer.score_all(&workers).expect("scores");
        monitor.observe(&fresh).expect("observation");
    }

    println!(
        "\ntrajectory (threshold {:.3}):\n{}",
        monitor.threshold(),
        monitor.render(30)
    );
    match monitor.first_alert() {
        Some(round) => println!(
            "ALERT first fired at epoch {round}: the hiring feedback loop pushed the\n\
             watched partitioning past the baseline band — time to re-audit and repair."
        ),
        None => println!(
            "no alert: drift stayed inside the band (try raising the correlation or\n\
             the approval boost to see the loop trip the monitor)."
        ),
    }
}
