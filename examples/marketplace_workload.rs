//! A day of marketplace traffic: mixed task categories with skill
//! requirements, per-query eligibility diagnostics, and an exposure
//! audit at the end of the day.
//!
//! Requirements are the *pre-ranking* fairness surface: a minimum
//! language-test score excludes non-English speakers from a correlated
//! population before any scoring function runs. This example drives the
//! platform with a realistic workload and shows both surfaces — who was
//! eligible, and where exposure went.
//!
//! ```text
//! cargo run --release --example marketplace_workload
//! ```

use fairjob::core::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
use fairjob::core::exposure::{exposure_disparity, exposure_scores};
use fairjob::core::{AuditConfig, AuditContext};
use fairjob::marketplace::platform::Platform;
use fairjob::marketplace::ranking::ExposureModel;
use fairjob::marketplace::taskgen::{default_categories, TaskStream};
use fairjob::marketplace::{bucketise_numeric_protected, generate_correlated, CorrelationConfig};

fn main() {
    // A language-correlated population (the realistic-data stand-in).
    let population = CorrelationConfig {
        language_to_test: 0.6,
        ..Default::default()
    };
    let mut workers = generate_correlated(1500, 51, &CorrelationConfig { ..population });
    bucketise_numeric_protected(&mut workers).expect("bucketise");
    let language = workers.schema().index_of("language").expect("attr");

    let mut platform = Platform::new(workers, ExposureModel::Logarithmic);
    let mut stream = TaskStream::new(default_categories(), 4);

    // A day of traffic: 60 tasks across the category mix.
    let mut eligibility_by_category: std::collections::BTreeMap<String, (f64, f64, usize)> =
        std::collections::BTreeMap::new();
    for _ in 0..60 {
        let task = stream.next_task();
        let category = task.title.split(' ').next().expect("titled").to_string();
        // Eligibility diagnostics before posting.
        let probe = task.evaluate(platform.workers(), None).expect("evaluate");
        let by_group = probe
            .eligibility_by_group(platform.workers(), language)
            .expect("groups");
        let english = by_group
            .iter()
            .find(|(c, _, _)| *c == 0)
            .map(|g| g.1)
            .unwrap_or(0.0);
        let other: f64 = by_group
            .iter()
            .filter(|(c, _, _)| *c != 0)
            .map(|g| g.1)
            .sum::<f64>()
            / by_group.iter().filter(|(c, _, _)| *c != 0).count().max(1) as f64;
        let entry = eligibility_by_category
            .entry(category)
            .or_insert((0.0, 0.0, 0));
        entry.0 += english;
        entry.1 += other;
        entry.2 += 1;
        platform.post_query(&task, 15).expect("post");
    }

    println!("=== eligibility per task category (fraction of group passing requirements) ===\n");
    println!(
        "{:<16} {:>8} {:>14} {:>6}",
        "category", "English", "other langs", "tasks"
    );
    for (category, (english, other, n)) in &eligibility_by_category {
        println!(
            "{:<16} {:>7.0}% {:>13.0}% {:>6}",
            category,
            100.0 * english / *n as f64,
            100.0 * other / *n as f64,
            n
        );
    }

    // End-of-day exposure audit.
    let report =
        exposure_disparity(platform.workers(), platform.exposure(), language).expect("disparity");
    println!("\n=== end-of-day exposure by language group ===\n");
    for (code, mean, n) in &report.per_group {
        let label = platform
            .workers()
            .schema()
            .attribute(language)
            .label_of(*code)
            .expect("label");
        println!("  {label:<10} mean exposure {mean:.4}  (n={n})");
    }
    println!(
        "exposure parity ratio (min/max group mean): {:.3}",
        report.parity_ratio.unwrap_or(0.0)
    );

    // And the partitioning view of the same quantity.
    let pseudo = exposure_scores(platform.exposure()).expect("normalise");
    let cfg = AuditConfig {
        attributes: Some(vec!["language".into()]),
        ..Default::default()
    };
    let ctx = AuditContext::new(platform.workers(), &pseudo, cfg).expect("ctx");
    let audit = Balanced::new(AttributeChoice::Worst)
        .run(&ctx)
        .expect("audit");
    println!(
        "\nexposure-audit (EMD) unfairness across language groups: {:.3}",
        audit.unfairness
    );
    println!(
        "\nNote the contrast: the parity *ratio* screams (0.05 — English speakers get\n\
         ~20x the attention) while the EMD view whispers, because most workers in\n\
         every group received no exposure at all and that shared mass at zero\n\
         dominates the histograms. Exposure disparity needs the ratio lens; EMD is\n\
         the right lens for score distributions. Both ship in `core::exposure`."
    );
}
