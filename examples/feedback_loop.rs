//! Hiring feedback loop: how ranking bias compounds — and what repair
//! does to the loop.
//!
//! Simulates a marketplace where English-speaking workers start with a
//! moderate language-test advantage. Each round the platform ranks
//! workers, a requester hires from the top with position bias, and
//! hires raise the hired worker's approval rate. The advantage
//! compounds: the English share of hires drifts far above the group's
//! population share. Auditing the evolved scores shows the unfairness
//! the loop manufactured.
//!
//! ```text
//! cargo run --release --example feedback_loop
//! ```

use fairjob::core::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
use fairjob::core::{AuditConfig, AuditContext};
use fairjob::marketplace::hiring::{simulate_hiring, HiringConfig};
use fairjob::marketplace::scoring::{LinearScore, ScoringFunction};
use fairjob::marketplace::{bucketise_numeric_protected, generate_correlated, CorrelationConfig};

fn main() {
    // Mild initial correlation: English speakers test a bit better.
    let population_config = CorrelationConfig {
        language_to_test: 0.3,
        experience_to_approval: 0.0,
        country_to_approval: 0.0,
    };
    let mut workers = generate_correlated(1000, 21, &population_config);
    bucketise_numeric_protected(&mut workers).expect("bucketise");
    let language = workers.schema().index_of("language").expect("attr");

    let scorer = LinearScore::alpha("blend", 0.6);
    // Audit specifically across language groups: how unequal does the
    // scoring function treat them?
    let audit_unfairness = |workers: &fairjob::store::Table| -> f64 {
        let scores = scorer.score_all(workers).expect("scores");
        let cfg = AuditConfig {
            attributes: Some(vec!["language".into()]),
            ..Default::default()
        };
        let ctx = AuditContext::new(workers, &scores, cfg).expect("ctx");
        Balanced::new(AttributeChoice::Worst)
            .run(&ctx)
            .expect("audit")
            .unfairness
    };

    println!("=== hiring feedback loop (1000 workers, 120 rounds) ===\n");
    println!(
        "language-group unfairness before any hiring: {:.3}",
        audit_unfairness(&workers)
    );

    let config = HiringConfig {
        rounds: 120,
        top_k: 100,
        hires_per_round: 5,
        approval_boost: 4.0,
        ..Default::default()
    };
    let outcome =
        simulate_hiring(&mut workers, &scorer, language, &config).expect("simulation runs");

    // Population share of each language group vs its hire share.
    let total = workers.len() as f64;
    println!(
        "\n{:<10} {:>10} {:>10}",
        "language", "pop share", "hire share"
    );
    for (code, label) in ["English", "Indian", "Other"].iter().enumerate() {
        let size = workers
            .column(language)
            .as_categorical()
            .expect("categorical")
            .iter()
            .filter(|&&c| c == code as u32)
            .count() as f64;
        println!(
            "{:<10} {:>9.1}% {:>9.1}%",
            label,
            100.0 * size / total,
            100.0 * outcome.hire_share(code as u32)
        );
    }

    println!(
        "\nlanguage-group unfairness after the loop:  {:.3}",
        audit_unfairness(&workers)
    );
    println!(
        "\nThe loop concentrated hires on the initially-advantaged group and\n\
         *raised* the measurable unfairness of the same scoring function —\n\
         reputational feedback manufactured extra signal correlated with\n\
         language. Auditing before deployment (and repairing, see the\n\
         repair_bias example) is what prevents the compounding."
    );
}
