#!/usr/bin/env bash
# Regenerate every table and figure of the paper plus the extension
# experiments, writing outputs under results/.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
for bin in figure1 table1 table2 table3 exhaustive_blowup ablations variance scaling repair_sweep; do
    echo "== $bin =="
    cargo run -q --release -p fairjob-bench --bin "$bin" | tee "results/$bin.txt"
    echo
done
