#!/usr/bin/env bash
# Collect every machine-readable bench trajectory (BENCH_*.json at the
# workspace root, one JSON object per file) into a single
# results/trajectory.json array, stamped with the commit and date.
#
# Usage: scripts/bench_trajectory.sh [--run]
#   --run  first run every bench that emits a BENCH_*.json trajectory
#          (shard_scale, paged_scan, serve_load, query_plan), then
#          collect.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--run" ]]; then
    for bench in shard_scale paged_scan serve_load query_plan; do
        echo "== $bench =="
        cargo bench -p fairjob-bench --bench "$bench"
    done
fi

shopt -s nullglob
files=(BENCH_*.json)
if [[ ${#files[@]} -eq 0 ]]; then
    echo "no BENCH_*.json trajectories found — run the benches first" >&2
    echo "(e.g. scripts/bench_trajectory.sh --run)" >&2
    exit 1
fi

mkdir -p results
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
{
    printf '{"commit":"%s","collected_at":"%s","benches":[' "$commit" "$stamp"
    sep=""
    for f in "${files[@]}"; do
        # Each trajectory file is a single JSON object on one line.
        printf '%s%s' "$sep" "$(tr -d '\n' <"$f")"
        sep=","
    done
    printf ']}\n'
} >results/trajectory.json

echo "collected ${#files[@]} trajectories into results/trajectory.json:"
for f in "${files[@]}"; do echo "  - $f"; done
